"""One hosted formulation session inside the multi-session service.

:class:`ManagedSession` is to the service what
:class:`~repro.gui.session.VisualSession` is to the experiment harness —
the difference is *tempo*: the harness replays a complete action list in
one call, while a hosted session receives actions one wire request at a
time and must keep its hybrid virtual timeline
(:class:`~repro.gui.session.TimelineState`) alive between requests.

Each session owns a private :class:`~repro.core.blender.Boomer` built over
a per-session :class:`~repro.core.context.EngineContext` whose *immutable*
parts (graph, oracle, two-hop counts, cost model) are shared with every
other session in the process; only the counters are private.  The
session's idle windows are not probed locally — they are donated to the
manager's :class:`~repro.service.scheduler.IdleScheduler`, which may spend
them on any session's pooled edges (deferral neutrality guarantees the
final match set is unaffected by *where* CAP work happens).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Callable

from repro.core.actions import Action, Run
from repro.core.blender import ActionReport, Boomer, RunResult
from repro.core.context import EngineContext, EngineCounters
from repro.errors import ActionError, SessionError
from repro.gui.session import TimelineState
from repro.obs import export as obs_export
from repro.obs.trace import NULL_TRACER, Tracer
from repro.resilience import ResilienceConfig

__all__ = ["ManagedSession", "SessionLimits"]


@dataclass(frozen=True)
class SessionLimits:
    """Per-session knobs fixed at creation time."""

    strategy: str = "DI"
    pruning: bool = True
    max_results: int | None = 10_000
    resilience: ResilienceConfig | None = None
    #: Record a per-session span timeline (the wire ``trace`` verb).
    #: On by default: hosted sessions are exactly where operators need
    #: the Fig.-7 decomposition, and the ring buffer bounds the cost.
    trace: bool = True
    #: Ring-buffer capacity for the session's closed spans.
    trace_capacity: int = 8192


class ManagedSession:
    """One concurrent visual session hosted by the :class:`SessionManager`.

    All public methods must be called with :attr:`lock` held (the manager
    does this); the lock is exposed so the idle scheduler can *try* to
    acquire it without blocking when donating another session's idle time.

    Lifecycle: ``formulating`` → (``ran`` | ``failed``) → ``closed``.
    A ``failed`` session (blown deadline, exhausted degradation ladder) is
    terminal: the underlying engine refuses further actions, so the wire
    layer reports the state and the client starts a new session.
    """

    def __init__(
        self,
        session_id: str,
        base_ctx: EngineContext,
        limits: SessionLimits | None = None,
    ) -> None:
        self.id = session_id
        self.limits = limits or SessionLimits()
        #: Immutable engine parts shared process-wide; counters private.
        self.ctx = replace(base_ctx, counters=EngineCounters())
        #: Span recorder (no-op when tracing is disabled for the session).
        #: Writers always hold :attr:`lock`, which is the tracer's whole
        #: thread-safety story — including cross-session idle donations.
        self.tracer = (
            Tracer(capacity=self.limits.trace_capacity)
            if self.limits.trace
            else NULL_TRACER
        )
        self.boomer = Boomer(
            self.ctx,
            strategy=self.limits.strategy,
            pruning=self.limits.pruning,
            max_results=self.limits.max_results,
            auto_idle=False,
            resilience=self.limits.resilience,
            tracer=self.tracer,
        )
        self.timeline = TimelineState()
        #: Plain (non-reentrant) lock on purpose: "is anyone operating on
        #: this session" is probed with a non-blocking acquire, and a
        #: reentrant lock would let a thread judge its *own* session idle.
        #: No code path acquires it twice on one thread.
        self.lock = threading.Lock()
        self.state = "formulating"
        self.actions_applied = 0
        #: Successfully applied non-Run actions, in order — the replay
        #: script a checkpoint captures (see repro.service.checkpoint).
        self.action_log: list[Action] = []
        #: True when this session was rebuilt from a checkpoint.
        self.restored = False
        #: Backlog charged to the SRT at the Run click (set by run()).
        self.backlog_seconds = 0.0
        #: Idle seconds this session donated to the scheduler.
        self.donated_idle_seconds = 0.0
        #: Scheduler compute spent on this session's pool by *other*
        #: sessions' idle windows (+ edges processed that way).
        self.serviced_seconds = 0.0
        self.serviced_edges = 0
        #: LRU stamp, assigned by the manager on every touch.
        self.touch_seq = 0

    # -- formulation -----------------------------------------------------
    def apply(
        self,
        action: Action,
        idle_sink: Callable[[float], float] | None = None,
    ) -> ActionReport:
        """Apply one non-Run action on the session's virtual timeline."""
        if isinstance(action, Run):
            raise ActionError("use run() for the Run action")
        self._require_open()
        if self.state != "formulating":
            raise ActionError(
                f"session {self.id} already executed; results are read-only"
            )
        try:
            report = self.timeline.step(self.boomer, action, idle_sink=idle_sink)
        except Exception:
            if self.boomer.engine.phase == "run":  # terminal failed-Run state
                self.state = "failed"
            raise
        self.actions_applied += 1
        self.action_log.append(action)
        return report

    def run(self) -> RunResult:
        """The Run click: drain + enumerate; moves the session to ``ran``."""
        self._require_open()
        if self.state != "formulating":
            raise ActionError(f"session {self.id} already executed")
        self.backlog_seconds = self.timeline.backlog_seconds
        try:
            self.boomer.apply(Run())
        except Exception:
            self.state = "failed"
            raise
        self.actions_applied += 1
        self.state = "ran"
        return self.boomer.run_result

    # -- results ---------------------------------------------------------
    @property
    def run_result(self) -> RunResult:
        """The Run outcome; raises until :meth:`run` succeeded."""
        result = self.boomer.run_result
        if result is None:
            raise SessionError(f"session {self.id} has not executed Run yet")
        return result

    def matches(self) -> list[dict[int, int]]:
        """Raw ``V_Δ`` (upper-bound matches) of a completed Run."""
        return list(self.run_result.matches)

    def results(self, limit: int | None = None):
        """Fully validated result subgraphs (lower bounds checked JIT)."""
        self._require_open()
        return self.boomer.results(limit=limit)

    # -- accounting ------------------------------------------------------
    def cap_entries(self) -> int:
        """Memory footprint proxy: live CAP entries + pooled edges.

        Counts candidates and AIVS pairs (Lemma 5.2 accounting) — the
        quantities that actually grow with session size — so the manager's
        budget tracks real retained state, not Python object overhead.
        """
        return self.boomer.cap.size_report().total + len(self.boomer.engine.pool)

    @property
    def evictable(self) -> bool:
        """May the manager reclaim this session right now?

        Only sessions nobody is operating on (lock free) can go; the lock
        probe is how "idle" is defined — there are no wall-clock timers in
        the service, which keeps tests and replays deterministic.
        """
        if self.state == "closed":
            return True
        acquired = self.lock.acquire(blocking=False)
        if acquired:
            self.lock.release()
        return acquired

    def close(self) -> None:
        """Release the session's retained state."""
        self.state = "closed"
        # Balance the trace even when the client walked away mid-
        # formulation: whatever is still open closes here, so a trace
        # pulled before teardown never shows orphaned spans.
        self.tracer.finish()
        self.boomer.engine.pool.clear()

    def trace_export(self, include_open: bool = True) -> dict[str, object]:
        """The session's span timeline (wire ``trace`` verb payload).

        Spans, their aggregate summary, and the Fig.-7 SRT decomposition
        are all derived from the same records a caller receives, so
        everything in the payload is reproducible client-side.
        """
        spans = self.tracer.export(include_open=include_open)
        return {
            "session": self.id,
            "enabled": self.tracer.enabled,
            "spans": spans,
            "summary": obs_export.summarize(spans),
            "decomposition": obs_export.srt_decomposition(spans),
            "started": self.tracer.started,
            "dropped": self.tracer.dropped,
        }

    def _require_open(self) -> None:
        if self.state == "closed":
            raise SessionError(f"session {self.id} is closed")

    # -- introspection ---------------------------------------------------
    def stats(self) -> dict[str, object]:
        """Wire-facing per-session statistics snapshot."""
        out: dict[str, object] = {
            "session": self.id,
            "state": self.state,
            "restored": self.restored,
            "strategy": self.boomer.strategy_name,
            "actions_applied": self.actions_applied,
            "cap_entries": self.cap_entries(),
            "pooled_edges": len(self.boomer.engine.pool),
            "backlog_seconds": self.timeline.backlog_seconds,
            "donated_idle_seconds": self.donated_idle_seconds,
            "serviced_seconds": self.serviced_seconds,
            "serviced_edges": self.serviced_edges,
            "absorbed_failures": list(self.boomer.absorbed_failures),
            "counters": self.ctx.counters.snapshot(),
            "trace": {
                "enabled": self.tracer.enabled,
                "spans_started": self.tracer.started,
                "spans_dropped": self.tracer.dropped,
                "open_depth": self.tracer.open_depth,
            },
        }
        result = self.boomer.run_result
        if result is not None:
            out["run"] = {
                "num_matches": result.num_matches,
                "degraded": result.degraded,
                "fallback": result.fallback,
                "srt_seconds": self.backlog_seconds + result.srt_seconds,
            }
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ManagedSession({self.id!r}, state={self.state!r})"
