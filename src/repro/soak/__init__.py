"""Chaos soak harness: sustained multi-user traffic with an SLO gate.

The ROADMAP's robustness bar for the service is not "passes unit tests"
— it is "survives hours of heavy-tailed, faulty, concurrent traffic
without leaking anything or returning a wrong answer".  This package is
that proving ground:

* :func:`run_soak` drives a real :class:`~repro.service.QueryServer`
  over the wire with a :class:`~repro.workload.SoakWorkloadConfig`
  schedule (Pareto arrivals, jittered think time, mid-session bound
  revisions, abandoned sessions = client-thread death), optionally under
  a seeded :class:`~repro.faults.FaultPlan`, while the manager runs with
  deliberately tight budgets and an
  :class:`~repro.service.OverloadPolicy` so shedding, eviction,
  checkpointing and restore all actually fire.
* :class:`SLO` declares the pass bar — latency percentiles, zero leaked
  sessions/locks, bounded memory growth, every shed resolved, restored
  sessions byte-identical — and :class:`SoakReport` is the machine-
  readable verdict (``BENCH_soak.json`` in CI).

Invoke it as ``python -m repro soak`` (see :mod:`repro.cli`) or from
``benchmarks/bench_soak.py``.
"""

from repro.soak.harness import run_soak
from repro.soak.slo import SLO, SoakReport

__all__ = ["SLO", "SoakReport", "run_soak"]
