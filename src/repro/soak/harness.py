"""Drive a live QueryServer with chaotic multi-user traffic, then judge it.

One :func:`run_soak` call is a complete experiment:

1. build a :class:`~repro.service.SessionManager` with deliberately
   tight budgets and an :class:`~repro.service.OverloadPolicy` over a
   (possibly fault-wrapped) engine context, and serve it over real
   sockets;
2. replay a deterministic :func:`~repro.workload.generate_soak_schedule`
   — one client thread per simulated user, Pareto arrival offsets,
   scaled GUI think time, mid-session bound revisions, and abandoning
   users whose threads die without a goodbye (the injected worker-thread
   death);
3. clients retry shed work under a :class:`~repro.resilience.RetryPolicy`
   (honoring ``retry_after_ms``) and transparently restore evicted
   sessions by id;
4. gracefully drain (checkpointing idle sessions), then restore every
   checkpointed completed session and compare its ``canonical_matches``
   byte-for-byte against what the original run returned over the wire;
5. score the :class:`~repro.soak.slo.SLO`: latency percentiles, zero
   leaked sessions/locks, bounded traced-memory growth, every shed
   resolved, no untyped failures.

Wall-clock use is confined to think-time sleeps (scaled by
``time_scale``) and latency measurement via :func:`repro.obs.clock.now`;
all *behavior* derives from the workload seed, so a failing soak can be
re-run with the same seed and fail the same way.

With ``workers > 0`` the same traffic drives a
:class:`~repro.service.PoolDispatcher` fleet instead of the threaded
manager, and ``kill_worker_after`` SIGKILLs one seeded-chosen worker
mid-traffic — the process-level analogue of the injected faults above.
The fleet must absorb it: the dispatcher respawns the worker, requeues
its sessions from disk checkpoints, clients retry transparently, and the
post-soak restore verification replays every completed session's disk
checkpoint through a *fresh threaded manager* — proving restore survives
not just eviction but the death of the entire hosting process.
"""

from __future__ import annotations

import gc
import os
import shutil
import signal
import tempfile
import threading
import time
import tracemalloc
from typing import TYPE_CHECKING

from repro.errors import ReproError
from repro.obs import clock
from repro.resilience import RetryPolicy
from repro.service import (
    OverloadPolicy,
    QueryServer,
    ServiceClient,
    SessionManager,
)
from repro.service import protocol
from repro.service.client import RemoteServiceError
from repro.soak.slo import SLO, SoakReport, percentile
from repro.utils.rng import seeded_rng
from repro.workload.traffic import SessionScript, SoakWorkloadConfig, generate_soak_schedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.context import EngineContext
    from repro.faults import FaultPlan

__all__ = ["run_soak"]


class _SharedState:
    """Thread-safe accumulator the virtual-user threads write into."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.started = 0
        self.abandoned = 0
        self.run_latencies: list[float] = []
        self.runs_degraded = 0
        self.typed_errors: dict[str, int] = {}
        self.unexpected: list[str] = []
        self.unresolved_sheds = 0
        #: session id -> canonical matches the original run returned.
        self.completed: dict[str, list] = {}

    def record_failure(self, exc: BaseException) -> None:
        with self.lock:
            if isinstance(exc, RemoteServiceError):
                code = exc.code or exc.remote_type
                self.typed_errors[code] = self.typed_errors.get(code, 0) + 1
                if code == "overloaded" and not exc.retryable:
                    # Contract breach: a shed the client was told not to
                    # retry is a shed that can never resolve.
                    self.unresolved_sheds += 1
            elif isinstance(exc, ReproError):
                code = getattr(exc, "code", type(exc).__name__)
                self.typed_errors[code] = self.typed_errors.get(code, 0) + 1
            else:
                self.unexpected.append(f"{type(exc).__name__}: {exc}")


def _drive_user(
    script: SessionScript,
    address: tuple[str, int],
    state: _SharedState,
    time_scale: float,
    client_timeout: float,
    retry_policy: RetryPolicy,
    started_at: float,
) -> None:
    """One virtual user: arrive, formulate with think time, run, read."""
    delay = script.arrival_offset * time_scale - (clock.now() - started_at)
    if delay > 0:
        time.sleep(delay)
    client: ServiceClient | None = None
    try:
        client = ServiceClient(
            *address,
            timeout=client_timeout,
            retry_policy=retry_policy,
            auto_restore=True,
        )
        sid = client.create_session(resilience=script.posture)
        with state.lock:
            state.started += 1
        for action in script.actions:
            if action.get("kind") == "Run":
                begin = clock.now()
                summary = client.run(sid)
                latency = clock.now() - begin
                matches = client.matches(sid)
                with state.lock:
                    state.run_latencies.append(latency)
                    if summary.get("degraded"):
                        state.runs_degraded += 1
                    state.completed[sid] = matches
            else:
                client.action(sid, action)
            think = action.get("latency_after")
            if isinstance(think, (int, float)) and think > 0:
                time.sleep(float(think) * time_scale)
        if script.abandoned:
            # Worker-thread death: the socket dies mid-session, no
            # close_session, no goodbye — the server must neither leak
            # the session (drain checkpoints it) nor wedge the handler.
            with state.lock:
                state.abandoned += 1
            client._sock.close()
            client = None
    except Exception as exc:  # noqa: BLE001 - every failure is data here
        state.record_failure(exc)
    finally:
        if client is not None:
            try:
                client.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass


def _count_leaked_segments(names: list[str]) -> int:
    """How many published shm segments survived pool close (want: zero)."""
    from multiprocessing import shared_memory

    leaked = 0
    for name in names:
        try:
            handle = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        leaked += 1
        try:  # count it, then clean up so the leak doesn't outlive us
            handle.close()
            handle.unlink()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
    return leaked


def run_soak(
    ctx: "EngineContext",
    workload: SoakWorkloadConfig,
    *,
    fault_plan: "FaultPlan | None" = None,
    slo: SLO | None = None,
    overload: OverloadPolicy | None = None,
    max_sessions: int = 8,
    cap_entry_budget: int | None = 100_000,
    time_scale: float = 0.02,
    client_timeout: float = 30.0,
    retry_policy: RetryPolicy | None = None,
    lock_monitor: bool = True,
    verify_restore: bool = True,
    join_timeout: float = 120.0,
    workers: int = 0,
    kill_worker_after: float | None = None,
) -> SoakReport:
    """Run one complete chaos soak; returns the scored report."""
    slo = slo or SLO()
    overload = overload or OverloadPolicy(
        session_watermark=0.75, cap_watermark=0.85, max_inflight=32
    )
    retry_policy = retry_policy or RetryPolicy(
        max_attempts=5, base_delay=0.01, backoff=2.0, max_delay=0.25
    )
    if workers > 0 and fault_plan is not None:
        # Fault wrappers are in-process monkey-business around the oracle;
        # they neither pickle across spawn nor publish as shared arrays.
        # The pool soak's chaos is the worker SIGKILL.
        raise ValueError(
            "fault_plan is process-local and cannot cross the worker "
            "boundary; pool soaks inject chaos via kill_worker_after"
        )
    if fault_plan is not None:
        ctx = fault_plan.wrap_context(ctx)

    schedule = generate_soak_schedule(ctx.graph, workload)
    report = SoakReport(sessions_scheduled=len(schedule), slo=slo.to_dict())
    state = _SharedState()

    monitor = None
    if lock_monitor:
        from repro.analysis.lockorder import LockOrderMonitor, patch_locks

        monitor = LockOrderMonitor()
        monitor_ctx = patch_locks(monitor)
    else:  # pragma: no cover - trivial
        from contextlib import nullcontext

        monitor_ctx = nullcontext()

    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    gc.collect()
    memory_before, _ = tracemalloc.get_traced_memory()
    soak_began = clock.now()

    report.workers = workers
    pool = None
    pool_stats: dict[str, object] = {}
    killed_pids: list[int] = []
    kill_timer: threading.Timer | None = None
    ckpt_dir: str | None = None
    segment_names: list[str] = []

    with monitor_ctx:
        manager: SessionManager | None = None
        if workers > 0:
            from repro.service.pool import PoolDispatcher

            # The harness owns the checkpoint directory so it outlives the
            # pool: post-soak restore verification reads it with a fresh
            # threaded manager after every worker process is gone.
            ckpt_dir = tempfile.mkdtemp(prefix="repro-soak-ckpt-")
            pool = PoolDispatcher(
                ctx,
                workers=workers,
                max_sessions=max_sessions,
                cap_entry_budget=cap_entry_budget,
                overload=overload,
                checkpoint_dir=ckpt_dir,
            )
            segment_names = pool.segment_names()
            backend: object = pool
        else:
            manager = SessionManager(
                ctx,
                max_sessions=max_sessions,
                cap_entry_budget=cap_entry_budget,
                overload=overload,
            )
            backend = manager
        server = QueryServer(backend, host="127.0.0.1", port=0).start()
        if pool is not None and kill_worker_after is not None:

            def _kill_one_worker() -> None:
                pids = pool.worker_pids()
                if not pids:  # pragma: no cover - fleet already gone
                    return
                index = seeded_rng(workload.seed).choice(sorted(pids))
                try:
                    os.kill(pids[index], signal.SIGKILL)
                except (ProcessLookupError, OSError):  # pragma: no cover
                    return
                killed_pids.append(pids[index])

            kill_timer = threading.Timer(kill_worker_after, _kill_one_worker)
            kill_timer.daemon = True
            kill_timer.start()
        try:
            threads = [
                threading.Thread(
                    target=_drive_user,
                    args=(
                        script,
                        server.address,
                        state,
                        time_scale,
                        client_timeout,
                        retry_policy,
                        soak_began,
                    ),
                    name=f"soak-user-{script.index}",
                    daemon=True,
                )
                for script in schedule
            ]
            for thread in threads:
                thread.start()
            deadline = clock.now() + join_timeout
            for thread in threads:
                thread.join(timeout=max(0.0, deadline - clock.now()))
            stuck = [t.name for t in threads if t.is_alive()]
            if stuck:
                state.unexpected.append(
                    f"{len(stuck)} user thread(s) still alive at join "
                    f"timeout: {stuck[:3]}"
                )
        finally:
            if kill_timer is not None:
                kill_timer.cancel()
            if pool is not None:
                # Drain and harvest aggregated stats while the workers are
                # still alive, then stop without re-draining: stop()'s
                # close() tears the fleet (and its stats) down.
                try:
                    report.drain_summary = (
                        pool.drain(timeout=server.drain_timeout) or {}
                    )
                except Exception as exc:  # noqa: BLE001 - chaos is data
                    state.unexpected.append(
                        f"pool drain failed: {type(exc).__name__}: {exc}"
                    )
                try:
                    pool_stats = pool.dispatch({"op": "stats"})
                except Exception as exc:  # noqa: BLE001 - chaos is data
                    state.unexpected.append(
                        f"pool stats failed: {type(exc).__name__}: {exc}"
                    )
                server.stop(drain=False)
            else:
                report.drain_summary = server.stop(drain=True) or {}

        if pool is not None:
            # Sessions drain could not checkpoint are the pool's leaks.
            busy = report.drain_summary.get("busy", [])
            report.leaked_sessions = len(busy) if isinstance(busy, list) else 0
            report.leaked_shm_segments = _count_leaked_segments(segment_names)
        else:
            assert manager is not None
            report.leaked_sessions = len(manager.session_ids())

        if verify_restore and pool is not None:
            # Every worker process is dead; the only surviving state is
            # the write-through checkpoint directory.  Restoring through a
            # *fresh* threaded manager over that directory is the
            # strongest form of the invariant: byte-identical matches
            # across a full process generation.
            verifier = SessionManager(
                ctx,
                max_sessions=max_sessions,
                cap_entry_budget=None,
                checkpoint_dir=ckpt_dir,
            )
            for sid, recorded in sorted(state.completed.items()):
                checkpoint = verifier.checkpoints.get(sid)
                if checkpoint is None or checkpoint.state != "ran":
                    continue
                try:
                    verifier.restore_session(sid)
                    again = protocol.canonical_matches(verifier.matches(sid))
                except ReproError as exc:
                    report.restore_mismatches += 1
                    state.unexpected.append(
                        f"restore of {sid} failed: {type(exc).__name__}: {exc}"
                    )
                    continue
                if again != recorded:
                    report.restore_mismatches += 1
                try:
                    verifier.close_session(sid)
                except ReproError:  # pragma: no cover - teardown
                    pass
        elif verify_restore:
            assert manager is not None
            # Resume every checkpointed completed session and demand the
            # exact bytes its original run produced — the wire-level
            # statement of deferral neutrality.
            manager.end_drain()
            for sid, recorded in sorted(state.completed.items()):
                checkpoint = manager.checkpoints.get(sid)
                if checkpoint is None or checkpoint.state != "ran":
                    continue
                try:
                    manager.restore_session(sid)
                    again = protocol.canonical_matches(manager.matches(sid))
                except ReproError as exc:
                    report.restore_mismatches += 1
                    state.unexpected.append(
                        f"restore of {sid} failed: {type(exc).__name__}: {exc}"
                    )
                    continue
                if again != recorded:
                    report.restore_mismatches += 1

    gc.collect()
    memory_after, _ = tracemalloc.get_traced_memory()
    if not was_tracing:
        tracemalloc.stop()

    report.sessions_started = state.started
    report.sessions_abandoned = state.abandoned
    report.runs_completed = len(state.run_latencies)
    report.runs_degraded = state.runs_degraded
    report.run_latency = {
        "count": float(len(state.run_latencies)),
        "p50": percentile(state.run_latencies, 0.50),
        "p95": percentile(state.run_latencies, 0.95),
        "p99": percentile(state.run_latencies, 0.99),
        "max": max(state.run_latencies, default=0.0),
    }
    report.typed_errors = dict(state.typed_errors)
    report.unexpected_errors = list(state.unexpected)
    report.unresolved_sheds = state.unresolved_sheds
    if pool is not None:
        # Counters come from the aggregated wire ``stats`` harvested just
        # before teardown (fleet-wide sums + the dispatcher's pool block).
        def _stat(name: str) -> int:
            value = pool_stats.get(name, 0)
            return int(value) if isinstance(value, (int, float)) else 0

        report.requests_shed = _stat("requests_shed")
        report.sessions_evicted = _stat("sessions_evicted")
        report.sessions_checkpointed = _stat("sessions_checkpointed")
        report.sessions_restored = _stat("sessions_restored")
        report.workers_killed = len(killed_pids)
        pool_block = pool_stats.get("pool")
        if isinstance(pool_block, dict):
            report.worker_deaths = int(pool_block.get("worker_deaths", 0))
            report.workers_respawned = int(
                pool_block.get("workers_respawned", 0)
            )
            report.sessions_requeued = int(
                pool_block.get("sessions_requeued", 0)
            )
            report.requeue_failures = int(
                pool_block.get("requeue_failures", 0)
            )
        if ckpt_dir is not None:
            shutil.rmtree(ckpt_dir, ignore_errors=True)
    else:
        assert manager is not None
        counters = manager.stats_counters
        report.requests_shed = counters.requests_shed
        report.sessions_evicted = counters.sessions_evicted
        report.sessions_checkpointed = counters.sessions_checkpointed
        report.sessions_restored = counters.sessions_restored
    report.memory_growth_mib = max(0.0, memory_after - memory_before) / (
        1024.0 * 1024.0
    )
    report.lock_inversions = len(monitor.inversions()) if monitor else 0
    report.wall_seconds = clock.now() - soak_began
    report.violations = slo.check(report)
    report.passed = not report.violations
    return report
