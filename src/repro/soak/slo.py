"""The soak pass bar and its machine-readable verdict."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SLO", "SoakReport", "percentile"]


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-quantile (0..1) by nearest-rank on a sorted copy."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass(frozen=True)
class SLO:
    """What the service must guarantee under sustained chaos.

    Latency bounds apply to the wire ``run`` verb (the user-facing SRT
    path).  The structural bounds are absolute: a single leaked session,
    lock-order inversion, unresolved shed, or restore mismatch is an
    outage-class bug regardless of how good the latencies look.
    """

    p50_run_seconds: float = 2.0
    p95_run_seconds: float = 10.0
    p99_run_seconds: float = 20.0
    #: Sessions still open after drain (excluding deliberately-busy ones).
    max_leaked_sessions: int = 0
    #: Lock-order inversions observed by the lockorder monitor.
    max_lock_inversions: int = 0
    #: Shed requests that neither succeeded on retry nor surfaced as a
    #: typed retryable error.
    max_unresolved_sheds: int = 0
    #: Restored sessions whose matches differ from the original run.
    max_restore_mismatches: int = 0
    #: Peak traced allocation growth over the soak (MiB).
    max_memory_growth_mib: float = 256.0
    #: The soak must actually exercise the engine to mean anything.
    min_completed_runs: int = 1
    #: Pool mode only: shared-memory segments alive after close.
    max_leaked_shm_segments: int = 0
    #: Pool mode only: sessions a worker death orphaned for good.
    max_requeue_failures: int = 0

    def check(self, report: "SoakReport") -> list[str]:
        """Every SLO clause ``report`` violates (empty = pass)."""
        violations: list[str] = []
        lat = report.run_latency
        for name, bound in (
            ("p50", self.p50_run_seconds),
            ("p95", self.p95_run_seconds),
            ("p99", self.p99_run_seconds),
        ):
            value = lat.get(name, 0.0)
            if value > bound:
                violations.append(
                    f"run latency {name}={value:.3f}s exceeds {bound:.3f}s"
                )
        if report.leaked_sessions > self.max_leaked_sessions:
            violations.append(
                f"{report.leaked_sessions} session(s) leaked past drain "
                f"(allowed {self.max_leaked_sessions})"
            )
        if report.lock_inversions > self.max_lock_inversions:
            violations.append(
                f"{report.lock_inversions} lock-order inversion(s) "
                f"(allowed {self.max_lock_inversions})"
            )
        if report.unresolved_sheds > self.max_unresolved_sheds:
            violations.append(
                f"{report.unresolved_sheds} shed request(s) neither "
                "retried to success nor surfaced typed"
            )
        if report.restore_mismatches > self.max_restore_mismatches:
            violations.append(
                f"{report.restore_mismatches} restored session(s) "
                "diverged from their original matches"
            )
        if report.memory_growth_mib > self.max_memory_growth_mib:
            violations.append(
                f"memory grew {report.memory_growth_mib:.1f} MiB "
                f"(allowed {self.max_memory_growth_mib:.1f})"
            )
        if report.runs_completed < self.min_completed_runs:
            violations.append(
                f"only {report.runs_completed} run(s) completed "
                f"(need >= {self.min_completed_runs})"
            )
        if report.leaked_shm_segments > self.max_leaked_shm_segments:
            violations.append(
                f"{report.leaked_shm_segments} shared-memory segment(s) "
                f"leaked past pool close "
                f"(allowed {self.max_leaked_shm_segments})"
            )
        if report.requeue_failures > self.max_requeue_failures:
            violations.append(
                f"{report.requeue_failures} session(s) could not be "
                f"requeued after a worker death "
                f"(allowed {self.max_requeue_failures})"
            )
        if report.workers_killed and not report.workers_respawned:
            violations.append(
                f"{report.workers_killed} worker(s) killed but none "
                "respawned — the resilience ladder did not engage"
            )
        if report.unexpected_errors:
            violations.append(
                f"{len(report.unexpected_errors)} untyped client "
                f"failure(s): {report.unexpected_errors[:3]}"
            )
        return violations

    def to_dict(self) -> dict[str, object]:
        return {
            "p50_run_seconds": self.p50_run_seconds,
            "p95_run_seconds": self.p95_run_seconds,
            "p99_run_seconds": self.p99_run_seconds,
            "max_leaked_sessions": self.max_leaked_sessions,
            "max_lock_inversions": self.max_lock_inversions,
            "max_unresolved_sheds": self.max_unresolved_sheds,
            "max_restore_mismatches": self.max_restore_mismatches,
            "max_memory_growth_mib": self.max_memory_growth_mib,
            "min_completed_runs": self.min_completed_runs,
            "max_leaked_shm_segments": self.max_leaked_shm_segments,
            "max_requeue_failures": self.max_requeue_failures,
        }


@dataclass
class SoakReport:
    """Everything one soak produced (``BENCH_soak.json`` payload)."""

    # -- traffic outcome -------------------------------------------------
    sessions_scheduled: int = 0
    sessions_started: int = 0
    sessions_abandoned: int = 0
    runs_completed: int = 0
    runs_degraded: int = 0
    #: Wire ``run`` latencies: p50/p95/p99/max/count (wall seconds).
    run_latency: dict[str, float] = field(default_factory=dict)
    #: Typed failures seen client-side, keyed by stable v2 error code.
    typed_errors: dict[str, int] = field(default_factory=dict)
    #: Failures that were NOT typed ReproErrors — each one an SLO breach.
    unexpected_errors: list[str] = field(default_factory=list)

    # -- backpressure / lifecycle ----------------------------------------
    requests_shed: int = 0
    #: Sheds whose request never succeeded and never surfaced typed.
    unresolved_sheds: int = 0
    sessions_evicted: int = 0
    sessions_checkpointed: int = 0
    sessions_restored: int = 0
    restore_mismatches: int = 0
    drain_summary: dict[str, object] = field(default_factory=dict)
    leaked_sessions: int = 0

    # -- worker pool (zero in threaded soaks) ----------------------------
    workers: int = 0
    workers_killed: int = 0
    worker_deaths: int = 0
    workers_respawned: int = 0
    sessions_requeued: int = 0
    requeue_failures: int = 0
    leaked_shm_segments: int = 0

    # -- resource health -------------------------------------------------
    memory_growth_mib: float = 0.0
    lock_inversions: int = 0
    wall_seconds: float = 0.0

    # -- verdict ---------------------------------------------------------
    slo: dict[str, object] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    passed: bool = False

    def to_dict(self) -> dict[str, object]:
        return {
            "sessions_scheduled": self.sessions_scheduled,
            "sessions_started": self.sessions_started,
            "sessions_abandoned": self.sessions_abandoned,
            "runs_completed": self.runs_completed,
            "runs_degraded": self.runs_degraded,
            "run_latency": dict(self.run_latency),
            "typed_errors": dict(self.typed_errors),
            "unexpected_errors": list(self.unexpected_errors),
            "requests_shed": self.requests_shed,
            "unresolved_sheds": self.unresolved_sheds,
            "sessions_evicted": self.sessions_evicted,
            "sessions_checkpointed": self.sessions_checkpointed,
            "sessions_restored": self.sessions_restored,
            "restore_mismatches": self.restore_mismatches,
            "drain_summary": dict(self.drain_summary),
            "leaked_sessions": self.leaked_sessions,
            "workers": self.workers,
            "workers_killed": self.workers_killed,
            "worker_deaths": self.worker_deaths,
            "workers_respawned": self.workers_respawned,
            "sessions_requeued": self.sessions_requeued,
            "requeue_failures": self.requeue_failures,
            "leaked_shm_segments": self.leaked_shm_segments,
            "memory_growth_mib": self.memory_growth_mib,
            "lock_inversions": self.lock_inversions,
            "wall_seconds": self.wall_seconds,
            "slo": dict(self.slo),
            "violations": list(self.violations),
            "passed": self.passed,
        }
