"""Unified engine-basis storage: one API, three interchangeable backends.

Everything expensive about a prepared engine — the CSR graph, the
finalized PML label arrays, the two-hop counts — is an immutable
:class:`~repro.storage.basis.EngineBasis`.  This package is the single
seam through which that basis is stored, transported, and reopened:

* :mod:`repro.storage.basis` — the basis value itself plus the only
  sanctioned conversions to/from a live
  :class:`~repro.core.context.EngineContext` (boomerlint rule R7
  enforces "only sanctioned": direct label-array plumbing outside this
  package is a lint violation);
* :mod:`repro.storage.backends` — ``resident`` (heap arrays, bit-for-bit
  today's behavior), ``shm`` (zero-copy shared-memory attach for pool
  workers), and ``mmap`` (read-only npy files, demand-paged);
* :mod:`repro.storage.mmapstore` — the on-disk layout (npy per array +
  ``meta.json`` manifest with a persisted *finalized* flag);
* :mod:`repro.storage.tiering` — the byte-budgeted hot tier over mmap
  (admission policy, LRU page cache, ``repro_storage_*`` metrics).

See ``docs/STORAGE.md`` for the backend matrix and byte-budget tuning.
"""

from repro.storage.backends import (
    BACKEND_NAMES,
    MmapBackend,
    ResidentBackend,
    ShmBackend,
    StorageBackend,
    attach,
    open_backend,
)
from repro.storage.basis import (
    ARRAY_NAMES,
    EngineBasis,
    LazyLabelView,
    StoredPML,
    basis_from_context,
    context_from_basis,
)
from repro.storage.mmapstore import (
    MmapSpec,
    basis_nbytes_on_disk,
    load_basis,
    read_meta,
    save_basis,
)
from repro.storage.shm import (
    SharedContextSpec,
    attach_basis,
    publish_basis,
    unlink_segments,
)
from repro.storage.tiering import (
    ByteBudgetPolicy,
    HotPageCache,
    TieredColumn,
    TieredLabelView,
)

__all__ = [
    "ARRAY_NAMES",
    "BACKEND_NAMES",
    "EngineBasis",
    "StoredPML",
    "LazyLabelView",
    "basis_from_context",
    "context_from_basis",
    "StorageBackend",
    "ResidentBackend",
    "ShmBackend",
    "MmapBackend",
    "open_backend",
    "attach",
    "MmapSpec",
    "save_basis",
    "load_basis",
    "read_meta",
    "basis_nbytes_on_disk",
    "SharedContextSpec",
    "publish_basis",
    "attach_basis",
    "unlink_segments",
    "ByteBudgetPolicy",
    "HotPageCache",
    "TieredColumn",
    "TieredLabelView",
]
