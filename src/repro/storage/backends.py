"""The three interchangeable engine-basis backends and the attach dispatch.

========== ===================== ============================== =================
backend    medium                per-consumer cost              handle / spec
========== ===================== ============================== =================
resident   process heap          full copy (today's default)    the basis itself
shm        SharedMemory segments page tables only               SharedContextSpec
mmap       read-only npy files   demand-paged + byte-budgeted   MmapSpec
========== ===================== ============================== =================

All three expose the same two operations: :meth:`StorageBackend.context`
builds a query-identical :class:`~repro.core.context.EngineContext` over
the backend's buffers, and :meth:`StorageBackend.spec` yields the small
picklable handle a pool worker turns back into a context via
:func:`attach` — the single dispatch point
:mod:`repro.service.pool.worker` calls regardless of transport.

Byte identity across backends is load-bearing (the conformance suite
asserts it): checkpoint/restore, requeue-after-SIGKILL, and the SLO
gates all compare matches produced by different processes over the same
basis.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.core.context import EngineContext
from repro.errors import BasisFormatError, StaleIndexError, StorageError
from repro.storage.basis import (
    EngineBasis,
    LabelViewFactory,
    basis_from_context,
    context_from_basis,
)
from repro.storage.mmapstore import MmapSpec, load_basis, read_meta, save_basis
from repro.storage.shm import (
    SharedContextSpec,
    attach_basis,
    publish_basis,
    unlink_segments,
)
from repro.storage.tiering import (
    DEFAULT_PAGE_ELEMS,
    ByteBudgetPolicy,
    HotPageCache,
    TieredColumn,
    TieredLabelView,
)

__all__ = [
    "BACKEND_NAMES",
    "StorageBackend",
    "ResidentBackend",
    "ShmBackend",
    "MmapBackend",
    "open_backend",
    "attach",
]

#: Valid ``--storage`` values, in documentation order.
BACKEND_NAMES = ("resident", "shm", "mmap")


class StorageBackend:
    """Common surface of the three backends (abstract).

    Subclasses own whatever medium holds the basis bytes; ``close()``
    releases it (idempotent).  ``spec()`` returns the picklable handle a
    spawned worker feeds to :func:`attach`; backends without a
    cross-process story raise :class:`~repro.errors.StorageError`.
    """

    name = "abstract"

    def context(self) -> EngineContext:
        raise NotImplementedError

    def spec(self) -> SharedContextSpec | MmapSpec:
        raise StorageError(
            f"the {self.name} backend has no cross-process handle; "
            "use the shm or mmap backend for pool workers"
        )

    def segment_names(self) -> list[str]:
        """Shared-memory segments owned by this backend (leak checks)."""
        return []

    def close(self) -> None:
        """Release the medium (idempotent)."""


class ResidentBackend(StorageBackend):
    """Today's default: the basis arrays live on this process's heap."""

    name = "resident"

    def __init__(self, basis: EngineBasis) -> None:
        self.basis = basis

    def context(self) -> EngineContext:
        return context_from_basis(self.basis)


class ShmBackend(StorageBackend):
    """Basis published into shared memory; consumers attach zero-copy.

    Publishing copies each array once (into the segments); this process
    owns them and must stay alive for attachers.  ``close()`` unlinks.
    """

    name = "shm"

    def __init__(self, basis: EngineBasis) -> None:
        self._spec, self._segments = publish_basis(basis)
        # The publisher's own contexts attach like everyone else's —
        # one storage path, no publisher special case.
        self._attached: list = []

    def context(self) -> EngineContext:
        basis, handles = attach_basis(self._spec)
        self._attached.extend(handles)
        return context_from_basis(basis)

    def spec(self) -> SharedContextSpec:
        return self._spec

    def segment_names(self) -> list[str]:
        return self._spec.segment_names()

    def close(self) -> None:
        for shm in self._attached:
            try:
                shm.close()
            except OSError:
                pass
        self._attached.clear()
        unlink_segments(self._segments)
        self._segments = []


class MmapBackend(StorageBackend):
    """Basis on disk as npy files, opened read-only via ``numpy.memmap``.

    With ``budget_bytes`` set, contexts get the hot/cold split of
    :mod:`repro.storage.tiering`: scalar-path label lists are pinned in
    a byte-budgeted LRU while everything else stays demand-paged.  With
    no budget the label cache is unbounded (pure demand paging below
    it), matching the resident backend's memory behavior over time.

    ``owns_directory=True`` (set by :meth:`create` for anonymous temp
    bases) makes ``close()`` delete the directory.
    """

    name = "mmap"

    def __init__(
        self,
        directory: str | Path,
        budget_bytes: int | None = None,
        page_elems: int = DEFAULT_PAGE_ELEMS,
        owns_directory: bool = False,
    ) -> None:
        self.directory = Path(directory)
        self.budget_bytes = budget_bytes
        self._page_elems = page_elems
        self._owns_directory = owns_directory
        self.basis = load_basis(self.directory)

    @classmethod
    def create(
        cls,
        basis: EngineBasis,
        directory: str | Path | None = None,
        budget_bytes: int | None = None,
    ) -> "MmapBackend":
        """Save ``basis`` to ``directory`` (a fresh temp dir if None) and open it."""
        owns = directory is None
        if directory is None:
            directory = tempfile.mkdtemp(prefix="repro-basis-")
        save_basis(basis, directory)
        return cls(directory, budget_bytes=budget_bytes, owns_directory=owns)

    def _label_view(self) -> LabelViewFactory:
        if self.budget_bytes is None:
            from repro.storage.basis import LazyLabelView

            return LazyLabelView
        cache = HotPageCache(ByteBudgetPolicy(self.budget_bytes))
        page_elems = self._page_elems
        counter = iter(range(1 << 30))

        def make(offsets: np.ndarray, column: np.ndarray) -> TieredLabelView:
            key = f"{self.directory.name}:labels{next(counter)}"
            tiered = TieredColumn(column, cache, key, page_elems)
            return TieredLabelView(offsets, tiered, cache, key)

        return make

    def context(self) -> EngineContext:
        return context_from_basis(self.basis, label_view=self._label_view())

    def spec(self) -> MmapSpec:
        return MmapSpec(
            directory=str(self.directory),
            graph_name=self.basis.graph_name,
            budget_bytes=self.budget_bytes,
        )

    def close(self) -> None:
        if self._owns_directory and self.directory.exists():
            shutil.rmtree(self.directory, ignore_errors=True)
            self._owns_directory = False


def _holds_basis_for(directory: str | Path, basis: EngineBasis | None) -> bool:
    """True when ``directory`` holds a valid saved basis (for this graph).

    A directory holding the right graph at the *wrong epoch* is stale —
    its label arrays describe a graph that has since mutated — and is
    refused outright with :class:`~repro.errors.StaleIndexError` rather
    than silently reused (reuse would resurrect pre-mutation distances)
    or silently rewritten (the caller's basis may be memmapped from the
    very files a rewrite would truncate).
    """
    try:
        meta = read_meta(directory)
    except BasisFormatError:
        return False
    if basis is None:
        return True
    if meta.get("graph_name") != basis.graph_name:
        return False
    stored = int(meta.get("epoch", 0))
    if stored != basis.epoch:
        raise StaleIndexError(
            f"saved engine basis in {directory}",
            expected=basis.epoch,
            actual=stored,
        )
    return True


def open_backend(
    name: str,
    *,
    basis: EngineBasis | None = None,
    ctx: EngineContext | None = None,
    directory: str | Path | None = None,
    budget_bytes: int | None = None,
) -> StorageBackend:
    """Open a backend by ``--storage`` name.

    ``basis`` (or ``ctx``, converted via :func:`basis_from_context`) is
    required for resident/shm and for creating a fresh mmap basis; an
    mmap backend over an existing saved basis needs only ``directory``.

    When both are given and ``directory`` already holds a valid saved
    basis *for the same graph*, it is reused as-is (no rewrite).  Reuse
    matters twice: a named ``--storage-dir`` survives service restarts
    without a multi-gigabyte re-save, and when ``basis`` is itself
    memmapped from that very directory, re-saving would truncate the
    files its arrays are reading from.
    """
    if name not in BACKEND_NAMES:
        raise StorageError(
            f"unknown storage backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    if basis is None and ctx is not None:
        basis = basis_from_context(ctx)
    if name == "mmap":
        if directory is not None and _holds_basis_for(directory, basis):
            return MmapBackend(directory, budget_bytes=budget_bytes)
        if basis is not None:
            return MmapBackend.create(basis, directory, budget_bytes=budget_bytes)
        if directory is None:
            raise StorageError("the mmap backend needs a basis or a directory")
        raise BasisFormatError(
            f"{directory} does not hold a saved engine basis and no basis "
            "was given to create one"
        )
    if basis is None:
        raise StorageError(f"the {name} backend needs a basis (or a context)")
    if name == "shm":
        return ShmBackend(basis)
    return ResidentBackend(basis)


def attach(spec: SharedContextSpec | MmapSpec) -> tuple[EngineContext, list]:
    """Turn a backend spec back into a context, in any process.

    The single dispatch point pool workers call: a
    :class:`~repro.storage.shm.SharedContextSpec` attaches the published
    segments (returned handles must be kept alive and ``close()``-d at
    exit); an :class:`~repro.storage.mmapstore.MmapSpec` opens the
    on-disk basis (no handles — the kernel page cache is the shared
    medium).
    """
    if isinstance(spec, SharedContextSpec):
        basis, handles = attach_basis(spec)
        return context_from_basis(basis), handles
    if isinstance(spec, MmapSpec):
        backend = MmapBackend(spec.directory, budget_bytes=spec.budget_bytes)
        return backend.context(), []
    raise StorageError(f"unknown storage spec {type(spec).__name__}")
