"""The :class:`EngineBasis` — the one immutable value every backend stores.

The expensive part of an :class:`~repro.core.context.EngineContext` is a
handful of flat numpy arrays: the CSR graph (``graph_offsets`` /
``graph_neighbors``), the finalized PML label CSR (``pml_offsets`` /
``pml_ranks`` / ``pml_dists`` plus the landmark ``pml_order``), and the
per-vertex ``two_hop`` counts.  Everything else — labels, cost-model
constants, ablation toggles — is small scalar metadata.

Before this module existed the repo had two ad-hoc ways to materialize
that bundle (the dataset registry's pickle cache and the worker pool's
shared-memory publish/attach), each with its own array plumbing.
:class:`EngineBasis` is the single value both now carry:

* :func:`basis_from_context` extracts it from a live context (this is
  the *only* sanctioned reader of the PML label-CSR internals —
  boomerlint rule R7 flags any other module touching them);
* :func:`context_from_basis` rebuilds a full, query-identical
  :class:`~repro.core.context.EngineContext` over whatever buffers a
  backend hands back — resident numpy arrays, shared-memory views, or
  read-only ``numpy.memmap`` files.

Byte identity is the contract: two contexts built from equal bases
answer every distance query and enumerate every match identically,
regardless of which backend held the bytes in between
(``tests/test_storage_conformance.py`` proves it per backend).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping

import numpy as np

from repro.core.context import EngineContext
from repro.core.cost import CostModel
from repro.errors import StaleIndexError, StorageError
from repro.graph.graph import Graph
from repro.indexing.pml import PrunedLandmarkLabeling

__all__ = [
    "ARRAY_NAMES",
    "EngineBasis",
    "StoredPML",
    "LazyLabelView",
    "LabelViewFactory",
    "basis_from_context",
    "context_from_basis",
]

#: Canonical array manifest, in serialization order.  Every backend
#: stores exactly these seven arrays under exactly these names.
ARRAY_NAMES = (
    "graph_offsets",
    "graph_neighbors",
    "pml_offsets",
    "pml_ranks",
    "pml_dists",
    "pml_order",
    "two_hop",
)


@dataclass(frozen=True)
class EngineBasis:
    """Everything needed to reconstruct an engine context, as plain data.

    ``arrays`` maps each :data:`ARRAY_NAMES` entry to a 1-D numpy array
    (resident, shared-memory view, or memmap — the consumer does not
    care).  The scalars mirror what the shared-memory spec already
    shipped by value: labels, cost-model constants, and the two ablation
    toggles that must survive a process boundary.
    """

    graph_name: str
    labels: tuple
    arrays: Mapping[str, np.ndarray]
    cost_model: dict[str, float] = field(default_factory=dict)
    avg_label: float = 0.0
    scan_override: str | None = None
    batch_enabled: bool = True
    #: Graph epoch the arrays were extracted at (see
    #: :attr:`repro.graph.graph.Graph.epoch`).  Persisted by every
    #: backend; a live graph that has moved past a saved basis makes
    #: that directory *stale*, and reopening it is refused (see
    #: :func:`repro.storage.backends.open_backend`).
    epoch: int = 0

    def __post_init__(self) -> None:
        missing = [name for name in ARRAY_NAMES if name not in self.arrays]
        if missing:
            raise StorageError(f"engine basis is missing arrays: {missing}")

    def nbytes(self) -> int:
        """Fully-resident footprint of the arrays (the tiering yardstick)."""
        return int(sum(self.arrays[name].nbytes for name in ARRAY_NAMES))

    def equal_bytes(self, other: "EngineBasis") -> bool:
        """True iff every array matches ``other`` byte for byte."""
        for name in ARRAY_NAMES:
            mine, theirs = self.arrays[name], other.arrays[name]
            if mine.dtype != theirs.dtype or mine.shape != theirs.shape:
                return False
            if not np.array_equal(np.asarray(mine), np.asarray(theirs)):
                return False
        return True

    def with_arrays(self, arrays: Mapping[str, np.ndarray]) -> "EngineBasis":
        """The same metadata over a different set of buffers."""
        return replace(self, arrays=dict(arrays))


#: A per-vertex label materializer: ``(offsets, column) -> view`` where
#: the view answers ``view[v]`` with that vertex's label column as a
#: list.  :class:`LazyLabelView` (the class itself) is the default;
#: the mmap backend passes a byte-budgeted closure instead.
LabelViewFactory = Callable[[np.ndarray, np.ndarray], Any]


class LazyLabelView:
    """Sequence view of per-vertex label columns over a CSR column pair.

    ``labels[v]`` materializes ``column[offsets[v]:offsets[v+1]]`` as a
    plain Python list on first access and caches it — the tight scalar
    merge join keeps its list-of-ints speed, but a consumer only ever
    pays for the vertices its sessions actually touch.  (The mmap
    backend swaps in :class:`repro.storage.tiering.TieredLabelView`,
    which bounds this cache under the hot-set byte budget.)
    """

    __slots__ = ("_offsets", "_column", "_cache")

    def __init__(self, offsets: np.ndarray, column: np.ndarray) -> None:
        self._offsets = offsets
        self._column = column
        self._cache: dict[int, list[int]] = {}

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, v: int) -> list[int]:
        hit = self._cache.get(v)
        if hit is None:
            start, end = int(self._offsets[v]), int(self._offsets[v + 1])
            hit = self._column[start:end].tolist()
            self._cache[v] = hit
        return hit


class StoredPML(PrunedLandmarkLabeling):
    """A PML index whose backing arrays live in *some* storage backend.

    Built via ``__new__`` from already-finalized CSR arrays — never by
    :meth:`~repro.indexing.pml.PrunedLandmarkLabeling.build`.  Query
    behavior is bit-identical to the original index (same arrays, same
    kernels); only storage differs, so the label-size introspection
    reads the stored offsets instead of walking materialized lists.
    """

    #: Stored label columns are read-only views (mmap pages, shm
    #: segments) — :meth:`~repro.indexing.pml.PrunedLandmarkLabeling.apply_edge_insert`
    #: cannot splice them, so :mod:`repro.updates` refuses this index
    #: with a typed :class:`~repro.errors.StaleIndexError` *before*
    #: mutating the graph (fallback policy: rebuild the basis).
    supports_incremental = False

    @classmethod
    def from_arrays(
        cls,
        graph: Graph,
        label_offsets: np.ndarray,
        label_ranks_arr: np.ndarray,
        label_dists_arr: np.ndarray,
        order: np.ndarray,
        avg_label: float,
        label_view: LabelViewFactory = LazyLabelView,
    ) -> "StoredPML":
        """Assemble an index over stored arrays, labels lazily viewed.

        ``label_view`` is the per-vertex list materializer —
        :class:`LazyLabelView` for unbounded backends, a tiered view for
        the byte-budgeted mmap backend.
        """
        pml = cls.__new__(cls)
        pml._graph = graph
        pml._order = order
        pml.query_count = 0
        pml._label_offsets = label_offsets
        pml._label_ranks_arr = label_ranks_arr
        pml._label_dists_arr = label_dists_arr
        pml._avg_label = avg_label
        pml._finalized = True  # arrays arrived frozen; never re-finalize
        pml._epoch = graph.epoch  # the basis restored graph + labels together
        pml._label_ranks = label_view(label_offsets, label_ranks_arr)
        pml._label_dists = label_view(label_offsets, label_dists_arr)
        return pml

    def label_size(self, v: int) -> int:
        self._graph._check_vertex(v)
        return int(self._label_offsets[v + 1] - self._label_offsets[v])

    def total_label_entries(self) -> int:
        return int(self._label_offsets[-1])


def basis_from_context(ctx: EngineContext) -> EngineBasis:
    """Extract the immutable engine basis from a live context.

    Requires a PML oracle (storage backends hold *finalized label
    arrays*; a BFS oracle has no frozen index to store).  The returned
    arrays are the context's own buffers when already contiguous — no
    copy is taken here; backends copy on publish/save as needed.
    """
    oracle = ctx.oracle
    if not isinstance(oracle, PrunedLandmarkLabeling):
        raise StorageError(
            f"an engine basis requires a PML oracle; got "
            f"{type(oracle).__name__}"
        )
    if oracle.epoch != ctx.graph.epoch:
        # Persisting labels the graph has moved past would freeze wrong
        # distances into a directory that outlives this process.
        raise StaleIndexError(
            "PML index", expected=ctx.graph.epoch, actual=oracle.epoch
        )
    oracle._finalize_labels()
    offsets, neighbors = ctx.graph.raw_csr()
    arrays = {
        "graph_offsets": np.ascontiguousarray(offsets),
        "graph_neighbors": np.ascontiguousarray(neighbors),
        "pml_offsets": np.ascontiguousarray(oracle._label_offsets),
        "pml_ranks": np.ascontiguousarray(oracle._label_ranks_arr),
        "pml_dists": np.ascontiguousarray(oracle._label_dists_arr),
        "pml_order": np.ascontiguousarray(np.asarray(oracle._order)),
        "two_hop": np.ascontiguousarray(np.asarray(ctx.two_hop)),
    }
    cost = ctx.cost_model
    return EngineBasis(
        graph_name=ctx.graph.name,
        labels=tuple(ctx.graph.labels()),
        arrays=arrays,
        cost_model={
            "t_avg": cost.t_avg,
            "t_lat": cost.t_lat,
            "mean_degree": cost.mean_degree,
            "mean_two_hop": cost.mean_two_hop,
        },
        avg_label=float(oracle._avg_label),
        scan_override=ctx.scan_override,
        batch_enabled=ctx.batch_enabled,
        epoch=ctx.graph.epoch,
    )


def context_from_basis(
    basis: EngineBasis, label_view: LabelViewFactory = LazyLabelView
) -> EngineContext:
    """Rebuild a full :class:`EngineContext` over a basis' buffers.

    The context is query-identical to the one the basis was extracted
    from: same arrays, same kernels, fresh counters.  ``label_view``
    picks the per-vertex label materialization policy (see
    :meth:`StoredPML.from_arrays`).
    """
    arrays = basis.arrays
    graph = Graph(
        offsets=arrays["graph_offsets"],
        neighbors=arrays["graph_neighbors"],
        labels=list(basis.labels),
        name=basis.graph_name,
        epoch=basis.epoch,
    )
    pml = StoredPML.from_arrays(
        graph,
        label_offsets=arrays["pml_offsets"],
        label_ranks_arr=arrays["pml_ranks"],
        label_dists_arr=arrays["pml_dists"],
        order=arrays["pml_order"],
        avg_label=basis.avg_label,
        label_view=label_view,
    )
    return EngineContext(
        graph=graph,
        oracle=pml,
        two_hop=arrays["two_hop"],
        cost_model=CostModel(**basis.cost_model),
        scan_override=basis.scan_override,
        batch_enabled=basis.batch_enabled,
    )
