"""On-disk engine-basis layout: one npy file per array plus a manifest.

A saved basis is a directory::

    <dir>/meta.json           # format version, graph name, scalars,
                              # per-array dtype/shape, finalized flag
    <dir>/labels.pkl          # per-vertex label list (arbitrary hashables)
    <dir>/graph_offsets.npy   # ... one npy per ARRAY_NAMES entry
    <dir>/graph_neighbors.npy
    <dir>/pml_offsets.npy
    <dir>/pml_ranks.npy
    <dir>/pml_dists.npy
    <dir>/pml_order.npy
    <dir>/two_hop.npy

:func:`save_basis` writes it atomically enough for our uses (meta.json
last, so a partially written directory is detected as unopenable);
:func:`load_basis` opens every array with ``np.load(mmap_mode="r")`` —
nothing is read into memory until a page is touched, which is the whole
point: a paper-scale basis opens in milliseconds and the OS pages in
only what queries actually visit.

``meta.json`` records ``"finalized": true`` — the arrays on disk *are*
the finalized PML CSR, so attaching processes must never rebuild them
(the lazy re-finalization that the pickle cache used to re-run per
process; see :meth:`repro.indexing.pml.PrunedLandmarkLabeling._finalize_labels`).

:class:`MmapSpec` is the picklable handle pool workers receive instead
of a shared-memory segment list: just the directory path and byte
budget.  Every worker opens the same files; the page cache is shared by
the kernel, not by us.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import BasisFormatError
from repro.storage.basis import ARRAY_NAMES, EngineBasis

__all__ = [
    "FORMAT_VERSION",
    "MmapSpec",
    "save_basis",
    "load_basis",
    "read_meta",
    "basis_nbytes_on_disk",
]

#: Bump on any incompatible change to the directory layout.
FORMAT_VERSION = 1

_META = "meta.json"
_LABELS = "labels.pkl"


@dataclass(frozen=True)
class MmapSpec:
    """Picklable pointer to an on-disk basis (what pool workers attach).

    Unlike the shared-memory spec there is nothing to publish or unlink
    per worker — the directory is the shared medium and the kernel page
    cache deduplicates residency across processes.
    """

    directory: str
    graph_name: str
    budget_bytes: int | None = None

    def segment_names(self) -> list[str]:
        """No shared-memory segments back an mmap basis."""
        return []


def save_basis(basis: EngineBasis, directory: str | Path) -> Path:
    """Write ``basis`` to ``directory`` (created if needed); returns it.

    Arrays are written with :func:`np.save` (plain npy, no pickle), the
    label list with pickle (labels are arbitrary hashables), and
    ``meta.json`` last so readers can treat its presence as the commit
    mark.
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    dtypes: dict[str, dict] = {}
    for name in ARRAY_NAMES:
        arr = np.ascontiguousarray(basis.arrays[name])
        np.save(path / f"{name}.npy", arr, allow_pickle=False)
        dtypes[name] = {"dtype": str(arr.dtype), "shape": list(arr.shape)}
    with open(path / _LABELS, "wb") as fh:
        pickle.dump(list(basis.labels), fh, protocol=pickle.HIGHEST_PROTOCOL)
    meta = {
        "format_version": FORMAT_VERSION,
        "graph_name": basis.graph_name,
        "cost_model": basis.cost_model,
        "avg_label": basis.avg_label,
        "scan_override": basis.scan_override,
        "batch_enabled": basis.batch_enabled,
        "epoch": basis.epoch,
        "finalized": True,
        "arrays": dtypes,
        "nbytes": basis.nbytes(),
    }
    with open(path / _META, "w", encoding="utf-8") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
    return path


def read_meta(directory: str | Path) -> dict:
    """The parsed ``meta.json`` of a saved basis (validated)."""
    path = Path(directory)
    meta_path = path / _META
    if not meta_path.is_file():
        raise BasisFormatError(
            f"{path} is not a saved engine basis (no {_META}; "
            "was save_basis interrupted?)"
        )
    try:
        with open(meta_path, encoding="utf-8") as fh:
            meta = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise BasisFormatError(f"unreadable basis manifest {meta_path}: {exc}") from exc
    version = meta.get("format_version")
    if version != FORMAT_VERSION:
        raise BasisFormatError(
            f"basis format version {version!r} in {path} is not the "
            f"supported version {FORMAT_VERSION}"
        )
    if not meta.get("finalized", False):
        raise BasisFormatError(
            f"basis in {path} is not marked finalized; refusing to attach "
            "non-frozen label arrays read-only"
        )
    return meta


def load_basis(directory: str | Path) -> EngineBasis:
    """Open a saved basis with every array memory-mapped read-only.

    Validates the manifest (format version, finalized flag, per-array
    dtype/shape) before touching any array file; raises
    :class:`~repro.errors.BasisFormatError` on mismatch.
    """
    path = Path(directory)
    meta = read_meta(path)
    arrays: dict[str, np.ndarray] = {}
    for name in ARRAY_NAMES:
        npy = path / f"{name}.npy"
        if not npy.is_file():
            raise BasisFormatError(f"basis in {path} is missing {npy.name}")
        arr = np.load(npy, mmap_mode="r", allow_pickle=False)
        want = meta["arrays"].get(name, {})
        if str(arr.dtype) != want.get("dtype") or list(arr.shape) != want.get("shape"):
            raise BasisFormatError(
                f"{npy.name}: on-disk {arr.dtype}{arr.shape} does not match "
                f"manifest {want.get('dtype')}{tuple(want.get('shape', ()))}"
            )
        arrays[name] = arr
    try:
        with open(path / _LABELS, "rb") as fh:
            labels = pickle.load(fh)
    except (OSError, pickle.UnpicklingError) as exc:
        raise BasisFormatError(f"unreadable label list in {path}: {exc}") from exc
    scan = meta.get("scan_override")
    return EngineBasis(
        graph_name=meta["graph_name"],
        labels=tuple(labels),
        arrays=arrays,
        cost_model=dict(meta["cost_model"]),
        avg_label=float(meta["avg_label"]),
        scan_override=scan,
        batch_enabled=bool(meta.get("batch_enabled", True)),
        epoch=int(meta.get("epoch", 0)),
    )


def basis_nbytes_on_disk(directory: str | Path) -> int:
    """The manifest's recorded fully-resident footprint.

    Reading it from ``meta.json`` avoids opening (and faulting pages of)
    the arrays just to size a byte budget.
    """
    meta = read_meta(directory)
    try:
        return int(meta["nbytes"])
    except (KeyError, TypeError, ValueError) as exc:
        raise BasisFormatError(
            f"basis manifest in {directory} has no usable nbytes field"
        ) from exc
