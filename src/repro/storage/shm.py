"""Shared-memory engine-basis transport over ``multiprocessing.shared_memory``.

The shm backend moves an :class:`~repro.storage.basis.EngineBasis`
across a process boundary with zero copies on the consumer side: the
publisher copies each array once into a named ``SharedMemory`` segment
and hands attachers a small picklable :class:`SharedContextSpec`
(segment names + dtypes + shapes + the scalar leftovers).  Attaching
costs page-table entries, not bytes, so per-worker memory for the basis
is ~zero regardless of worker count.

This module is the storage-layer home of what used to live in
:mod:`repro.service.pool.shm` (which now re-exports from here behind a
deprecation shim).  Two deliberate asymmetries survive the move:

* **Ownership.** Only the publisher unlinks.  Attaching processes must
  also tell *their* ``resource_tracker`` to forget the segment —
  CPython registers every ``SharedMemory(name=...)`` attach for
  leak-tracking and would otherwise *destroy* the shared segments when
  the first worker exits, yanking the graph out from under its siblings
  (bpo-39959).
* **Specs travel by value, arrays by name.** The per-vertex label list,
  graph name, and cost-model constants ride the spawn pickle; the seven
  basis arrays ride the segments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.errors import StorageError
from repro.storage.basis import ARRAY_NAMES, EngineBasis

__all__ = [
    "SharedContextSpec",
    "publish_basis",
    "attach_basis",
    "unlink_segments",
]


@dataclass(frozen=True)
class _ArraySpec:
    """One published array: where it lives and how to view it."""

    segment: str
    dtype: str
    shape: tuple[int, ...]


@dataclass(frozen=True)
class SharedContextSpec:
    """Everything an attacher needs to rebuild the basis, picklable.

    The arrays travel by *name* (shared segments); only the scalars — the
    per-vertex label list, graph name, cost-model constants — travel by
    value in the spawn pickle.
    """

    graph_name: str
    labels: tuple
    arrays: dict[str, _ArraySpec] = field(default_factory=dict)
    cost_model: dict[str, float] = field(default_factory=dict)
    avg_label: float = 0.0
    scan_override: str | None = None
    batch_enabled: bool = True

    def segment_names(self) -> list[str]:
        return [spec.segment for spec in self.arrays.values()]


# --------------------------------------------------------------------------
# Publish (owner side)
# --------------------------------------------------------------------------
def _publish_array(
    arr: np.ndarray, segments: list[shared_memory.SharedMemory]
) -> _ArraySpec:
    arr = np.ascontiguousarray(arr)
    shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
    segments.append(shm)
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
    view[...] = arr
    return _ArraySpec(segment=shm.name, dtype=str(arr.dtype), shape=arr.shape)


def publish_basis(
    basis: EngineBasis,
) -> tuple[SharedContextSpec, list[shared_memory.SharedMemory]]:
    """Publish a basis into shared memory; returns (spec, owned segments).

    The caller owns the returned segments: keep them referenced for the
    consumers' lifetime, then :func:`unlink_segments` exactly once.
    """
    segments: list[shared_memory.SharedMemory] = []
    try:
        arrays = {
            name: _publish_array(basis.arrays[name], segments)
            for name in ARRAY_NAMES
        }
    except Exception:
        unlink_segments(segments)
        raise
    spec = SharedContextSpec(
        graph_name=basis.graph_name,
        labels=basis.labels,
        arrays=arrays,
        cost_model=dict(basis.cost_model),
        avg_label=basis.avg_label,
        scan_override=basis.scan_override,
        batch_enabled=basis.batch_enabled,
    )
    return spec, segments


def unlink_segments(segments: list[shared_memory.SharedMemory]) -> None:
    """Close and destroy published segments (publisher side, idempotent)."""
    for shm in segments:
        try:
            shm.close()
        except OSError:
            pass
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass


# --------------------------------------------------------------------------
# Attach (consumer side)
# --------------------------------------------------------------------------
def _attach_array(
    spec: _ArraySpec, attached: list[shared_memory.SharedMemory]
) -> np.ndarray:
    # CPython registers every attach with the resource_tracker, which the
    # spawned workers *share* with the publisher — so a worker's attach
    # registration (and the automatic cleanup it implies) would fight the
    # publisher's ownership: the tracker would unlink segments while
    # siblings still map them, or double-book the name (bpo-39959).
    # Suppress registration for the attach: only the publisher owns the
    # segment's lifetime.
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        shm = shared_memory.SharedMemory(name=spec.segment)
    finally:
        resource_tracker.register = original_register
    attached.append(shm)
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    view.flags.writeable = False
    return view


def attach_basis(
    spec: SharedContextSpec,
) -> tuple[EngineBasis, list[shared_memory.SharedMemory]]:
    """Rebuild the basis over the published segments, zero-copy.

    Returns the basis plus the attached handles — the caller must keep
    them referenced as long as the basis (or any context built from it)
    lives, and ``close()`` (never ``unlink()``) them at exit.
    """
    if not isinstance(spec, SharedContextSpec):
        raise StorageError(
            f"attach_basis expects a SharedContextSpec, got {type(spec).__name__}"
        )
    attached: list[shared_memory.SharedMemory] = []
    try:
        views = {
            name: _attach_array(arr_spec, attached)
            for name, arr_spec in spec.arrays.items()
        }
    except Exception:
        for shm in attached:
            try:
                shm.close()
            except OSError:
                pass
        raise
    basis = EngineBasis(
        graph_name=spec.graph_name,
        labels=tuple(spec.labels),
        arrays=views,
        cost_model=dict(spec.cost_model),
        avg_label=spec.avg_label,
        scan_override=spec.scan_override,
        batch_enabled=spec.batch_enabled,
    )
    return basis, attached
