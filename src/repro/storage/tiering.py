"""Hot/cold tiering for memory-mapped engine bases.

The mmap backend gets two tiers for free-ish:

* **cold** — the npy files themselves, opened read-only via
  ``numpy.memmap``; the OS demand-loads 4 KiB pages on first touch and
  may drop them under pressure.  Batch kernels fancy-index these
  directly.
* **hot** — the explicit, *byte-budgeted* cache in this module.  The
  scalar query path touches per-vertex label lists thousands of times
  per Run; re-materializing a Python list from a memmap on every merge
  join would swamp the query with syscalls and boxing.  So materialized
  pages (and the label lists built from them) are pinned in a
  process-resident LRU whose total size never exceeds a configured byte
  budget.

The admission policy generalizes the overfill guard of
:class:`repro.indexing.batch.DistanceVectorCache`'s full-vector detour
(``FULL_VECTOR_MAX_OVERFILL``): an entry bigger than ``budget /
max_overfill`` would monopolize the cache and evict many genuinely hot
entries to admit one cold giant, so it is refused outright and served
straight from the cold tier instead.

Cache traffic is exported through :mod:`repro.obs.metrics`:
``repro_storage_hits_total`` / ``repro_storage_misses_total`` /
``repro_storage_evictions_total`` / ``repro_storage_rejects_total``
counters and the ``repro_storage_resident_bytes`` gauge (what
``benchmarks/bench_scale.py`` reports as peak hot-tier residency).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import StorageError
from repro.obs.metrics import metrics

__all__ = [
    "ByteBudgetPolicy",
    "HotPageCache",
    "TieredColumn",
    "TieredLabelView",
    "DEFAULT_PAGE_ELEMS",
]

#: Elements per cached page of a tiered column.  At int32 this is 64 KiB
#: per page — big enough to amortize the memmap read, small enough that a
#: handful of hot vertices do not pin megabytes.
DEFAULT_PAGE_ELEMS = 16384


class ByteBudgetPolicy:
    """Admission/eviction policy: total bytes <= budget, no giant entries.

    ``max_overfill`` plays the same role as
    :data:`repro.indexing.batch.FULL_VECTOR_MAX_OVERFILL`: a single
    entry may claim at most ``1/max_overfill`` of the budget.  Anything
    larger is *rejected* (served cold) rather than admitted — admitting
    it would evict up to the whole cache for an entry that is, by its
    very size, unlikely to be re-read before eviction.
    """

    def __init__(self, budget_bytes: int, max_overfill: int = 4) -> None:
        if budget_bytes <= 0:
            raise StorageError(f"byte budget must be positive, got {budget_bytes}")
        if max_overfill < 1:
            raise StorageError(f"max_overfill must be >= 1, got {max_overfill}")
        self.budget_bytes = int(budget_bytes)
        self.max_overfill = int(max_overfill)

    def admits(self, nbytes: int) -> bool:
        """True iff a single entry of ``nbytes`` may enter the hot tier."""
        return nbytes * self.max_overfill <= self.budget_bytes

    def over_budget(self, resident_bytes: int) -> bool:
        """True while eviction must continue."""
        return resident_bytes > self.budget_bytes

    def __repr__(self) -> str:
        return (
            f"ByteBudgetPolicy(budget_bytes={self.budget_bytes:,}, "
            f"max_overfill={self.max_overfill})"
        )


class HotPageCache:
    """Thread-safe byte-budgeted LRU over opaque keyed entries.

    Values are whatever the caller materialized (numpy page copies,
    Python label lists); the caller states each entry's size at ``put``
    time and the cache evicts least-recently-used entries until the
    :class:`ByteBudgetPolicy` is satisfied.  Hits refresh recency.
    """

    def __init__(self, policy: ByteBudgetPolicy) -> None:
        self.policy = policy
        self._lock = threading.Lock()
        #: key -> (value, nbytes); dict order is LRU order.
        self._entries: dict[object, tuple[object, int]] = {}
        self._resident = 0

    @property
    def resident_bytes(self) -> int:
        """Bytes currently pinned hot."""
        with self._lock:
            return self._resident

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: object) -> object | None:
        """The cached value, or None on miss.  Hits refresh recency."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._entries[key] = entry
        if entry is None:
            metrics.counter(
                "repro_storage_misses_total", "hot-tier cache misses"
            ).inc()
            return None
        metrics.counter("repro_storage_hits_total", "hot-tier cache hits").inc()
        return entry[0]

    def put(self, key: object, value: object, nbytes: int) -> bool:
        """Admit ``value`` if the policy allows; returns False on reject.

        A rejected entry is simply not cached — the caller already holds
        the materialized value and serves this one request from it.
        """
        nbytes = int(nbytes)
        if not self.policy.admits(nbytes):
            metrics.counter(
                "repro_storage_rejects_total",
                "hot-tier admissions refused by the overfill guard",
            ).inc()
            return False
        evictions = 0
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._resident -= old[1]
            self._entries[key] = (value, nbytes)
            self._resident += nbytes
            while self.policy.over_budget(self._resident) and len(self._entries) > 1:
                oldest = next(iter(self._entries))
                _, freed = self._entries.pop(oldest)
                self._resident -= freed
                evictions += 1
            resident = self._resident
        if evictions:
            metrics.counter(
                "repro_storage_evictions_total", "hot-tier entries evicted"
            ).inc(evictions)
        metrics.gauge(
            "repro_storage_resident_bytes", "bytes pinned in the hot tier"
        ).set(resident)
        return True

    def clear(self) -> None:
        """Drop every entry (tests / backend close)."""
        with self._lock:
            self._entries.clear()
            self._resident = 0
        metrics.gauge(
            "repro_storage_resident_bytes", "bytes pinned in the hot tier"
        ).set(0)


class TieredColumn:
    """Read-through page cache over a 1-D cold array (usually a memmap).

    Slices are assembled from fixed-size pages: pages already hot come
    from the cache, cold pages are copied out of the memmap (one OS
    demand-load) and offered to the cache under the byte budget.  The
    raw cold array stays reachable via :attr:`raw` for the batch kernels
    that fancy-index whole columns.
    """

    __slots__ = ("raw", "_cache", "_key", "_page_elems", "_itemsize")

    def __init__(
        self,
        raw: np.ndarray,
        cache: HotPageCache,
        key: str,
        page_elems: int = DEFAULT_PAGE_ELEMS,
    ) -> None:
        if raw.ndim != 1:
            raise StorageError(f"tiered columns are 1-D, got shape {raw.shape}")
        self.raw = raw
        self._cache = cache
        self._key = key
        self._page_elems = int(page_elems)
        self._itemsize = int(raw.dtype.itemsize)

    def __len__(self) -> int:
        return len(self.raw)

    def _page(self, index: int) -> np.ndarray:
        key = (self._key, index)
        page = self._cache.get(key)
        if page is None:
            lo = index * self._page_elems
            page = np.asarray(self.raw[lo : lo + self._page_elems])
            self._cache.put(key, page, page.nbytes)
        return page

    def slice(self, start: int, end: int) -> np.ndarray:
        """``raw[start:end]`` assembled through the hot tier."""
        if start >= end:
            return self.raw[0:0]
        pe = self._page_elems
        first, last = start // pe, (end - 1) // pe
        if first == last:
            page = self._page(first)
            return page[start - first * pe : end - first * pe]
        parts = []
        for index in range(first, last + 1):
            page = self._page(index)
            lo = max(start - index * pe, 0)
            hi = min(end - index * pe, len(page))
            parts.append(page[lo:hi])
        return np.concatenate(parts)


class TieredLabelView:
    """Budget-bounded per-vertex label lists over a tiered column.

    Drop-in for :class:`repro.storage.basis.LazyLabelView` on the mmap
    backend: ``view[v]`` materializes the vertex's label slice as a
    Python list through the page cache and memoizes the *list* under the
    same byte budget (lists are what the scalar merge join iterates, and
    boxing ints is the expensive step worth pinning).  A cold vertex
    costs one page assembly; an evicted vertex simply pays it again.
    """

    __slots__ = ("_offsets", "_column", "_cache", "_key")

    def __init__(
        self,
        offsets: np.ndarray,
        column: TieredColumn,
        cache: HotPageCache,
        key: str,
    ) -> None:
        self._offsets = offsets
        self._column = column
        self._cache = cache
        self._key = key

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, v: int) -> list[int]:
        key = (self._key, "list", v)
        hit = self._cache.get(key)
        if hit is None:
            start, end = int(self._offsets[v]), int(self._offsets[v + 1])
            hit = self._column.slice(start, end).tolist()
            # ~28 bytes per boxed small int plus 8 per list slot.
            self._cache.put(key, hit, 64 + 36 * len(hit))
        return hit
