"""First-class graph mutation: edge updates with correctness-guarded indexes.

Production networks churn, and BOOMER's blended processing assumes the
PML labels, two-hop counts, and distance caches all describe the
*current* graph.  This package is the only sanctioned way to move a
:class:`~repro.graph.graph.Graph` after construction (boomerlint rule R8
flags CSR mutation anywhere else) and it keeps that assumption true:

* :func:`~repro.updates.csr.graph_insert_edge` /
  :func:`~repro.updates.csr.graph_delete_edge` splice the CSR arrays in
  place and bump the graph's monotonic :attr:`~repro.graph.graph.Graph.epoch`;
* :func:`insert_edge` / :func:`delete_edge` orchestrate a whole
  :class:`~repro.core.context.EngineContext` through an update —
  incremental PML label patching for inserts (resumed pruned BFS, the
  dynamic-PLL rule), a conservative full rebuild for deletes, in-place
  two-hop count repair for the affected vertices, and proactive
  invalidation of the shared distance-vector cache;
* every derived structure validates the epoch before answering, so a
  reader that somehow bypasses maintenance gets a typed
  :class:`~repro.errors.StaleIndexError` instead of a pre-mutation
  distance.

Conformance contract (tests/test_updates_conformance.py): after *any*
randomized insert/delete schedule, the maintained index answers every
distance query byte-identically to a fresh
:meth:`~repro.indexing.pml.PrunedLandmarkLabeling.build` on the mutated
graph.
"""

from repro.updates.csr import graph_delete_edge, graph_insert_edge
from repro.updates.maintain import (
    UpdateReport,
    apply_updates,
    delete_edge,
    insert_edge,
)

__all__ = [
    "UpdateReport",
    "insert_edge",
    "delete_edge",
    "apply_updates",
    "graph_insert_edge",
    "graph_delete_edge",
]
