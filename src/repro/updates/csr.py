"""In-place CSR edge surgery — the only writer of ``Graph`` internals.

The graph keeps its sorted-adjacency CSR invariants across updates:
``offsets`` stays a prefix-sum, each vertex's neighbor slice stays
sorted and duplicate-free, and every undirected edge appears in both
endpoints' slices.  Both operations validate *before* touching anything,
so a refused update leaves the graph (and its epoch) exactly as it was.

Vertex labels never change here — edge updates cannot alter the label
inverted index, which is why these functions can swap the arrays without
rebuilding anything else on the graph object.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphMutationError
from repro.graph.graph import Graph

__all__ = ["graph_insert_edge", "graph_delete_edge"]


def _edge_positions(graph: Graph, u: int, v: int) -> tuple[int, bool]:
    """``(flat position of v in u's slice, whether it is present)``."""
    offsets, neighbors = graph.raw_csr()
    start, end = int(offsets[u]), int(offsets[u + 1])
    pos = start + int(np.searchsorted(neighbors[start:end], v))
    present = pos < end and int(neighbors[pos]) == v
    return pos, present


def _validate(graph: Graph, u: int, v: int) -> None:
    graph._check_vertex(u)
    graph._check_vertex(v)
    if u == v:
        raise GraphMutationError(
            f"self loop ({u}, {v}) refused: the graph is simple"
        )


def graph_insert_edge(graph: Graph, u: int, v: int) -> int:
    """Splice undirected edge ``{u, v}`` into the CSR; returns the new epoch.

    O(|E|) array rebuilds (two ``np.insert`` positions) — cheap next to
    the index maintenance that follows, and the arrays stay contiguous
    for the BFS/PML kernels.
    """
    _validate(graph, u, v)
    u, v = int(u), int(v)
    pos_u, present = _edge_positions(graph, u, v)
    if present:
        raise GraphMutationError(f"edge ({u}, {v}) already exists")
    pos_v, _ = _edge_positions(graph, v, u)
    offsets, neighbors = graph.raw_csr()
    new_neighbors = np.insert(neighbors, [pos_u, pos_v], [v, u])
    new_offsets = offsets.copy()
    new_offsets[u + 1 :] += 1
    new_offsets[v + 1 :] += 1
    graph._offsets = new_offsets
    graph._neighbors = new_neighbors
    graph._num_edges += 1
    graph._epoch = graph.epoch + 1
    return graph.epoch


def graph_delete_edge(graph: Graph, u: int, v: int) -> int:
    """Remove undirected edge ``{u, v}`` from the CSR; returns the new epoch."""
    _validate(graph, u, v)
    u, v = int(u), int(v)
    pos_u, present = _edge_positions(graph, u, v)
    if not present:
        raise GraphMutationError(f"edge ({u}, {v}) is not in the graph")
    pos_v, _ = _edge_positions(graph, v, u)
    offsets, neighbors = graph.raw_csr()
    new_neighbors = np.delete(neighbors, [pos_u, pos_v])
    new_offsets = offsets.copy()
    new_offsets[u + 1 :] -= 1
    new_offsets[v + 1 :] -= 1
    graph._offsets = new_offsets
    graph._neighbors = new_neighbors
    graph._num_edges -= 1
    graph._epoch = graph.epoch + 1
    return graph.epoch
