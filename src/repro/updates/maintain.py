"""Context-level update orchestration: mutate once, maintain everything.

One :class:`~repro.core.context.EngineContext` bundles the graph with
every structure derived from it — the distance oracle, the two-hop
counts, the shared distance-vector cache entries.  :func:`insert_edge`
and :func:`delete_edge` move them *together*:

1. validate that the context can be maintained at all (a
   :class:`~repro.storage.basis.StoredPML` over read-only mmap/shm
   arrays cannot be patched in place — refuse with
   :class:`~repro.errors.StaleIndexError` *before* mutating, so the
   graph and index never diverge);
2. splice the CSR and bump the epoch (:mod:`repro.updates.csr`);
3. repair the oracle — incremental label patching for inserts
   (dynamic-PLL resumed pruned BFS), conservative full rebuild for
   deletes, nothing for a BFS oracle (its epoch-checked memo self-heals);
4. recompute the two-hop counts of the affected vertices in place
   (``{u, v} ∪ N(u) ∪ N(v)``, neighborhoods read on the side of the
   update where the edge exists);
5. drop the oracle's entries from the process-wide distance-vector
   cache (the epoch key already makes them unreachable; this frees the
   memory now).

Everything observable is reported in the returned :class:`UpdateReport`
and counted in ``repro_graph_updates_total``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.context import EngineContext
from repro.errors import StaleIndexError
from repro.graph.graph import Graph
from repro.indexing.batch import shared_distance_cache
from repro.indexing.oracle import BFSOracle
from repro.indexing.pml import PrunedLandmarkLabeling
from repro.indexing.twohop import patch_two_hop_counts
from repro.obs.metrics import metrics
from repro.updates.csr import graph_delete_edge, graph_insert_edge
from repro.utils.timing import Stopwatch

__all__ = ["UpdateReport", "insert_edge", "delete_edge", "apply_updates"]


@dataclass(frozen=True)
class UpdateReport:
    """What one edge update did, and what it cost.

    ``strategy`` names how the oracle was maintained:
    ``pml-incremental`` (resumed pruned BFS), ``pml-rebuild`` (the
    conservative delete fallback), ``bfs-selfheal`` (nothing to do — the
    BFS memo validates epochs itself), or ``none`` (an epoch-unaware
    scalar oracle with no retained state, e.g. a bare counting wrapper
    over one of the above is unwrapped first).
    """

    kind: str  # "insert" | "delete"
    edge: tuple[int, int]
    epoch: int
    strategy: str
    labels_added: int = 0
    labels_updated: int = 0
    two_hop_recomputed: int = 0
    cache_dropped: int = 0
    elapsed_seconds: float = 0.0

    def as_dict(self) -> dict[str, object]:
        """Wire-facing payload (the service ``update`` verb returns this)."""
        return {
            "kind": self.kind,
            "edge": list(self.edge),
            "epoch": self.epoch,
            "strategy": self.strategy,
            "labels_added": self.labels_added,
            "labels_updated": self.labels_updated,
            "two_hop_recomputed": self.two_hop_recomputed,
            "cache_dropped": self.cache_dropped,
            "elapsed_seconds": self.elapsed_seconds,
        }


def _unwrap(oracle: object) -> object:
    """Peel counting/fault wrappers down to the oracle holding state."""
    seen: set[int] = set()
    while id(oracle) not in seen:
        seen.add(id(oracle))
        inner = getattr(oracle, "_inner", None) or getattr(oracle, "inner", None)
        if inner is None:
            return oracle
        oracle = inner
    return oracle


def _require_maintainable(ctx: EngineContext) -> object:
    """The unwrapped oracle, after proving the update can fully apply.

    Runs *before* any mutation: refusing here leaves the context exactly
    as it was.  Two refusal causes, both typed
    :class:`~repro.errors.StaleIndexError`: a PML whose label arrays are
    read-only views (mmap/shm bases — rebuild the basis instead), and a
    two-hop array that cannot be patched in place for the same reason.
    """
    oracle = _unwrap(ctx.oracle)
    if (
        isinstance(oracle, PrunedLandmarkLabeling)
        and not oracle.supports_incremental
    ):
        raise StaleIndexError(
            "a stored PML basis cannot be updated in place; rebuild the "
            "basis directory from a resident context"
        )
    two_hop = ctx.two_hop
    if hasattr(two_hop, "flags") and not two_hop.flags.writeable:
        raise StaleIndexError(
            "the context's two-hop counts are read-only (stored basis); "
            "updates require a resident context"
        )
    return oracle


def _affected_vertices(graph: Graph, u: int, v: int) -> set[int]:
    """``{u, v} ∪ N(u) ∪ N(v)`` — read while the edge exists."""
    affected = {int(u), int(v)}
    affected.update(int(w) for w in graph.neighbors(u))
    affected.update(int(w) for w in graph.neighbors(v))
    return affected


def _maintain_oracle(oracle: object, kind: str, u: int, v: int) -> tuple[str, int, int]:
    """Repair the unwrapped oracle; returns ``(strategy, added, updated)``."""
    if isinstance(oracle, PrunedLandmarkLabeling):
        if kind == "insert":
            added, updated = oracle.apply_edge_insert(u, v)
            return "pml-incremental", added, updated
        oracle.rebuild_inplace()
        return "pml-rebuild", 0, 0
    if isinstance(oracle, BFSOracle):
        return "bfs-selfheal", 0, 0
    return "none", 0, 0


def _apply(ctx: EngineContext, kind: str, u: int, v: int) -> UpdateReport:
    watch = Stopwatch().start()
    graph = ctx.graph
    oracle = _require_maintainable(ctx)
    if kind == "insert":
        epoch = graph_insert_edge(graph, u, v)
        affected = _affected_vertices(graph, u, v)  # post-insert adjacency
    else:
        affected = _affected_vertices(graph, u, v)  # pre-delete adjacency
        epoch = graph_delete_edge(graph, u, v)
    strategy, added, updated = _maintain_oracle(oracle, kind, u, v)
    recomputed = patch_two_hop_counts(graph, ctx.two_hop, affected)
    dropped = shared_distance_cache.invalidate(oracle)
    if oracle is not ctx.oracle:
        dropped += shared_distance_cache.invalidate(ctx.oracle)
    metrics.counter(
        "repro_graph_updates_total",
        "edge updates applied through repro.updates",
        kind=kind,
    ).inc()
    return UpdateReport(
        kind=kind,
        edge=(min(int(u), int(v)), max(int(u), int(v))),
        epoch=epoch,
        strategy=strategy,
        labels_added=added,
        labels_updated=updated,
        two_hop_recomputed=recomputed,
        cache_dropped=dropped,
        elapsed_seconds=watch.stop(),
    )


def insert_edge(ctx: EngineContext, u: int, v: int) -> UpdateReport:
    """Insert data-graph edge ``{u, v}`` and maintain every derived index."""
    return _apply(ctx, "insert", u, v)


def delete_edge(ctx: EngineContext, u: int, v: int) -> UpdateReport:
    """Delete data-graph edge ``{u, v}`` and maintain every derived index."""
    return _apply(ctx, "delete", u, v)


def apply_updates(
    ctx: EngineContext, ops: list[tuple[str, int, int]]
) -> list[UpdateReport]:
    """Apply a schedule of ``("insert" | "delete", u, v)`` operations."""
    reports = []
    for kind, u, v in ops:
        if kind not in ("insert", "delete"):
            raise ValueError(f"unknown update kind {kind!r}")
        reports.append(_apply(ctx, kind, u, v))
    return reports
