"""Small shared utilities: timers, RNG helpers, formatting."""

from repro.utils.timing import Stopwatch, TimeBudget, now
from repro.utils.rng import seeded_rng, spawn_rng
from repro.utils.fmt import format_duration, format_count, ascii_table

__all__ = [
    "Stopwatch",
    "TimeBudget",
    "now",
    "seeded_rng",
    "spawn_rng",
    "format_duration",
    "format_count",
    "ascii_table",
]
