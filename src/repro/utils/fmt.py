"""Human-readable formatting for experiment reports.

The experiment harness prints the same rows/series the paper reports; these
helpers keep that output consistent across the seven experiment modules and
the benchmark suite.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_duration", "format_count", "ascii_table"]


def format_duration(seconds: float) -> str:
    """Render a duration with a unit chosen for legibility.

    >>> format_duration(0.000002)
    '2.00us'
    >>> format_duration(0.0451)
    '45.10ms'
    >>> format_duration(3.2)
    '3.20s'
    """
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    if seconds < 120.0:
        return f"{seconds:.2f}s"
    return f"{seconds / 60.0:.1f}min"


def format_count(n: int | float) -> str:
    """Render a count with thousands separators (floats are rounded).

    >>> format_count(1234567)
    '1,234,567'
    """
    return f"{int(round(n)):,}"


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` as a fixed-width ASCII table.

    Numeric cells are right-aligned, text cells left-aligned, mirroring how
    the paper's tables read.  Returns the table as a single string (callers
    decide whether to print it or embed it in a report file).
    """
    materialized = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            width = widths[i] if i < len(widths) else len(cell)
            # Right-align things that look numeric for easy column scanning.
            if _looks_numeric(cell):
                parts.append(cell.rjust(width))
            else:
                parts.append(cell.ljust(width))
        return "| " + " | ".join(parts) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    for row in materialized:
        lines.append(fmt_row(row))
    lines.append(sep)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    text = str(value)
    # Control and line-breaking characters (\n, \x1e,  , ...) would
    # split a rendered row across lines; replace them so every cell stays
    # single-line.
    if not text.isprintable():
        text = "".join(ch if ch.isprintable() else " " for ch in text)
    return text


def _looks_numeric(cell: str) -> bool:
    stripped = cell.replace(",", "").replace("us", "").replace("ms", "")
    stripped = stripped.replace("min", "").rstrip("s").lstrip("-")
    if not stripped:
        return False
    try:
        float(stripped)
        return True
    except ValueError:
        return False
