"""Seeded randomness helpers.

Everything stochastic in this reproduction — synthetic graph generation,
label assignment, query instantiation, random distance-query sampling for
``t_avg`` — flows through explicitly seeded generators so that experiments
are reproducible run to run.
"""

from __future__ import annotations

import random

__all__ = ["seeded_rng", "spawn_rng"]


def seeded_rng(seed: int | None) -> random.Random:
    """Return a private :class:`random.Random` seeded with ``seed``.

    ``None`` yields an OS-seeded generator (only appropriate for ad-hoc
    exploration; all library entry points default to a fixed seed).
    """
    return random.Random(seed)


def spawn_rng(parent: random.Random, stream: str) -> random.Random:
    """Derive an independent child generator from ``parent``.

    ``stream`` names the purpose (e.g. ``"labels"``, ``"edges"``) so that
    adding a new consumer of randomness does not perturb the draws of
    existing consumers — the child seed mixes the parent's state with the
    stream name rather than consuming draws positionally.
    """
    base = parent.getrandbits(64)
    return random.Random(hash((base, stream)) & 0xFFFFFFFFFFFFFFFF)
