"""Timing primitives.

The blended querying paradigm is all about *budgeted* computation: a query
edge may only be processed if its estimated cost fits inside the GUI latency
that the user's next action will provide.  Two small primitives support this
throughout the code base:

* :class:`Stopwatch` — an accumulating timer used to measure CAP construction
  time, SRT, and per-phase costs.
* :class:`TimeBudget` — a countdown used by the Defer-to-Idle strategy's
  pool probing (Algorithm 10 in the paper) to stop draining the edge pool
  once the idle window is exhausted.

Both read the process-wide clock in :mod:`repro.obs.clock` at call time —
the same source span timestamps use — so stopwatch accumulators, deadline
accounting, and trace timelines can never skew against each other.
Monkeypatch ``repro.obs.clock.monotonic`` to move all of them together.
The module-level :func:`now` is a deprecated alias of
:func:`repro.obs.clock.now` kept for older call sites.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.obs import clock


def now() -> float:
    """Deprecated alias of :func:`repro.obs.clock.now`.

    .. deprecated::
        Import ``now`` from :mod:`repro.obs.clock` instead; this wrapper
        only survives for legacy call sites and will be removed.
    """
    warnings.warn(
        "repro.utils.timing.now() is deprecated; use repro.obs.clock.now()",
        DeprecationWarning,
        stacklevel=2,
    )
    return clock.now()


@dataclass
class Stopwatch:
    """Accumulating stopwatch.

    >>> sw = Stopwatch()
    >>> sw.start(); _ = sum(range(1000)); sw.stop()
    >>> sw.elapsed >= 0.0
    True

    The stopwatch may be started and stopped repeatedly; ``elapsed``
    accumulates across runs.  Use :meth:`reset` to zero it.
    """

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> "Stopwatch":
        """Start (or resume) the stopwatch.  Idempotent while running."""
        if self._started_at is None:
            self._started_at = clock.now()
        return self

    def stop(self) -> float:
        """Stop the stopwatch and return total elapsed seconds."""
        if self._started_at is not None:
            self.elapsed += clock.now() - self._started_at
            self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        """Zero the accumulated time and stop the watch."""
        self.elapsed = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        """True while the stopwatch is started."""
        return self._started_at is not None

    def read(self) -> float:
        """Return elapsed time including the current run, without stopping."""
        if self._started_at is None:
            return self.elapsed
        return self.elapsed + (clock.now() - self._started_at)

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class TimeBudget:
    """Countdown budget over wall-clock time.

    ``TimeBudget(0.5)`` grants half a second; :meth:`remaining` shrinks as
    real time passes and :attr:`exhausted` flips once it reaches zero.  A
    non-positive initial budget is exhausted immediately, and ``None`` means
    *unlimited* (used by tests and by Defer-to-Run pool drain, which runs to
    completion regardless of latency).
    """

    def __init__(self, seconds: float | None) -> None:
        self._limit = seconds
        self._start = clock.now()

    @property
    def limit(self) -> float | None:
        """The initially granted budget in seconds (``None`` = unlimited)."""
        return self._limit

    def remaining(self) -> float:
        """Seconds left; ``float('inf')`` when unlimited; never negative."""
        if self._limit is None:
            return float("inf")
        left = self._limit - (clock.now() - self._start)
        return left if left > 0.0 else 0.0

    @property
    def exhausted(self) -> bool:
        """True once no budget remains."""
        return self.remaining() <= 0.0

    def can_afford(self, estimated_cost: float) -> bool:
        """True if ``estimated_cost`` seconds fit within the remaining budget."""
        return estimated_cost <= self.remaining()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimeBudget(limit={self._limit}, remaining={self.remaining():.4f})"
