"""Timing primitives.

The blended querying paradigm is all about *budgeted* computation: a query
edge may only be processed if its estimated cost fits inside the GUI latency
that the user's next action will provide.  Two small primitives support this
throughout the code base:

* :class:`Stopwatch` — an accumulating timer used to measure CAP construction
  time, SRT, and per-phase costs.
* :class:`TimeBudget` — a countdown used by the Defer-to-Idle strategy's
  pool probing (Algorithm 10 in the paper) to stop draining the edge pool
  once the idle window is exhausted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


def now() -> float:
    """Return a monotonic timestamp in seconds.

    Thin wrapper over :func:`time.perf_counter` so tests can monkeypatch a
    single symbol to obtain deterministic timing.
    """
    return time.perf_counter()


@dataclass
class Stopwatch:
    """Accumulating stopwatch.

    >>> sw = Stopwatch()
    >>> sw.start(); _ = sum(range(1000)); sw.stop()
    >>> sw.elapsed >= 0.0
    True

    The stopwatch may be started and stopped repeatedly; ``elapsed``
    accumulates across runs.  Use :meth:`reset` to zero it.
    """

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> "Stopwatch":
        """Start (or resume) the stopwatch.  Idempotent while running."""
        if self._started_at is None:
            self._started_at = now()
        return self

    def stop(self) -> float:
        """Stop the stopwatch and return total elapsed seconds."""
        if self._started_at is not None:
            self.elapsed += now() - self._started_at
            self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        """Zero the accumulated time and stop the watch."""
        self.elapsed = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        """True while the stopwatch is started."""
        return self._started_at is not None

    def read(self) -> float:
        """Return elapsed time including the current run, without stopping."""
        if self._started_at is None:
            return self.elapsed
        return self.elapsed + (now() - self._started_at)

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class TimeBudget:
    """Countdown budget over wall-clock time.

    ``TimeBudget(0.5)`` grants half a second; :meth:`remaining` shrinks as
    real time passes and :attr:`exhausted` flips once it reaches zero.  A
    non-positive initial budget is exhausted immediately, and ``None`` means
    *unlimited* (used by tests and by Defer-to-Run pool drain, which runs to
    completion regardless of latency).
    """

    def __init__(self, seconds: float | None) -> None:
        self._limit = seconds
        self._start = now()

    @property
    def limit(self) -> float | None:
        """The initially granted budget in seconds (``None`` = unlimited)."""
        return self._limit

    def remaining(self) -> float:
        """Seconds left; ``float('inf')`` when unlimited; never negative."""
        if self._limit is None:
            return float("inf")
        left = self._limit - (now() - self._start)
        return left if left > 0.0 else 0.0

    @property
    def exhausted(self) -> bool:
        """True once no budget remains."""
        return self.remaining() <= 0.0

    def can_afford(self, estimated_cost: float) -> bool:
        """True if ``estimated_cost`` seconds fit within the remaining budget."""
        return estimated_cost <= self.remaining()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimeBudget(limit={self._limit}, remaining={self.remaining():.4f})"
