"""Query workload: the paper's template queries, instantiation, and QFS.

Figure 4 of the paper defines six small template queries — cycles
(Q1, Q2, Q4), a star (Q5) and flowers (Q3, Q6) — matching the topology
statistics of real-life graph-pattern query logs.  Experiments instantiate
these templates on each dataset (choosing vertex labels), override edge
bounds per experiment, and optionally reorder edge formulation (the QFS
sequences of Table 2).
"""

from repro.workload.templates import (
    QueryTemplate,
    TEMPLATES,
    get_template,
    template_names,
)
from repro.workload.generator import (
    QueryInstance,
    instantiate,
    instantiate_from_region,
    paper_query_set,
)
from repro.workload.qfs import QFS_SEQUENCES, qfs_edge_order
from repro.workload.traffic import (
    SessionScript,
    SoakWorkloadConfig,
    generate_soak_schedule,
)

__all__ = [
    "SessionScript",
    "SoakWorkloadConfig",
    "generate_soak_schedule",
    "QueryTemplate",
    "TEMPLATES",
    "get_template",
    "template_names",
    "QueryInstance",
    "instantiate",
    "instantiate_from_region",
    "paper_query_set",
    "QFS_SEQUENCES",
    "qfs_edge_order",
]
