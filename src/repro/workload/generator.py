"""Instantiating template queries on a data graph.

A template fixes topology and default bounds; an *instance* additionally
fixes the vertex labels.  Like most graph-matching benchmarks (and like the
paper's user study, where participants formulated queries that make sense
on the dataset), labels are drawn from an actual *region* of the data graph
so that instances are satisfiable rather than vacuously empty: a seeded
random walk picks ``|V_B|`` nearby data vertices and their labels become
the template's vertex labels.

:func:`paper_query_set` reproduces the evaluation's query population —
every template instantiated on the dataset with several label seeds and
bound variations (the paper's "103 unique BPH queries" across 3 datasets).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.query import BPHQuery, Bounds
from repro.errors import ExperimentError
from repro.graph.graph import Graph
from repro.utils.rng import seeded_rng
from repro.workload.templates import QueryTemplate, get_template, template_names

__all__ = ["QueryInstance", "instantiate", "instantiate_from_region", "paper_query_set"]


@dataclass(frozen=True)
class QueryInstance:
    """A fully specified BPH query ready to be formulated.

    ``labels[i]`` is the label of template vertex ``q{i+1}``; ``bounds[i]``
    the bounds of template edge ``e{i+1}``.
    """

    template: QueryTemplate
    labels: tuple[object, ...]
    bounds: tuple[Bounds, ...]
    dataset: str = ""
    seed: int = 0
    tag: str = ""
    extras: dict[str, object] = field(default_factory=dict, hash=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.labels) != self.template.num_vertices:
            raise ExperimentError(
                f"{self.template.name}: expected {self.template.num_vertices} "
                f"labels, got {len(self.labels)}"
            )
        if len(self.bounds) != self.template.num_edges:
            raise ExperimentError(
                f"{self.template.name}: expected {self.template.num_edges} "
                f"bounds, got {len(self.bounds)}"
            )

    @property
    def name(self) -> str:
        """Readable instance id, e.g. ``Q2@dblp#3``."""
        suffix = f"/{self.tag}" if self.tag else ""
        return f"{self.template.name}@{self.dataset}#{self.seed}{suffix}"

    def with_bounds(self, overrides: dict[int, Bounds], tag: str = "") -> "QueryInstance":
        """New instance with edge bounds overridden by 1-based edge index."""
        new_bounds = list(self.bounds)
        for index, bounds in overrides.items():
            if not 1 <= index <= len(new_bounds):
                raise ExperimentError(
                    f"{self.template.name} has no edge e{index}"
                )
            new_bounds[index - 1] = bounds
        return replace(self, bounds=tuple(new_bounds), tag=tag or self.tag)

    def with_upper(self, overrides: dict[int, int], tag: str = "") -> "QueryInstance":
        """Override only upper bounds (keeps each edge's lower bound).

        A lower bound above the new upper is clamped down to keep the edge
        well-formed.
        """
        for index in overrides:
            if not 1 <= index <= len(self.bounds):
                raise ExperimentError(f"{self.template.name} has no edge e{index}")
        return self.with_bounds(
            {
                i: Bounds(min(self.bounds[i - 1].lower, upper), upper)
                for i, upper in overrides.items()
            },
            tag=tag,
        )

    def build_query(self) -> BPHQuery:
        """Materialize a :class:`BPHQuery` (vertex ids = 1-based template ids).

        Mostly for direct evaluation (BU, tests); the GUI simulator builds
        the query action-by-action instead.
        """
        query = BPHQuery(name=self.name)
        for i, label in enumerate(self.labels, start=1):
            query.add_vertex(label, vertex_id=i)
        for (u, v), bounds in zip(self.template.edges, self.bounds):
            query.add_edge(u, v, lower=bounds.lower, upper=bounds.upper)
        return query


def instantiate_from_region(
    template: QueryTemplate,
    graph: Graph,
    seed: int = 0,
    dataset: str = "",
) -> QueryInstance:
    """Instantiate ``template`` with labels sampled from a graph region.

    A random walk from a seeded start vertex collects ``num_vertices``
    distinct nearby vertices; their labels (in visit order) label
    ``q1..qk``.  Nearby vertices are mutually reachable within small
    distances, making the instance satisfiable under the default bounds
    with high probability.
    """
    if graph.num_vertices < template.num_vertices:
        raise ExperimentError(
            f"graph {graph.name} too small for template {template.name}"
        )
    rng = seeded_rng(seed)
    for _attempt in range(64):
        start = rng.randrange(graph.num_vertices)
        visited: list[int] = [start]
        current = start
        steps = 0
        while len(visited) < template.num_vertices and steps < 200:
            steps += 1
            nbrs = graph.neighbors(current)
            if len(nbrs) == 0:
                break
            current = int(nbrs[rng.randrange(len(nbrs))])
            if current not in visited:
                visited.append(current)
        if len(visited) == template.num_vertices:
            labels = tuple(graph.label(v) for v in visited)
            return QueryInstance(
                template=template,
                labels=labels,
                bounds=template.default_bounds,
                dataset=dataset or graph.name,
                seed=seed,
            )
    raise ExperimentError(
        f"could not sample a region of size {template.num_vertices} "
        f"from {graph.name} (too sparse/disconnected?)"
    )


def instantiate(
    template_name: str,
    graph: Graph,
    seed: int = 0,
    dataset: str = "",
) -> QueryInstance:
    """Convenience wrapper: look up the template and sample an instance."""
    return instantiate_from_region(
        get_template(template_name), graph, seed=seed, dataset=dataset
    )


def paper_query_set(
    graph: Graph,
    dataset: str = "",
    seeds_per_template: int = 2,
) -> list[QueryInstance]:
    """The evaluation's query population for one dataset.

    The paper generates 103 unique queries over 3 datasets by varying
    vertex labels and bounds across the 6 templates; here every template
    contributes ``seeds_per_template`` label instantiations with default
    bounds (experiment modules apply their own bound overrides on top,
    which is how the paper derived its variations too).
    """
    instances: list[QueryInstance] = []
    for name in template_names():
        for seed in range(seeds_per_template):
            instances.append(
                instantiate(name, graph, seed=seed * 37 + 11, dataset=dataset)
            )
    return instances
