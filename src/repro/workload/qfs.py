"""Query formulation sequences (QFS) — paper Table 2.

Users can draw the same query's edges in different orders; Exp 7 shows that
the Immediate strategy is sensitive to the order (expensive-edges-first is
~2x worse) while the deferment strategies are not.  Table 2 fixes the exact
sequences studied for Q1 (three orders) and Q6 (four orders); edge numbers
refer to the template's ``e1..e6``.
"""

from __future__ import annotations

from repro.errors import ExperimentError

__all__ = ["QFS_SEQUENCES", "qfs_edge_order"]

#: Table 2, verbatim: template -> sequence label -> 1-based edge indices.
QFS_SEQUENCES: dict[str, dict[str, tuple[int, ...]]] = {
    "Q1": {
        "S1": (1, 2, 3),
        "S2": (2, 1, 3),
        "S3": (3, 2, 1),
    },
    "Q6": {
        "S1": (1, 2, 3, 4, 5, 6),
        "S2": (4, 1, 2, 3, 5, 6),
        "S3": (2, 3, 4, 1, 5, 6),
        "S4": (5, 6, 2, 3, 4, 1),
    },
}


def qfs_edge_order(template_name: str, sequence: str) -> tuple[int, ...]:
    """The 1-based edge order of ``sequence`` for ``template_name``.

    Raises :class:`ExperimentError` for combinations Table 2 does not
    define.
    """
    try:
        return QFS_SEQUENCES[template_name.upper()][sequence.upper()]
    except KeyError:
        raise ExperimentError(
            f"Table 2 defines no QFS {sequence!r} for template {template_name!r}"
        ) from None
