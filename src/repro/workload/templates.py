"""Template BPH queries Q1–Q6 (paper Figure 4).

The paper's evaluation uses six small templates whose topologies occur in
real query logs (Bonifati et al.'s SPARQL study: 90.8% of real queries use
at most 6 edges): cycles (Q1, Q2, Q4), a star (Q5), and flowers (Q3, Q6).
Each template fixes

* the vertex set ``q1..qk`` (1-based, as in the paper),
* the *default edge construction order* ``e1..em`` (the numbers in the
  filled circles of Figure 4) together with default bounds, and
* the average query formulation time ``F_avg`` reported in Figure 4, which
  calibrates the GUI simulator (scaled with the dataset's latency scale).

Exact default bounds and F_avg values are not machine-readable from the
figure; the values below are chosen to match every constraint the paper's
text states about them (which edges exist, which get overridden in each
experiment, and the relative QFT ordering of the templates), and are the
single source of truth for this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.query import Bounds
from repro.errors import ExperimentError

__all__ = ["QueryTemplate", "TEMPLATES", "get_template", "template_names"]


@dataclass(frozen=True)
class QueryTemplate:
    """Topology + default construction order of one Figure-4 template.

    ``edges[i]`` is the edge the paper calls ``e_{i+1}``; its endpoints are
    1-based vertex numbers ``q1..q{num_vertices}``.
    """

    name: str
    kind: str  # "cycle" | "star" | "flower"
    num_vertices: int
    edges: tuple[tuple[int, int], ...]
    default_bounds: tuple[Bounds, ...]
    f_avg_seconds: float  # Figure 4's average QFT (unscaled)

    def __post_init__(self) -> None:
        if len(self.edges) != len(self.default_bounds):
            raise ExperimentError(f"{self.name}: edges/bounds length mismatch")
        for u, v in self.edges:
            if not (1 <= u <= self.num_vertices and 1 <= v <= self.num_vertices):
                raise ExperimentError(f"{self.name}: edge ({u},{v}) out of range")

    @property
    def num_edges(self) -> int:
        """``|E_B|`` of the template."""
        return len(self.edges)

    def edge_index(self, u: int, v: int) -> int:
        """1-based index ``i`` such that ``e_i == {u, v}``."""
        key = (u, v) if u <= v else (v, u)
        for i, (a, b) in enumerate(self.edges, start=1):
            if ((a, b) if a <= b else (b, a)) == key:
                return i
        raise ExperimentError(f"{self.name}: no edge ({u},{v})")


#: The six templates.  Topology notes:
#: * Q1 — triangle (the Figure 2 example);
#: * Q2 — 4-cycle; Q4 — 5-cycle;
#: * Q3 — flower: triangle q1q2q3 plus petal q4 on q1;
#: * Q5 — star: hub q1 with leaves q2..q5 (4 edges, matching Table 1 which
#:   reports e3/e4 but no e5/e6 for Q5);
#: * Q6 — flower: 4-cycle q1q2q3q4 plus petal path q2-q5-q4 (6 edges,
#:   matching Table 2's e1..e6 for Q6).
TEMPLATES: dict[str, QueryTemplate] = {
    "Q1": QueryTemplate(
        name="Q1",
        kind="cycle",
        num_vertices=3,
        edges=((1, 2), (2, 3), (1, 3)),
        default_bounds=(Bounds(1, 1), Bounds(1, 2), Bounds(1, 3)),
        f_avg_seconds=20.0,
    ),
    "Q2": QueryTemplate(
        name="Q2",
        kind="cycle",
        num_vertices=4,
        edges=((1, 2), (2, 3), (3, 4), (1, 4)),
        default_bounds=(Bounds(1, 2), Bounds(1, 1), Bounds(1, 2), Bounds(1, 1)),
        f_avg_seconds=28.0,
    ),
    "Q3": QueryTemplate(
        name="Q3",
        kind="flower",
        num_vertices=4,
        edges=((1, 2), (2, 3), (1, 3), (1, 4)),
        default_bounds=(Bounds(1, 1), Bounds(1, 2), Bounds(1, 2), Bounds(1, 1)),
        f_avg_seconds=30.0,
    ),
    "Q4": QueryTemplate(
        name="Q4",
        kind="cycle",
        num_vertices=5,
        edges=((1, 2), (2, 3), (3, 4), (4, 5), (1, 5)),
        default_bounds=(
            Bounds(1, 2),
            Bounds(1, 1),
            Bounds(1, 2),
            Bounds(1, 1),
            Bounds(1, 2),
        ),
        f_avg_seconds=35.0,
    ),
    "Q5": QueryTemplate(
        name="Q5",
        kind="star",
        num_vertices=5,
        edges=((1, 2), (1, 3), (1, 4), (1, 5)),
        default_bounds=(Bounds(1, 2), Bounds(1, 2), Bounds(1, 1), Bounds(1, 1)),
        f_avg_seconds=30.0,
    ),
    "Q6": QueryTemplate(
        name="Q6",
        kind="flower",
        num_vertices=5,
        edges=((1, 2), (2, 3), (3, 4), (1, 4), (2, 5), (4, 5)),
        default_bounds=(
            Bounds(1, 2),
            Bounds(1, 1),
            Bounds(1, 2),
            Bounds(1, 1),
            Bounds(1, 1),
            Bounds(1, 2),
        ),
        f_avg_seconds=45.0,
    ),
}


def get_template(name: str) -> QueryTemplate:
    """Look up a template by its paper name (``"Q1"``..``"Q6"``)."""
    try:
        return TEMPLATES[name.upper()]
    except KeyError:
        raise ExperimentError(
            f"unknown template {name!r}; expected one of {sorted(TEMPLATES)}"
        ) from None


def template_names() -> list[str]:
    """All template names in paper order."""
    return sorted(TEMPLATES)
