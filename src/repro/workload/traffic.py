"""Soak traffic: heavy-tailed arrivals of simulated formulation sessions.

The paper's experiments replay one session at a time; the service needs
the opposite — *sustained, overlapping, realistic* user traffic, in the
spirit of Orion's user-session model (PAPERS.md): sessions arrive with
heavy-tailed interarrival gaps (a Pareto process — bursts and lulls, not
a metronome), think between actions with jittered GUI latency, sometimes
revise bounds mid-formulation, and sometimes abandon the session outright
(the client thread dies without a goodbye — exactly the worker-thread
death the chaos soak injects).

Everything is **derived deterministically from one seed**: the same
:class:`SoakWorkloadConfig` always yields the same arrival offsets, the
same per-session action lists with the same think times, the same
modification and abandonment choices (the determinism regression in
``tests/test_workload_generator.py`` pins this).  Per-session randomness
comes from :func:`~repro.utils.rng.spawn_rng` streams, so adding a
session never perturbs the ones before it.

Actions are emitted in the session-recording dict format
(:mod:`repro.gui.recording`) — the same bytes the wire protocol's
``action`` op accepts — so a schedule drives :class:`ServiceClient`
directly and can be archived as a benchmark artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.actions import ModifyBounds
from repro.core.cost import GUILatencyConstants
from repro.errors import ExperimentError
from repro.graph.graph import Graph
from repro.workload.generator import instantiate
from repro.workload.templates import template_names
from repro.utils.rng import seeded_rng, spawn_rng

__all__ = ["SoakWorkloadConfig", "SessionScript", "generate_soak_schedule"]


@dataclass(frozen=True)
class SoakWorkloadConfig:
    """One reproducible traffic mix (immutable; the seed is the identity).

    Parameters
    ----------
    seed:
        Root seed; every arrival, label choice, think time, modification
        and abandonment derives from it.
    sessions:
        Number of user sessions in the schedule.
    mean_interarrival_seconds:
        Mean gap between session starts (virtual seconds; the soak
        harness scales them to wall clock).
    pareto_alpha:
        Tail index of the interarrival distribution (must be > 1 so the
        mean exists; lower = burstier).
    think_jitter:
        Lognormal jitter of the GUI latency model (0 = the paper's fixed
        per-action constants).
    think_speed:
        Speed multiplier on think time (2.0 = users twice as fast).
    modify_rate:
        Probability a session revises one edge's upper bound
        mid-formulation (a ``ModifyBounds`` before Run).
    abandon_rate:
        Probability a session walks away mid-formulation: the schedule
        truncates its actions and never runs — the driving thread just
        stops (or dies, under chaos) without closing the session.
    templates:
        Template names to draw from (default: all six paper templates).
    postures:
        Resilience postures to rotate through (wire ``resilience`` values).
    """

    seed: int = 0
    sessions: int = 20
    mean_interarrival_seconds: float = 0.5
    pareto_alpha: float = 1.5
    think_jitter: float = 0.15
    think_speed: float = 1.0
    modify_rate: float = 0.3
    abandon_rate: float = 0.1
    templates: tuple[str, ...] = ()
    postures: tuple[str, ...] = ("default",)

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ExperimentError("soak schedule needs at least one session")
        if self.pareto_alpha <= 1.0:
            raise ExperimentError(
                "pareto_alpha must be > 1 (heavier tails have no mean "
                "interarrival to target)"
            )
        if self.mean_interarrival_seconds < 0:
            raise ExperimentError("mean_interarrival_seconds must be >= 0")
        for rate in (self.modify_rate, self.abandon_rate):
            if not 0.0 <= rate <= 1.0:
                raise ExperimentError("rates must be within [0, 1]")
        if not self.postures:
            raise ExperimentError("at least one resilience posture required")


@dataclass
class SessionScript:
    """One simulated user's complete, pre-drawn behavior."""

    index: int
    name: str  # instance name, e.g. "Q2@soak#17"
    arrival_offset: float  # virtual seconds after soak start
    posture: str
    #: Recording-format dicts, ``Run`` last — unless the user abandons,
    #: in which case the list is truncated and ``abandoned`` is True.
    actions: list[dict] = field(default_factory=list)
    abandoned: bool = False
    modified: bool = False

    def to_dict(self) -> dict[str, object]:
        return {
            "index": self.index,
            "name": self.name,
            "arrival_offset": self.arrival_offset,
            "posture": self.posture,
            "actions": list(self.actions),
            "abandoned": self.abandoned,
            "modified": self.modified,
        }


def generate_soak_schedule(
    graph: Graph, config: SoakWorkloadConfig
) -> list[SessionScript]:
    """Materialize the full soak schedule for ``config`` on ``graph``.

    Pure function of ``(graph, config)``: no wall clock, no global RNG.
    """
    # Imported here, not at module top: repro.gui.simulator itself imports
    # repro.workload (for QueryInstance), so a top-level import would be
    # circular whenever repro.gui initializes first.
    from repro.gui.latency import LatencyModel
    from repro.gui.recording import action_to_dict
    from repro.gui.simulator import SimulatedUser

    root = seeded_rng(config.seed)
    arrivals_rng = spawn_rng(root, "arrivals")
    names = config.templates or tuple(template_names())
    # Normalize Pareto samples so the configured mean is actually the
    # mean: E[paretovariate(a)] = a / (a - 1).
    pareto_mean = config.pareto_alpha / (config.pareto_alpha - 1.0)

    scripts: list[SessionScript] = []
    clock = 0.0
    for index in range(config.sessions):
        gap = (
            arrivals_rng.paretovariate(config.pareto_alpha)
            / pareto_mean
            * config.mean_interarrival_seconds
        )
        clock += gap
        rng = spawn_rng(root, f"session-{index}")
        template = rng.choice(list(names))
        instance = instantiate(
            template, graph, seed=rng.randrange(2**31), dataset="soak"
        )
        model = LatencyModel(
            GUILatencyConstants(),
            jitter=config.think_jitter,
            speed=config.think_speed,
            seed=rng.randrange(2**31),
        )
        actions = SimulatedUser(model).formulate(instance)

        modified = False
        if rng.random() < config.modify_rate:
            # Revise one edge's upper bound mid-formulation: loosen it by
            # 1 so the query stays valid and typically gains matches.
            edge_index = rng.randrange(len(instance.bounds))
            u, v = instance.template.edges[edge_index]
            bounds = instance.bounds[edge_index]
            revise = ModifyBounds(
                u=u,
                v=v,
                lower=bounds.lower,
                upper=bounds.upper + 1,
                latency_after=model.action_time(actions[-2])
                if len(actions) > 1
                else None,
            )
            actions.insert(len(actions) - 1, revise)
            modified = True

        abandoned = False
        if rng.random() < config.abandon_rate and len(actions) > 2:
            # Walk away mid-formulation: keep a nonempty prefix, drop Run.
            cut = rng.randrange(1, len(actions) - 1)
            actions = actions[:cut]
            abandoned = True

        scripts.append(
            SessionScript(
                index=index,
                name=instance.name,
                arrival_offset=clock,
                posture=config.postures[index % len(config.postures)],
                actions=[action_to_dict(a) for a in actions],
                abandoned=abandoned,
                modified=modified,
            )
        )
    return scripts
