"""Shared fixtures: small deterministic graphs, contexts, dataset bundles."""

from __future__ import annotations

import itertools
import os

import pytest

from repro.core.preprocessor import make_context, preprocess
from repro.core.cost import GUILatencyConstants
from repro.core.query import BPHQuery
from repro.graph.algorithms import bfs_distances, has_path_within
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph


def build_fig2_graph() -> Graph:
    """The paper's Figure 2(b)-style data graph used in worked examples.

    Twelve vertices; labels: A on v1..v4 (candidates of q1), B on v5..v8
    (q2), X on connectors v9..v11, C on v12 (q3).  Vertex ids are 0-based
    (paper's v1 = id 0, ..., v12 = id 11).
    """
    builder = GraphBuilder("fig2")
    labels = ["A", "A", "A", "A", "B", "B", "B", "B", "X", "X", "X", "C"]
    builder.add_vertices(labels)
    edges = [
        (1, 4),  # v2-v5
        (2, 5),  # v3-v6
        (2, 7),  # v3-v8
        (3, 6),  # v4-v7
        (4, 8),  # v5-v9
        (8, 11),  # v9-v12
        (5, 9),  # v6-v10
        (9, 11),  # v10-v12
        (7, 11),  # v8-v12
        (4, 5),  # v5-v6
        (0, 8),  # v1-v9
    ]
    for u, v in edges:
        builder.add_edge(u, v)
    return builder.build()


def build_path_graph(n: int, label: str = "P") -> Graph:
    """A labeled path 0-1-...-(n-1)."""
    builder = GraphBuilder(f"path{n}")
    builder.add_vertices([label] * n)
    for v in range(n - 1):
        builder.add_edge(v, v + 1)
    return builder.build()


def build_cycle_graph(n: int, label: str = "C") -> Graph:
    """A labeled cycle of length n."""
    builder = GraphBuilder(f"cycle{n}")
    builder.add_vertices([label] * n)
    for v in range(n):
        builder.add_edge(v, (v + 1) % n)
    return builder.build()


def brute_force_upper_matches(graph: Graph, query: BPHQuery) -> set[tuple[tuple[int, int], ...]]:
    """Reference V_Delta: injective label-respecting maps meeting upper bounds.

    Exhaustive (exponential) — only for small test graphs.  Distances are
    plain BFS ground truth, fully independent of the engine under test.
    """
    qids = query.vertex_ids()
    candidate_lists = [
        [int(v) for v in graph.vertices_with_label(query.label(q))] for q in qids
    ]
    dist_cache: dict[int, object] = {}

    def dist(u: int, v: int) -> int:
        if u not in dist_cache:
            dist_cache[u] = bfs_distances(graph, u)
        return int(dist_cache[u][v])

    results: set[tuple[tuple[int, int], ...]] = set()
    for combo in itertools.product(*candidate_lists):
        if len(set(combo)) != len(combo):
            continue
        assignment = dict(zip(qids, combo))
        ok = True
        for edge in query.edges():
            d = dist(assignment[edge.u], assignment[edge.v])
            if d < 0 or d > edge.upper or assignment[edge.u] == assignment[edge.v]:
                ok = False
                break
        if ok:
            results.add(tuple(sorted(assignment.items())))
    return results


def brute_force_full_matches(graph: Graph, query: BPHQuery) -> set[tuple[tuple[int, int], ...]]:
    """Reference fully-validated matches: upper bounds + lower-bound paths."""
    full: set[tuple[tuple[int, int], ...]] = set()
    for match in brute_force_upper_matches(graph, query):
        assignment = dict(match)
        ok = True
        for edge in query.edges():
            if not has_path_within(
                graph, assignment[edge.u], assignment[edge.v], edge.lower, edge.upper
            ):
                ok = False
                break
        if ok:
            full.add(match)
    return full


@pytest.fixture(scope="session")
def fig2_graph() -> Graph:
    return build_fig2_graph()


@pytest.fixture(scope="session")
def fig2_pre(fig2_graph):
    return preprocess(fig2_graph, t_avg_samples=200)


@pytest.fixture()
def fig2_ctx(fig2_pre):
    """Fresh context per test (counters are mutable)."""
    return make_context(fig2_pre, latency=GUILatencyConstants().scaled(0.001))


@pytest.fixture()
def pooled_ctx(fig2_ctx):
    """fig2 with ``t_avg`` inflated so upper-3 edges classify expensive.

    fig2's candidate sets are tiny (4x4 at most), so with the measured
    ``t_avg`` every edge is cheap and nothing ever pools.  Raising
    ``t_avg`` to 2 ms puts the upper-3 estimates (8-32 ms) above ``t_lat``
    (2 ms, so Definition 5.8 pools them) while small donated idle windows
    (tens of ms) still fit them — the regime the service scheduler and
    concurrency tests need.
    """
    from dataclasses import replace

    return replace(
        fig2_ctx, cost_model=replace(fig2_ctx.cost_model, t_avg=0.002)
    )


def make_fig2_query() -> BPHQuery:
    """The paper's Q1 on the Figure-2 graph: A-B [1,1], B-C [1,2], A-C [1,3]."""
    query = BPHQuery(name="fig2-Q1")
    query.add_vertex("A", vertex_id=0)
    query.add_vertex("B", vertex_id=1)
    query.add_vertex("C", vertex_id=2)
    query.add_edge(0, 1, 1, 1)
    query.add_edge(1, 2, 1, 2)
    query.add_edge(0, 2, 1, 3)
    return query


@pytest.fixture(autouse=True)
def _lock_order_monitor():
    """Opt-in lockdep pass: ``REPRO_LOCK_MONITOR=1 pytest ...``.

    Every ``threading.Lock``/``RLock`` created during the test is replaced
    by an instrumented shim (see :mod:`repro.analysis.lockorder`); the
    teardown assertion turns any lock-order inversion observed anywhere in
    the test into a failure — CI runs the service concurrency suite under
    this to prove the shared-oracle scheduling stays deadlock-free.
    """
    if os.environ.get("REPRO_LOCK_MONITOR") != "1":
        yield None
        return
    from repro.analysis.lockorder import LockOrderMonitor, patch_locks

    monitor = LockOrderMonitor()
    with patch_locks(monitor):
        yield monitor
    monitor.assert_clean()


@pytest.fixture(scope="session")
def wordnet_tiny():
    from repro.datasets.registry import get_dataset

    return get_dataset("wordnet", "tiny")


@pytest.fixture(scope="session")
def dblp_tiny():
    from repro.datasets.registry import get_dataset

    return get_dataset("dblp", "tiny")


@pytest.fixture(scope="session")
def flickr_tiny():
    from repro.datasets.registry import get_dataset

    return get_dataset("flickr", "tiny")
