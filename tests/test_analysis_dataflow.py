"""Dataflow-tier boomerlint tests: the CFG framework and rules R10–R12.

Each rule gets the fixture pair the issue demands: a seeded violation it
must fire on, and the corrected form it must stay silent on — plus the
shapes (finally-cleanup, ownership handoff, lock-held helpers) that a
naive implementation would false-positive on.
"""

from __future__ import annotations

import ast
import textwrap

from repro.analysis import LintEngine
from repro.analysis.dataflow import build_cfg, iter_step_states, scoped_walk, solve_forward


def lint(src: str, path: str, rule: str):
    report = LintEngine.for_rule_ids([rule]).lint_source(
        textwrap.dedent(src), path
    )
    return report


class TestCFG:
    def _fn(self, src: str) -> ast.FunctionDef:
        tree = ast.parse(textwrap.dedent(src))
        fn = tree.body[0]
        assert isinstance(fn, ast.FunctionDef)
        return fn

    def test_straight_line_reaches_exit(self):
        cfg = build_cfg(self._fn("def f():\n    a = 1\n    b = 2\n"))
        states = solve_forward(cfg, 0, lambda s, _: s + 1, max)
        assert states[cfg.exit] == 2  # both steps on the only path

    def test_branch_meet_is_applied(self):
        src = """
        def f(c):
            if c:
                a = 1
            else:
                a = 2
            return a
        """
        cfg = build_cfg(self._fn(src))
        # Count steps along each path: test + one assign + return.
        states = solve_forward(cfg, 0, lambda s, _: s + 1, min)
        assert states[cfg.exit] == 3

    def test_raise_path_never_reaches_exit(self):
        src = """
        def f(c):
            if c:
                raise ValueError("boom")
            x = 1
        """
        cfg = build_cfg(self._fn(src))
        states = solve_forward(
            cfg, "entry", lambda s, _: s, lambda a, b: a
        )
        # The raise arm contributes nothing to the exit meet; only the
        # fall-through path arrives.
        assert cfg.exit in states

    def test_while_loop_back_edge_converges(self):
        src = """
        def f(n):
            while n:
                n -= 1
            return n
        """
        cfg = build_cfg(self._fn(src))
        states = solve_forward(
            cfg,
            frozenset(),
            lambda s, _: s,
            lambda a, b: a | b,
        )
        assert cfg.exit in states  # solver terminated despite the cycle

    def test_iter_step_states_yields_every_step(self):
        src = """
        def f(c):
            a = 1
            if c:
                b = 2
            return a
        """
        cfg = build_cfg(self._fn(src))
        in_states = solve_forward(cfg, 0, lambda s, _: s + 1, max)
        steps = list(iter_step_states(cfg, in_states, lambda s, _: s + 1))
        # a=1, the if-test, b=2, return — all visible with their in-state.
        assert len(steps) == 4

    def test_scoped_walk_skips_nested_function_bodies(self):
        src = """
        def f():
            x = 1
            def g():
                hidden = 2
            return x
        """
        fn = self._fn(src)
        names = {
            n.id for n in scoped_walk(fn) if isinstance(n, ast.Name)
        }
        assert "x" in names and "hidden" not in names


class TestEpochGuardRule:
    FIRES = """
    class Oracle:
        def _check_fresh(self):
            pass

        def distance(self, v):
            if v > 0:
                self._check_fresh()
            return self._label_ranks[v]
    """

    CLEAN = """
    class Oracle:
        def _check_fresh(self):
            pass

        def distance(self, v):
            self._check_fresh()
            if v > 0:
                return self._label_ranks[v]
            return self._label_dists[v]
    """

    def test_fires_on_partially_guarded_deref(self):
        report = lint(self.FIRES, "repro/indexing/pml.py", "R10")
        assert [v.rule for v in report.violations] == ["R10"]
        assert "_label_ranks" in report.violations[0].message

    def test_silent_when_check_dominates_every_path(self):
        assert lint(self.CLEAN, "repro/indexing/pml.py", "R10").ok

    def test_private_methods_are_exempt(self):
        src = """
        class Oracle:
            def _check_fresh(self):
                pass

            def _merge(self, v):
                return self._label_ranks[v]
        """
        assert lint(src, "repro/indexing/pml.py", "R10").ok

    def test_unchecked_class_is_out_of_scope(self):
        src = """
        class Plain:
            def distance(self, v):
                return self._label_ranks[v]
        """
        assert lint(src, "repro/indexing/pml.py", "R10").ok

    def test_out_of_scope_path_is_ignored(self):
        report = lint(self.FIRES, "repro/gui/panel.py", "R10")
        assert report.ok

    def test_stores_do_not_count_as_derefs(self):
        src = """
        class Oracle:
            def _check_fresh(self):
                pass

            def rebuild(self, ranks):
                self._label_ranks = ranks
        """
        assert lint(src, "repro/indexing/pml.py", "R10").ok


class TestResourceLifecycleRule:
    FIRES = """
    from multiprocessing.shared_memory import SharedMemory

    def attach(name, fail):
        seg = SharedMemory(name=name)
        if fail:
            return None
        seg.close()
        return None
    """

    CLEAN = """
    from multiprocessing.shared_memory import SharedMemory

    def attach(name, fail):
        seg = SharedMemory(name=name)
        if fail:
            seg.close()
            return None
        seg.close()
        return None
    """

    def test_fires_on_leaky_early_return(self):
        report = lint(self.FIRES, "repro/storage/shm.py", "R11")
        assert [v.rule for v in report.violations] == ["R11"]
        assert "seg" in report.violations[0].message

    def test_silent_when_closed_on_every_path(self):
        assert lint(self.CLEAN, "repro/storage/shm.py", "R11").ok

    def test_finally_cleanup_is_exempt(self):
        src = """
        from subprocess import Popen

        def run(cmd, fail):
            proc = Popen(cmd)
            try:
                if fail:
                    return None
                return proc.wait()
            finally:
                proc.terminate()
        """
        assert lint(src, "repro/service/pool/worker.py", "R11").ok

    def test_with_managed_resource_is_exempt(self):
        src = """
        import socket

        def probe(addr):
            sock = socket.create_connection(addr)
            with sock:
                return sock.recv(1)
        """
        assert lint(src, "repro/service/client.py", "R11").ok

    def test_ownership_handoff_is_exempt(self):
        src = """
        from multiprocessing.shared_memory import SharedMemory

        def publish(name, registry):
            seg = SharedMemory(name=name, create=True, size=16)
            registry.append(seg)
            return seg
        """
        assert lint(src, "repro/storage/shm.py", "R11").ok

    def test_attribute_targets_are_not_tracked(self):
        src = """
        import socket

        class Client:
            def connect(self, addr):
                self._sock = socket.create_connection(addr)
        """
        assert lint(src, "repro/service/client.py", "R11").ok

    def test_raise_path_does_not_require_close(self):
        # Exceptional exits are not modeled (documented): a raise after
        # acquisition is the caller's problem, not a leak on this path.
        src = """
        from multiprocessing.shared_memory import SharedMemory

        def attach(name, fail):
            seg = SharedMemory(name=name)
            if fail:
                raise RuntimeError("no")
            seg.close()
        """
        assert lint(src, "repro/storage/shm.py", "R11").ok

    def test_out_of_scope_path_is_ignored(self):
        assert lint(self.FIRES, "repro/faults/harness.py", "R11").ok


class TestLockGuardRule:
    FIRES = """
    import threading

    class Manager:
        def __init__(self):
            self._lock = threading.Lock()
            self._count = 0

        def bump(self):
            with self._lock:
                self._count += 1

        def peek(self):
            return self._count
    """

    CLEAN = """
    import threading

    class Manager:
        def __init__(self):
            self._lock = threading.Lock()
            self._count = 0

        def bump(self):
            with self._lock:
                self._count += 1

        def peek(self):
            with self._lock:
                return self._count
    """

    def test_fires_on_bare_read_of_guarded_attr(self):
        report = lint(self.FIRES, "repro/service/manager.py", "R12")
        assert [v.rule for v in report.violations] == ["R12"]
        assert "_count" in report.violations[0].message
        assert "self._lock" in report.violations[0].message

    def test_silent_when_every_access_is_held(self):
        assert lint(self.CLEAN, "repro/service/manager.py", "R12").ok

    def test_init_writes_are_exempt(self):
        # __init__ happens-before every reader; the FIRES fixture already
        # writes self._count = 0 bare there and must not fire for it.
        report = lint(self.CLEAN, "repro/service/manager.py", "R12")
        assert report.ok

    def test_helper_whose_callers_all_hold_the_lock(self):
        src = """
        import threading

        class Manager:
            def __init__(self):
                self._lock = threading.Lock()
                self._n = 0

            def bump(self):
                with self._lock:
                    self._bump_locked()

            def _bump_locked(self):
                self._n += 1
        """
        assert lint(src, "repro/service/manager.py", "R12").ok

    def test_helper_with_one_bare_caller_still_fires(self):
        src = """
        import threading

        class Manager:
            def __init__(self):
                self._lock = threading.Lock()
                self._n = 0

            def bump(self):
                with self._lock:
                    self._n += 1

            def sneaky(self):
                self._bump_locked()

            def _bump_locked(self):
                self._n += 1
        """
        report = lint(src, "repro/service/manager.py", "R12")
        assert not report.ok

    def test_condition_variable_joins_its_lock_group(self):
        src = """
        import threading

        class Queue:
            def __init__(self):
                self._lock = threading.Lock()
                self._ready = threading.Condition(self._lock)
                self._items = []

            def put(self, item):
                with self._lock:
                    self._items = self._items + [item]

            def drain(self):
                with self._ready:
                    return list(self._items)
        """
        assert lint(src, "repro/service/manager.py", "R12").ok

    def test_lockless_attrs_are_not_flagged(self):
        src = """
        import threading

        class Manager:
            def __init__(self):
                self._lock = threading.Lock()
                self._guarded = 0
                self._stats = 0

            def work(self):
                with self._lock:
                    self._guarded += 1
                self._stats += 1

            def stats(self):
                return self._stats
        """
        assert lint(src, "repro/service/manager.py", "R12").ok

    def test_out_of_scope_path_is_ignored(self):
        assert lint(self.FIRES, "repro/indexing/pml.py", "R12").ok
