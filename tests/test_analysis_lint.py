"""Engine-level boomerlint tests: walking, suppressions, CLI, self-clean.

The meta-test at the bottom is the PR's own gate: the shipped ``src/repro``
tree must lint clean under every rule — CI runs the same check via
``python -m repro lint src/repro``.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import LintEngine, all_rules, get_rules, module_key, rule_ids
from repro.analysis.engine import PARSE_RULE, iter_python_files
from repro.analysis.suppress import parse_suppressions
from repro.cli import EXIT_ERROR, EXIT_OK, main
from repro.errors import LintUsageError


class TestRegistry:
    def test_rule_catalog_registered(self):
        assert rule_ids() == [f"R{n}" for n in range(1, 13)]

    def test_get_rules_subset_and_order(self):
        rules = get_rules(["R5", "R1"])
        assert [r.id for r in rules] == ["R5", "R1"]

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(LintUsageError, match="R99"):
            get_rules(["R99"])

    def test_every_rule_has_title(self):
        for rule in all_rules():
            assert rule.id and rule.title


class TestModuleKey:
    def test_strips_prefix_to_last_repro(self):
        key = module_key(Path("/tmp/x/repro/service/manager.py"))
        assert key == "repro/service/manager.py"

    def test_nested_repro_uses_last(self):
        key = module_key(Path("/repro/old/repro/cli.py"))
        assert key == "repro/cli.py"

    def test_no_repro_component_keys_as_filename(self):
        assert module_key(Path("/tmp/fixture.py")) == "fixture.py"


class TestEngine:
    def test_syntax_error_reported_not_raised(self):
        report = LintEngine().lint_source("def broken(:\n")
        assert not report.ok
        assert report.violations[0].rule == PARSE_RULE
        assert "does not parse" in report.violations[0].message

    def test_violations_sorted_by_location(self):
        src = "t = time.time()\nimport random\nimport time\n"
        report = LintEngine.for_rule_ids(["R1"]).lint_source(
            src, "repro/mod.py"
        )
        lines = [v.line for v in report.violations]
        assert lines == sorted(lines)

    def test_format_is_file_line_col_rule(self):
        report = LintEngine.for_rule_ids(["R1"]).lint_source(
            "import random\n", "repro/mod.py"
        )
        text = report.violations[0].format()
        assert text.startswith("repro/mod.py:1:1: R1 ")

    def test_missing_path_raises_usage_error(self):
        with pytest.raises(LintUsageError, match="no such file"):
            LintEngine().lint_paths([Path("/nonexistent/nowhere")])

    def test_iter_python_files_dedupes_and_sorts(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("y = 2\n")
        (tmp_path / "not_python.txt").write_text("ignored\n")
        files = iter_python_files([tmp_path, tmp_path / "a.py"])
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_lint_paths_over_tree(self, tmp_path):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "bad.py").write_text("import random\n")
        (pkg / "good.py").write_text("x = 1\n")
        report = LintEngine.for_rule_ids(["R1"]).lint_paths([tmp_path])
        assert report.files_checked == 2
        assert [v.rule for v in report.violations] == ["R1"]

    def test_report_to_dict_round_trips_json(self):
        report = LintEngine.for_rule_ids(["R1"]).lint_source(
            "import random\n", "repro/mod.py"
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is False
        assert payload["violations"][0]["rule"] == "R1"
        assert payload["violations"][0]["line"] == 1


class TestSuppressions:
    def test_trailing_disable_suppresses_that_line(self):
        report = LintEngine.for_rule_ids(["R1"]).lint_source(
            "import random  # boomerlint: disable=R1\n", "repro/mod.py"
        )
        assert report.ok and report.suppressed == 1

    def test_banner_disable_guards_next_line(self):
        src = "# boomerlint: disable=R1\nimport random\n"
        report = LintEngine.for_rule_ids(["R1"]).lint_source(src, "repro/mod.py")
        assert report.ok and report.suppressed == 1

    def test_disable_file_covers_whole_module(self):
        src = "# boomerlint: disable-file=R1\nimport random\nimport random\n"
        report = LintEngine.for_rule_ids(["R1"]).lint_source(src, "repro/mod.py")
        assert report.ok and report.suppressed == 2

    def test_all_keyword(self):
        src = "import random  # boomerlint: disable=all\n"
        report = LintEngine().lint_source(src, "repro/mod.py")
        assert report.ok

    def test_wrong_rule_id_does_not_suppress(self):
        src = "import random  # boomerlint: disable=R2\n"
        report = LintEngine.for_rule_ids(["R1"]).lint_source(src, "repro/mod.py")
        assert not report.ok

    def test_directive_in_string_literal_ignored(self):
        src = 's = "# boomerlint: disable-file=R1"\nimport random\n'
        report = LintEngine.for_rule_ids(["R1"]).lint_source(src, "repro/mod.py")
        assert not report.ok

    def test_parse_suppressions_shape(self):
        sup = parse_suppressions(
            "# boomerlint: disable-file=R3\nx = 1  # boomerlint: disable=R1,R2\n"
        )
        assert sup.suppressed("R3", 999)
        assert sup.suppressed("R1", 2) and sup.suppressed("R2", 2)
        assert not sup.suppressed("R1", 1)


class TestLintCLI:
    def test_clean_tree_exits_ok(self, tmp_path, capsys):
        (tmp_path / "fine.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path)]) == EXIT_OK

    def test_violations_exit_error_with_diagnostics(self, tmp_path, capsys):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        bad = pkg / "bad.py"
        bad.write_text("import random\n")
        assert main(["lint", str(tmp_path)]) == EXIT_ERROR
        out = capsys.readouterr().out
        assert f"{bad}:1:1: R1" in out

    def test_rules_filter(self, tmp_path):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "bad.py").write_text("import random\n")
        # R5 alone does not care about the import.
        assert main(["lint", str(tmp_path), "--rules", "R5"]) == EXIT_OK

    def test_json_format(self, tmp_path, capsys):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "bad.py").write_text("import random\n")
        assert main(["lint", str(tmp_path), "--format", "json"]) == EXIT_ERROR
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["violations"][0]["rule"] == "R1"

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == EXIT_OK
        out = capsys.readouterr().out
        for rid in ("R1", "R2", "R3", "R4", "R5", "R6"):
            assert rid in out

    def test_missing_path_exits_error(self, capsys):
        assert main(["lint", "/nonexistent/nowhere"]) == EXIT_ERROR
        assert "error:" in capsys.readouterr().err


class TestSelfClean:
    def test_shipped_tree_lints_clean(self):
        """The acceptance gate: boomerlint passes on its own codebase."""
        tree = Path(repro.__file__).parent
        report = LintEngine().lint_paths([tree])
        assert report.files_checked > 50
        assert report.ok, "\n".join(v.format() for v in report.violations)

    def test_reintroduced_violation_caught(self, tmp_path):
        """Un-fixing satellite 1 (raw ``random`` in an injector) is caught."""
        source = Path(repro.__file__).parent / "faults" / "injectors.py"
        regressed = tmp_path / "repro" / "faults"
        regressed.mkdir(parents=True)
        text = source.read_text(encoding="utf-8").replace(
            "from repro.utils.rng import seeded_rng", "import random"
        ).replace("seeded_rng(seed)", "random.Random(seed)")
        (regressed / "injectors.py").write_text(text, encoding="utf-8")
        report = LintEngine.for_rule_ids(["R1"]).lint_paths([regressed])
        assert not report.ok
        assert all(v.rule == "R1" for v in report.violations)
