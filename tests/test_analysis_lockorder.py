"""Lock-order race detector: unit behavior plus the service integration.

The acceptance criterion for this detector is the intentional-inversion
test: two locks taken A->B on one thread and B->A on another MUST be
reported as a cycle, with no actual deadlock required to witness it.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis import (
    LockOrderMonitor,
    MonitoredLock,
    MonitoredRLock,
    patch_locks,
)
from repro.errors import LockOrderViolationError


def run_thread(fn) -> None:
    t = threading.Thread(target=fn)
    t.start()
    t.join(timeout=30)
    assert not t.is_alive()


class TestMonitorCore:
    def test_consistent_order_is_clean(self):
        monitor = LockOrderMonitor()
        a = MonitoredLock(monitor, name="a")
        b = MonitoredLock(monitor, name="b")
        for _ in range(3):
            with a, b:
                pass
        assert monitor.inversions() == []
        monitor.assert_clean()
        assert monitor.edges() == {"a": {"b"}}

    def test_intentional_inversion_detected(self):
        """The acceptance test: A->B on one thread, B->A on another."""
        monitor = LockOrderMonitor()
        a = MonitoredLock(monitor, name="a.py:1")
        b = MonitoredLock(monitor, name="b.py:2")

        with a, b:
            pass

        def inverted() -> None:
            with b, a:
                pass

        run_thread(inverted)

        inversions = monitor.inversions()
        assert len(inversions) == 1
        inv = inversions[0]
        assert inv.edge == ("b.py:2", "a.py:1")
        assert set(inv.cycle) == {"a.py:1", "b.py:2"}
        assert "inversion" in inv.describe()
        with pytest.raises(LockOrderViolationError) as excinfo:
            monitor.assert_clean()
        assert excinfo.value.code == "lock_order_inversion"
        assert excinfo.value.inversions == inversions

    def test_transitive_cycle_detected(self):
        """a->b and b->c recorded, then c->a closes a 3-cycle."""
        monitor = LockOrderMonitor()
        a = MonitoredLock(monitor, name="a")
        b = MonitoredLock(monitor, name="b")
        c = MonitoredLock(monitor, name="c")
        with a, b:
            pass
        with b, c:
            pass

        def closes() -> None:
            with c, a:
                pass

        run_thread(closes)
        (inv,) = monitor.inversions()
        assert inv.edge == ("c", "a")
        assert inv.cycle[0] == inv.cycle[-1]
        assert set(inv.cycle) == {"a", "b", "c"}

    def test_same_site_pair_is_inversion(self):
        """Two locks from one allocation site nested = undefined order."""
        monitor = LockOrderMonitor()

        def make():
            return MonitoredLock(monitor, name="session.py:99")

        first, second = make(), make()
        with first, second:
            pass
        (inv,) = monitor.inversions()
        assert inv.edge == ("session.py:99", "session.py:99")

    def test_nonblocking_acquire_records_no_edge(self):
        """Trylock cannot deadlock; the donation path depends on this."""
        monitor = LockOrderMonitor()
        a = MonitoredLock(monitor, name="a")
        b = MonitoredLock(monitor, name="b")
        with a:
            assert b.acquire(blocking=False)
            b.release()
        # Reverse order via trylock as well: still no edges, no inversion.
        with b:
            assert a.acquire(blocking=False)
            a.release()
        assert monitor.edges() == {}
        monitor.assert_clean()

    def test_release_out_of_order_tolerated(self):
        monitor = LockOrderMonitor()
        a = MonitoredLock(monitor, name="a")
        b = MonitoredLock(monitor, name="b")
        a.acquire()
        b.acquire()
        a.release()  # hand-over-hand release order
        b.release()
        assert monitor.held_sites() == ()
        monitor.assert_clean()


class TestMonitoredRLock:
    def test_reentry_records_no_edges(self):
        monitor = LockOrderMonitor()
        r = MonitoredRLock(monitor, name="r")
        with r:
            with r:  # reentrant: no self-edge, no inversion
                assert r._is_owned()
        assert monitor.edges() == {}
        monitor.assert_clean()

    def test_foreign_release_rejected(self):
        monitor = LockOrderMonitor()
        r = MonitoredRLock(monitor, name="r")
        with pytest.raises(RuntimeError):
            r.release()

    def test_condition_wait_notify_works(self):
        """Condition built on a monitored RLock must work unchanged."""
        monitor = LockOrderMonitor()
        r = MonitoredRLock(monitor, name="r")
        cond = threading.Condition(r)
        fired = []

        def waiter() -> None:
            with cond:
                while not fired:
                    cond.wait(timeout=10)

        t = threading.Thread(target=waiter)
        t.start()
        with cond:
            fired.append(True)
            cond.notify_all()
        t.join(timeout=30)
        assert not t.is_alive()
        monitor.assert_clean()


class TestPatchLocks:
    def test_created_locks_are_monitored(self):
        monitor = LockOrderMonitor()
        with patch_locks(monitor):
            lock = threading.Lock()
            rlock = threading.RLock()
            with lock:
                pass
            with rlock:
                pass
        assert isinstance(lock, MonitoredLock)
        assert isinstance(rlock, MonitoredRLock)
        assert monitor.locks_created == 2
        assert monitor.acquisitions == 2

    def test_factories_restored_on_exit(self):
        before = (threading.Lock, threading.RLock)
        with patch_locks(LockOrderMonitor()):
            assert threading.Lock is not before[0]
        assert (threading.Lock, threading.RLock) == before

    def test_sites_point_at_allocation(self):
        monitor = LockOrderMonitor()
        with patch_locks(monitor):
            lock = threading.Lock()  # tagged with THIS file:line
        assert lock.site.startswith("test_analysis_lockorder.py:")


class TestServiceIntegration:
    def test_session_manager_locking_is_cycle_free(self, pooled_ctx):
        """Drive the real concurrent-session workload under the monitor.

        Same shape as test_service_concurrency's interleaved drive: eight
        barrier-released threads formulating and running against one
        shared manager.  Any manager/session/scheduler lock-order cycle
        the scheduling can produce shows up as an inversion here.
        """
        from repro.service import SessionManager

        from tests.test_service_concurrency import drive_interleaved

        monitor = LockOrderMonitor()
        with patch_locks(monitor):
            manager = SessionManager(pooled_ctx, max_sessions=8)
            drive_interleaved(manager)
        assert monitor.locks_created > 0
        assert monitor.acquisitions > 0
        monitor.assert_clean()
