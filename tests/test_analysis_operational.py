"""Operational boomerlint tests: robust walking, SARIF, baseline, cache.

Covers the PR's satellite fixes (unreadable / non-UTF-8 files must not
abort the run; directory walks must skip ``__pycache__``, hidden dirs,
and virtualenvs), the suppress edge cases, and the two new CI modes:
``--baseline`` ratcheting and the content-hash incremental cache — whose
acceptance criterion (warm run under half the cold time on the shipped
tree) is asserted here.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    LintEngine,
    apply_baseline,
    load_baseline,
    to_sarif,
    write_baseline,
)
from repro.analysis.engine import PARSE_RULE
from repro.cli import EXIT_ERROR, EXIT_OK, main


def tree_with_violation(tmp_path: Path) -> Path:
    pkg = tmp_path / "repro"
    pkg.mkdir(exist_ok=True)
    (pkg / "bad.py").write_text("import random\n", encoding="utf-8")
    (pkg / "good.py").write_text("x = 1\n", encoding="utf-8")
    return tmp_path


class TestRobustWalking:
    def test_non_utf8_file_reported_not_fatal(self, tmp_path):
        pkg = tree_with_violation(tmp_path)
        (pkg / "repro" / "latin.py").write_bytes(b"x = '\xe9'\n")
        report = LintEngine.for_rule_ids(["R1"]).lint_paths([pkg])
        parse = [v for v in report.violations if v.rule == PARSE_RULE]
        assert len(parse) == 1 and "UTF-8" in parse[0].message
        # The rest of the tree was still linted.
        assert any(v.rule == "R1" for v in report.violations)
        assert report.files_checked == 3

    def test_unreadable_file_reported_not_fatal(self, tmp_path, monkeypatch):
        pkg = tree_with_violation(tmp_path)
        locked = pkg / "repro" / "locked.py"
        locked.write_text("x = 1\n", encoding="utf-8")
        real = Path.read_bytes

        def guarded(self):
            if self.name == "locked.py":
                raise PermissionError(13, "Permission denied")
            return real(self)

        monkeypatch.setattr(Path, "read_bytes", guarded)
        report = LintEngine.for_rule_ids(["R1"]).lint_paths([pkg])
        parse = [v for v in report.violations if v.rule == PARSE_RULE]
        assert len(parse) == 1 and "cannot be read" in parse[0].message
        assert any(v.rule == "R1" for v in report.violations)

    def test_walk_skips_pycache_hidden_and_virtualenvs(self, tmp_path):
        (tmp_path / "real.py").write_text("x = 1\n")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("import random\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "h.py").write_text("import random\n")
        venv = tmp_path / "venv"
        (venv / "lib").mkdir(parents=True)
        (venv / "pyvenv.cfg").write_text("home = /usr\n")
        (venv / "lib" / "site.py").write_text("import random\n")
        from repro.analysis.engine import iter_python_files

        files = iter_python_files([tmp_path])
        assert [f.name for f in files] == ["real.py"]

    def test_explicitly_named_directory_is_never_excluded(self, tmp_path):
        hidden = tmp_path / ".ci"
        hidden.mkdir()
        (hidden / "check.py").write_text("x = 1\n")
        from repro.analysis.engine import iter_python_files

        assert [f.name for f in iter_python_files([hidden])] == ["check.py"]


class TestSuppressEdgeCases:
    def test_multiple_rule_ids_in_one_directive(self):
        src = (
            "import random  # boomerlint: disable=R1,R5\n"
        )
        report = LintEngine.for_rule_ids(["R1"]).lint_source(src, "repro/mod.py")
        assert report.ok and report.suppressed == 1

    def test_unknown_rule_id_is_tolerated_but_inert(self):
        src = "import random  # boomerlint: disable=R99\n"
        report = LintEngine.for_rule_ids(["R1"]).lint_source(src, "repro/mod.py")
        assert not report.ok  # R99 does not cover R1

    def test_unknown_id_alongside_known_still_suppresses(self):
        src = "import random  # boomerlint: disable=R99,R1\n"
        report = LintEngine.for_rule_ids(["R1"]).lint_source(src, "repro/mod.py")
        assert report.ok and report.suppressed == 1

    def test_directive_on_continuation_anchor_line_suppresses(self):
        # The violation anchors where the statement starts; a trailing
        # directive on that physical line covers the whole statement even
        # though it continues across lines.
        src = (
            "from random import (  # boomerlint: disable=R1\n"
            "    Random,\n"
            ")\n"
        )
        report = LintEngine.for_rule_ids(["R1"]).lint_source(src, "repro/mod.py")
        assert report.ok and report.suppressed == 1

    def test_directive_on_later_continuation_line_does_not_reach_back(self):
        src = (
            "from random import (\n"
            "    Random,\n"
            ")  # boomerlint: disable=R1\n"
        )
        report = LintEngine.for_rule_ids(["R1"]).lint_source(src, "repro/mod.py")
        assert not report.ok


class TestSarif:
    def test_sarif_shape(self, tmp_path):
        engine = LintEngine.for_rule_ids(["R1"])
        report = engine.lint_paths([tree_with_violation(tmp_path)])
        log = to_sarif(report, engine.rules)
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "boomerlint"
        assert run["tool"]["driver"]["rules"][0]["id"] == "R1"
        result = run["results"][0]
        assert result["ruleId"] == "R1"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1

    def test_cli_format_sarif(self, tmp_path, capsys):
        tree_with_violation(tmp_path)
        code = main(["lint", str(tmp_path), "--format", "sarif"])
        assert code == EXIT_ERROR
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"]


class TestBaseline:
    def test_ratchet_tolerates_recorded_debt_only(self, tmp_path):
        engine = LintEngine.for_rule_ids(["R1"])
        report = engine.lint_paths([tree_with_violation(tmp_path)])
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, report.violations)

        fresh, tolerated = apply_baseline(
            report.violations, load_baseline(baseline_file)
        )
        assert fresh == [] and tolerated == len(report.violations)

        # A *new* violation is not covered by the ratchet.
        (tmp_path / "repro" / "worse.py").write_text("import random\n")
        report2 = engine.lint_paths([tmp_path])
        fresh2, _ = apply_baseline(
            report2.violations, load_baseline(baseline_file)
        )
        assert len(fresh2) == 1
        assert "worse.py" in fresh2[0].path

    def test_cli_update_then_enforce(self, tmp_path, capsys):
        tree_with_violation(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        assert (
            main(
                ["lint", str(tmp_path), "--update-baseline", str(baseline_file)]
            )
            == EXIT_OK
        )
        assert baseline_file.is_file()
        capsys.readouterr()
        # Same tree + baseline: the gate passes despite the recorded debt.
        assert (
            main(["lint", str(tmp_path), "--baseline", str(baseline_file)])
            == EXIT_OK
        )
        # New debt: the gate fails and reports only the new violation.
        (tmp_path / "repro" / "worse.py").write_text("import random\n")
        capsys.readouterr()
        assert (
            main(["lint", str(tmp_path), "--baseline", str(baseline_file)])
            == EXIT_ERROR
        )
        out = capsys.readouterr().out
        assert "worse.py" in out and "bad.py" not in out

    def test_missing_baseline_file_is_a_usage_error(self, tmp_path, capsys):
        tree_with_violation(tmp_path)
        code = main(
            ["lint", str(tmp_path), "--baseline", str(tmp_path / "nope.json")]
        )
        assert code == EXIT_ERROR
        assert "update-baseline" in capsys.readouterr().err


class TestIncrementalCache:
    def test_warm_run_serves_from_cache_with_identical_report(self, tmp_path):
        root = tree_with_violation(tmp_path)
        cache_file = tmp_path / "lint-cache.json"
        engine = LintEngine()
        cold = engine.lint_paths([root], cache=engine.open_cache(cache_file))
        assert cold.cache_hits == 0 and cache_file.is_file()

        warm_engine = LintEngine()
        warm = warm_engine.lint_paths(
            [root], cache=warm_engine.open_cache(cache_file)
        )
        assert warm.cache_hits == warm.files_checked
        assert [v.format() for v in warm.violations] == [
            v.format() for v in cold.violations
        ]
        assert warm.suppressed == cold.suppressed

    def test_edited_file_misses_and_reanalyzes(self, tmp_path):
        root = tree_with_violation(tmp_path)
        cache_file = tmp_path / "lint-cache.json"
        engine = LintEngine.for_rule_ids(["R1"])
        engine.lint_paths([root], cache=engine.open_cache(cache_file))

        # Distinct bytes from bad.py: the cache is content-addressed, so
        # an identical copy of an already-seen file would (correctly) hit.
        (root / "repro" / "good.py").write_text("import time\nimport random\n")
        warm = engine.lint_paths([root], cache=engine.open_cache(cache_file))
        assert warm.cache_hits == warm.files_checked - 1
        assert any("good.py" in v.path for v in warm.violations)

    def test_ruleset_change_invalidates_everything(self, tmp_path):
        root = tree_with_violation(tmp_path)
        cache_file = tmp_path / "lint-cache.json"
        engine = LintEngine.for_rule_ids(["R1"])
        engine.lint_paths([root], cache=engine.open_cache(cache_file))

        other = LintEngine.for_rule_ids(["R1", "R2"])
        warm = other.lint_paths([root], cache=other.open_cache(cache_file))
        assert warm.cache_hits == 0

    def test_project_rules_recompute_from_cached_facts(self, tmp_path):
        from tests.test_analysis_project import PROTOCOL_OK, write_tree

        drifted = PROTOCOL_OK.replace(
            '    (StorageError, "storage_error"),\n', ""
        )
        root = write_tree(tmp_path, protocol=drifted)
        cache_file = tmp_path / "lint-cache.json"
        engine = LintEngine.for_rule_ids(["R9"])
        cold = engine.lint_paths([root], cache=engine.open_cache(cache_file))
        assert not cold.ok

        warm = engine.lint_paths([root], cache=engine.open_cache(cache_file))
        assert warm.cache_hits == warm.files_checked
        # The cross-module drift is still reported on a fully-warm run.
        assert [v.format() for v in warm.violations] == [
            v.format() for v in cold.violations
        ]

    def test_corrupt_cache_file_starts_cold(self, tmp_path):
        root = tree_with_violation(tmp_path)
        cache_file = tmp_path / "lint-cache.json"
        cache_file.write_text("{not json", encoding="utf-8")
        engine = LintEngine.for_rule_ids(["R1"])
        report = engine.lint_paths([root], cache=engine.open_cache(cache_file))
        assert report.cache_hits == 0 and not report.ok

    def test_cli_cache_flag(self, tmp_path, capsys):
        tree_with_violation(tmp_path)
        cache_file = tmp_path / "lint-cache.json"
        main(["lint", str(tmp_path), "--cache", str(cache_file)])
        capsys.readouterr()
        main(["lint", str(tmp_path), "--cache", str(cache_file)])
        err = capsys.readouterr().err
        assert "cache: 2 hit(s), 0 miss(es)" in err

    @pytest.mark.slow
    def test_warm_cache_halves_full_tree_lint(self, tmp_path):
        """The acceptance criterion: warm < cold/2 on the shipped tree."""
        tree = Path(repro.__file__).parent
        cache_file = tmp_path / "lint-cache.json"

        engine = LintEngine()
        start = time.perf_counter()
        cold = engine.lint_paths([tree], cache=engine.open_cache(cache_file))
        cold_s = time.perf_counter() - start
        assert cold.ok and cold.cache_hits == 0

        warm_engine = LintEngine()
        start = time.perf_counter()
        warm = warm_engine.lint_paths(
            [tree], cache=warm_engine.open_cache(cache_file)
        )
        warm_s = time.perf_counter() - start
        assert warm.ok and warm.cache_hits == warm.files_checked
        assert warm_s < cold_s / 2, (
            f"warm lint {warm_s:.3f}s not under half of cold {cold_s:.3f}s"
        )
