"""Whole-program tier tests: module facts, the project index, and R9.

R9 fixtures recreate the four-file protocol seam under a temp root; the
gating tests prove the doctrine that a project rule stays silent unless
*every* participating module is part of the lint run.
"""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.analysis import LintEngine
from repro.analysis.engine import ModuleSource, module_key
from repro.analysis.project import ModuleFacts, collect_facts
from repro.analysis.suppress import parse_suppressions

ERRORS_OK = """
class ReproError(Exception):
    code: str = "engine_error"
    retryable: bool = False


class ServiceError(ReproError):
    pass


class OverloadError(ServiceError):
    code = "overloaded"
    retryable = True


class StorageError(ServiceError):
    code = "storage_error"
"""

PROTOCOL_OK = """
from repro.errors import OverloadError, ReproError, StorageError

OPS = ("ping", "run")

_RETRYABLE = (OverloadError,)

ERROR_CODES: tuple = (
    (OverloadError, "overloaded"),
    (StorageError, "storage_error"),
    (ReproError, "engine_error"),
)
"""

DISPATCH_OK = """
def dispatch(op):
    if op == "ping":
        return {}
    if op == "run":
        return {}
    raise ValueError(op)
"""

CLIENT_OK = """
class Client:
    def request(self, op, **params):
        return {}

    def run(self):
        return self.request("run", session="s1")
"""

POOL_OK = """
_ROUTED_OPS = ("run",)


def dispatch(op):
    if op == "ping":
        return {}
    if op in _ROUTED_OPS:
        return {}
    raise ValueError(op)
"""


def write_tree(tmp_path: Path, **overrides: str) -> Path:
    files = {
        "errors.py": overrides.get("errors", ERRORS_OK),
        "service/protocol.py": overrides.get("protocol", PROTOCOL_OK),
        "service/dispatch.py": overrides.get("dispatch", DISPATCH_OK),
        "service/client.py": overrides.get("client", CLIENT_OK),
        "service/pool/dispatcher.py": overrides.get("pool", POOL_OK),
    }
    for rel, text in files.items():
        target = tmp_path / "repro" / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text), encoding="utf-8")
    return tmp_path


def lint_r9(root: Path):
    return LintEngine.for_rule_ids(["R9"]).lint_paths([root])


def facts_for(src: str, path: str = "repro/service/protocol.py") -> ModuleFacts:
    text = textwrap.dedent(src)
    module = ModuleSource(
        path=Path(path),
        display=path,
        key=module_key(Path(path)),
        text=text,
        tree=ast.parse(text),
        suppressions=parse_suppressions(text),
    )
    return collect_facts(module)


class TestModuleFacts:
    def test_registries_extracted(self):
        facts = facts_for(PROTOCOL_OK)
        assert facts.str_tuples["OPS"]["values"] == ["ping", "run"]
        assert facts.name_tuples["_RETRYABLE"]["names"] == ["OverloadError"]
        pairs = facts.pair_tuples["ERROR_CODES"]["pairs"]
        assert pairs[0]["cls"] == "OverloadError"
        assert pairs[0]["value"] == "overloaded"

    def test_class_table_carries_bases_and_literal_attrs(self):
        facts = facts_for(ERRORS_OK, "repro/errors.py")
        overload = facts.classes["OverloadError"]
        assert overload.bases == ["ServiceError"]
        assert overload.str_attrs["code"] == "overloaded"
        assert overload.bool_attrs["retryable"] is True

    def test_eq_and_membership_compares(self):
        facts = facts_for(POOL_OK, "repro/service/pool/dispatcher.py")
        assert {"ping"} == {
            c["value"] for c in facts.eq_compares if c["name"] == "op"
        }
        assert facts.memberships[0]["container"] == "_ROUTED_OPS"

    def test_self_calls_record_literal_and_kwargs(self):
        facts = facts_for(CLIENT_OK, "repro/service/client.py")
        call = facts.self_calls[0]
        assert call["method"] == "request"
        assert call["arg"] == "run"
        assert call["kwargs"] == ["session"]

    def test_facts_round_trip_through_json_dict(self):
        facts = facts_for(PROTOCOL_OK)
        clone = ModuleFacts.from_dict(facts.to_dict())
        assert clone.to_dict() == facts.to_dict()


class TestProtocolDriftRule:
    def test_consistent_seam_is_clean(self, tmp_path):
        assert lint_r9(write_tree(tmp_path)).ok

    def test_shadowed_error_code_fires(self, tmp_path):
        drifted = PROTOCOL_OK.replace(
            '    (StorageError, "storage_error"),\n', ""
        )
        report = lint_r9(write_tree(tmp_path, protocol=drifted))
        assert any(
            "StorageError" in v.message and "engine_error" in v.message
            for v in report.violations
        )

    def test_unregistered_exception_class_fires(self, tmp_path):
        drifted = PROTOCOL_OK.replace(
            "(StorageError, ", "(GhostError, "
        )
        report = lint_r9(write_tree(tmp_path, protocol=drifted))
        assert any("GhostError" in v.message for v in report.violations)

    def test_retryable_drift_fires_both_directions(self, tmp_path):
        # Table says retryable, class says no.
        report = lint_r9(
            write_tree(
                tmp_path,
                protocol=PROTOCOL_OK.replace(
                    "_RETRYABLE = (OverloadError,)",
                    "_RETRYABLE = (OverloadError, StorageError)",
                ),
            )
        )
        assert any(
            "StorageError" in v.message and "retryable" in v.message
            for v in report.violations
        )
        # Class says retryable, table omits it.
        report = lint_r9(
            write_tree(
                tmp_path,
                protocol=PROTOCOL_OK.replace(
                    "_RETRYABLE = (OverloadError,)", "_RETRYABLE = (StorageError,)"
                ),
                errors=ERRORS_OK.replace(
                    'code = "storage_error"',
                    'code = "storage_error"\n    retryable = True',
                ),
            )
        )
        assert any(
            "OverloadError" in v.message and "_RETRYABLE" in v.message
            for v in report.violations
        )

    def test_retryable_subclass_of_member_is_covered(self, tmp_path):
        grown = ERRORS_OK + textwrap.dedent(
            """
            class ShedError(OverloadError):
                pass
            """
        )
        assert lint_r9(write_tree(tmp_path, errors=grown)).ok

    def test_unhandled_op_fires_per_dispatcher(self, tmp_path):
        report = lint_r9(
            write_tree(
                tmp_path,
                protocol=PROTOCOL_OK.replace(
                    '("ping", "run")', '("ping", "run", "mystery")'
                ),
            )
        )
        hits = [v for v in report.violations if "mystery" in v.message]
        assert len(hits) == 2  # dispatch.py AND pool/dispatcher.py

    def test_unregistered_op_in_dispatcher_fires(self, tmp_path):
        report = lint_r9(
            write_tree(
                tmp_path,
                dispatch=DISPATCH_OK.replace(
                    'if op == "run":', 'if op == "runx":'
                ),
            )
        )
        assert any("runx" in v.message for v in report.violations)
        assert any("run" in v.message for v in report.violations)

    def test_client_unknown_op_fires(self, tmp_path):
        report = lint_r9(
            write_tree(
                tmp_path,
                client=CLIENT_OK.replace('self.request("run"', 'self.request("runx"'),
            )
        )
        assert any(
            "runx" in v.message and "client" in v.message
            for v in report.violations
        )

    def test_envelope_key_collision_fires(self, tmp_path):
        report = lint_r9(
            write_tree(
                tmp_path,
                client=CLIENT_OK.replace("session=", "result="),
            )
        )
        assert any("reserved envelope key" in v.message for v in report.violations)

    def test_subtree_lint_is_gated(self, tmp_path):
        # Only errors.py present: every sub-check is missing a module, so
        # R9 must not invent phantom drift about files it never saw.
        write_tree(tmp_path)
        report = LintEngine.for_rule_ids(["R9"]).lint_paths(
            [tmp_path / "repro" / "errors.py"]
        )
        assert report.ok

    def test_project_violation_respects_inline_suppression(self, tmp_path):
        drifted = PROTOCOL_OK.replace(
            "_RETRYABLE = (OverloadError,)",
            "_RETRYABLE = (  # boomerlint: disable=R9\n    OverloadError,\n    StorageError,\n)",
        )
        report = lint_r9(write_tree(tmp_path, protocol=drifted))
        assert report.ok
        assert report.suppressed >= 1

    def test_real_tree_seam_is_clean(self):
        import repro

        tree = Path(repro.__file__).parent
        report = LintEngine.for_rule_ids(["R9"]).lint_paths([tree])
        assert report.ok, "\n".join(v.format() for v in report.violations)
