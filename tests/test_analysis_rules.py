"""Per-rule fixture tests for the boomerlint catalog (R1–R8).

Each rule gets at least one *bad* fixture that must fire and one *good*
fixture that must stay silent.  Path-scoped rules (R1, R2, R6) are
exercised through ``lint_source``'s path argument: the engine scopes by
module key, so a fixture opts in by claiming a ``repro/...`` path.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import LintEngine


def run_rule(rule_id: str, source: str, path: str = "repro/somewhere.py"):
    engine = LintEngine.for_rule_ids([rule_id])
    report = engine.lint_source(textwrap.dedent(source), path)
    return report


def rule_hits(rule_id: str, source: str, path: str = "repro/somewhere.py"):
    return [v for v in run_rule(rule_id, source, path).violations]


# ----------------------------------------------------------------------
# R1 — determinism
# ----------------------------------------------------------------------
class TestDeterminismRule:
    def test_import_random_flagged(self):
        hits = rule_hits("R1", "import random\n")
        assert len(hits) == 1
        assert hits[0].rule == "R1"
        assert hits[0].line == 1
        assert "random" in hits[0].message

    def test_from_random_import_flagged(self):
        assert rule_hits("R1", "from random import choice\n")

    def test_time_time_flagged(self):
        hits = rule_hits("R1", "import time\nt = time.time()\n")
        assert len(hits) == 1
        assert "time.time" in hits[0].message

    def test_datetime_now_flagged(self):
        src = "import datetime\nn = datetime.datetime.now()\n"
        hits = rule_hits("R1", src)
        assert len(hits) == 1 and "datetime.now" in hits[0].message

    def test_numpy_global_rng_flagged(self):
        assert rule_hits("R1", "import numpy as np\nx = np.random.rand()\n")

    def test_allowed_modules_exempt(self):
        src = "import random\nimport time\nt = time.time()\n"
        assert not rule_hits("R1", src, "repro/utils/rng.py")
        assert not rule_hits("R1", src, "repro/obs/clock.py")

    def test_seeded_rng_usage_clean(self):
        src = """\
        from repro.utils.rng import seeded_rng

        def draw(seed):
            return seeded_rng(seed).random()
        """
        assert not rule_hits("R1", src)

    def test_monotonic_clock_clean(self):
        # time.perf_counter / monotonic are fine — only wall-clock reads
        # and ambient randomness break replay determinism.
        assert not rule_hits("R1", "import time\nt = time.perf_counter()\n")


# ----------------------------------------------------------------------
# R2 — error taxonomy
# ----------------------------------------------------------------------
class TestErrorTaxonomyRule:
    def test_value_error_in_service_flagged(self):
        src = "def f():\n    raise ValueError('x')\n"
        hits = rule_hits("R2", src, "repro/service/manager.py")
        assert len(hits) == 1 and "ValueError" in hits[0].message

    def test_runtime_error_in_gui_flagged(self):
        src = "def f():\n    raise RuntimeError('x')\n"
        assert rule_hits("R2", src, "repro/gui/panels.py")

    def test_cli_scoped(self):
        src = "def f():\n    raise ValueError('x')\n"
        assert rule_hits("R2", src, "repro/cli.py")

    def test_out_of_scope_paths_ignored(self):
        src = "def f():\n    raise ValueError('x')\n"
        assert not rule_hits("R2", src, "repro/core/blender.py")

    def test_typed_errors_clean(self):
        src = """\
        from repro.errors import SessionError

        def f():
            raise SessionError("x")
        """
        assert not rule_hits("R2", src, "repro/service/manager.py")

    def test_type_error_allowed(self):
        # TypeError flags caller bugs, not runtime failure domains.
        src = "def f():\n    raise TypeError('x')\n"
        assert not rule_hits("R2", src, "repro/gui/latency.py")

    def test_bare_reraise_allowed(self):
        src = "def f():\n    try:\n        g()\n    except Exception:\n        raise\n"
        assert not rule_hits("R2", src, "repro/service/server.py")


# ----------------------------------------------------------------------
# R3 — oracle batch contract
# ----------------------------------------------------------------------
class TestOracleContractRule:
    SCALAR_ONLY = """\
    class MyOracle:
        def distance(self, u, v):
            return 0

        def within(self, u, v, upper):
            return True
    """

    def test_scalar_only_class_flagged(self):
        hits = rule_hits("R3", self.SCALAR_ONLY)
        assert len(hits) == 1
        assert "MyOracle" in hits[0].message
        assert "batch_via_shim" in hits[0].message

    def test_batch_methods_satisfy(self):
        src = """\
        class MyOracle:
            def distance(self, u, v):
                return 0

            def within(self, u, v, upper):
                return True

            def distances_from(self, source, targets):
                return []

            def within_many(self, sources, targets, upper):
                return []
        """
        assert not rule_hits("R3", src)

    def test_shim_marker_satisfies(self):
        src = """\
        class MyOracle:
            batch_via_shim = True

            def distance(self, u, v):
                return 0

            def within(self, u, v, upper):
                return True
        """
        assert not rule_hits("R3", src)

    def test_protocol_classes_exempt(self):
        src = """\
        from typing import Protocol

        class DistanceOracle(Protocol):
            def distance(self, u, v): ...
            def within(self, u, v, upper): ...
        """
        assert not rule_hits("R3", src)

    def test_unrelated_class_ignored(self):
        assert not rule_hits("R3", "class Pure:\n    def distance(self, u, v):\n        return 0\n")


# ----------------------------------------------------------------------
# R4 — metrics & span taxonomy
# ----------------------------------------------------------------------
class TestMetricsSpanTaxonomyRule:
    def test_bad_prefix_flagged(self):
        hits = rule_hits("R4", "c = metrics.counter('requests_total')\n")
        assert len(hits) == 1 and "repro_" in hits[0].message

    def test_counter_needs_total_suffix(self):
        hits = rule_hits("R4", "c = metrics.counter('repro_requests')\n")
        assert len(hits) == 1 and "_total" in hits[0].message

    def test_gauge_must_not_end_total(self):
        assert rule_hits("R4", "g = metrics.gauge('repro_live_total')\n")

    def test_histogram_needs_unit(self):
        assert rule_hits("R4", "h = metrics.histogram('repro_latency')\n")

    def test_well_named_instruments_clean(self):
        src = """\
        c = metrics.counter("repro_runs_total")
        g = registry.gauge("repro_sessions_live")
        h = reg.histogram("repro_run_seconds")
        """
        assert not rule_hits("R4", src)

    def test_unknown_span_name_flagged(self):
        hits = rule_hits("R4", "with tracer.span('nope.nothere'):\n    pass\n")
        assert len(hits) == 1 and "taxonomy" in hits[0].message

    def test_taxonomy_span_names_clean(self):
        src = """\
        with tracer.span("phase.run"):
            pass
        with tracer.span("pool.drain"):
            pass
        with tracer.span("action.new_vertex"):
            pass
        """
        assert not rule_hits("R4", src)

    def test_dynamic_span_names_ignored(self):
        assert not rule_hits("R4", "with tracer.span(name):\n    pass\n")

    def test_unrelated_receivers_ignored(self):
        assert not rule_hits("R4", "c = stats.counter('whatever')\n")


# ----------------------------------------------------------------------
# R5 — public-API coherence
# ----------------------------------------------------------------------
class TestPublicApiRule:
    def test_missing_binding_flagged(self):
        hits = rule_hits("R5", "__all__ = ['ghost']\n")
        assert len(hits) == 1 and "ghost" in hits[0].message

    def test_duplicate_flagged(self):
        src = "__all__ = ['a', 'a']\na = 1\n"
        hits = rule_hits("R5", src)
        assert len(hits) == 1 and "more than once" in hits[0].message

    def test_bindings_of_every_kind_seen(self):
        src = """\
        __all__ = ["f", "C", "x", "mod", "alias", "looped", "handled"]

        import mod
        from pkg import thing as alias

        x = 1

        def f():
            local = 2  # noqa: F841 - locals never count as module names
            return local

        class C:
            pass

        for looped in range(3):
            pass

        try:
            pass
        except ValueError:
            handled = True
        """
        assert not rule_hits("R5", src)

    def test_except_as_name_is_drift(self):
        # ``except ... as e`` names are deleted when the handler exits,
        # so exporting one is genuine drift.
        src = """\
        __all__ = ["caught"]

        try:
            pass
        except ValueError as caught:
            pass
        """
        assert rule_hits("R5", src)

    def test_function_locals_do_not_leak(self):
        src = """\
        __all__ = ["hidden"]

        def f():
            hidden = 1
            return hidden
        """
        hits = rule_hits("R5", src)
        assert len(hits) == 1 and "hidden" in hits[0].message

    def test_star_import_disables_check(self):
        assert not rule_hits("R5", "from os.path import *\n__all__ = ['join']\n")

    def test_computed_all_skipped(self):
        assert not rule_hits("R5", "__all__ = sorted(globals())\n")

    def test_no_all_is_fine(self):
        assert not rule_hits("R5", "a = 1\n")


# ----------------------------------------------------------------------
# R6 — lock discipline
# ----------------------------------------------------------------------
class TestLockDisciplineRule:
    def test_oracle_call_under_lock_flagged(self):
        src = """\
        class Mgr:
            def f(self, oracle):
                with self._lock:
                    return oracle.distance(1, 2)
        """
        hits = rule_hits("R6", src, "repro/service/manager.py")
        assert len(hits) == 1 and ".distance" in hits[0].message

    def test_run_actions_under_lock_flagged(self):
        src = """\
        class Mgr:
            def f(self, session, actions):
                with self._lock:
                    session.run_actions(actions)
        """
        assert rule_hits("R6", src, "repro/service/manager.py")

    def test_bookkeeping_under_lock_clean(self):
        src = """\
        class Mgr:
            def f(self):
                with self._lock:
                    self._sessions.pop("sid", None)
                    return len(self._sessions)
        """
        assert not rule_hits("R6", src, "repro/service/manager.py")

    def test_compute_outside_lock_clean(self):
        src = """\
        class Mgr:
            def f(self, oracle):
                with self._lock:
                    sid = self._next_id
                return oracle.distance(1, 2)
        """
        assert not rule_hits("R6", src, "repro/service/manager.py")

    def test_out_of_scope_ignored(self):
        src = """\
        class Cache:
            def f(self, oracle):
                with self._lock:
                    return oracle.distance(1, 2)
        """
        assert not rule_hits("R6", src, "repro/indexing/oracle.py")


# ----------------------------------------------------------------------
# R7 — storage seam
# ----------------------------------------------------------------------
class TestStorageSeamRule:
    def test_direct_label_array_access_flagged(self):
        src = """\
        def peek(oracle):
            return oracle._label_offsets[0]
        """
        hits = rule_hits("R7", src, "repro/service/manager.py")
        assert len(hits) == 1
        assert "_label_offsets" in hits[0].message
        assert "EngineBasis" in hits[0].message

    def test_all_three_csr_arrays_flagged(self):
        src = """\
        def peek(pml):
            a = pml._label_offsets
            b = pml._label_ranks_arr
            c = pml._label_dists_arr
            return a, b, c
        """
        assert len(rule_hits("R7", src, "repro/core/blender.py")) == 3

    def test_indexing_and_storage_exempt(self):
        src = """\
        def kernel(oracle):
            return oracle._label_ranks_arr.sum()
        """
        assert not rule_hits("R7", src, "repro/indexing/batch.py")
        assert not rule_hits("R7", src, "repro/storage/basis.py")

    def test_self_access_clean(self):
        src = """\
        class MyOracle:
            def peek(self):
                return self._label_offsets[0]
        """
        assert not rule_hits("R7", src, "repro/core/blender.py")

    def test_other_private_attrs_clean(self):
        src = """\
        def peek(pml):
            return pml._finalized, pml.query_count
        """
        assert not rule_hits("R7", src, "repro/datasets/registry.py")

    def test_tree_is_currently_clean(self):
        from pathlib import Path

        import repro

        root = Path(repro.__file__).parent
        report = LintEngine.for_rule_ids(["R7"]).lint_paths([root])
        assert report.ok, [v.format() for v in report.violations]


# ----------------------------------------------------------------------
# Regression guards: the satellites this PR fixed stay fixed
# ----------------------------------------------------------------------
class TestFixedViolationsStayFixed:
    @pytest.mark.parametrize(
        "module", ["repro.faults.injectors", "repro.resilience.checker"]
    )
    def test_no_raw_random(self, module):
        import importlib
        from pathlib import Path

        mod = importlib.import_module(module)
        path = Path(mod.__file__)
        report = LintEngine.for_rule_ids(["R1"]).lint_paths([path])
        assert report.ok, [v.format() for v in report.violations]

    def test_cli_and_latency_raise_typed(self):
        import importlib
        from pathlib import Path

        for module in ("repro.cli", "repro.gui.latency"):
            path = Path(importlib.import_module(module).__file__)
            report = LintEngine.for_rule_ids(["R2"]).lint_paths([path])
            assert report.ok, [v.format() for v in report.violations]


# ----------------------------------------------------------------------
# R8 — graph mutation seam
# ----------------------------------------------------------------------
class TestGraphMutationSeamRule:
    def test_epoch_write_flagged(self):
        hits = rule_hits("R8", "def f(graph):\n    graph._epoch = 0\n")
        assert len(hits) == 1
        assert hits[0].rule == "R8"
        assert "repro.updates" in hits[0].message

    def test_csr_writes_flagged(self):
        src = """\
        def splice(g, arr):
            g._neighbors = arr
            g._offsets = arr
            g._num_edges += 1
        """
        assert len(rule_hits("R8", src)) == 3

    def test_label_index_write_flagged(self):
        assert rule_hits("R8", "def f(g):\n    g._label_index = {}\n")

    def test_annotated_assign_flagged(self):
        # AnnAssign is a distinct AST node; the rule must catch it too.
        assert rule_hits("R8", "def f(g):\n    g._epoch: int = 3\n")

    def test_updates_and_graph_packages_exempt(self):
        src = "def f(g):\n    g._epoch = 1\n    g._num_edges += 1\n"
        assert not rule_hits("R8", src, "repro/updates/csr.py")
        assert not rule_hits("R8", src, "repro/graph/graph.py")
        assert not rule_hits("R8", src, "repro/storage/basis.py")

    def test_self_writes_clean(self):
        # A class managing its *own* slots (Graph itself, LazyLabelView's
        # _offsets) is construction, not cross-object mutation.
        src = """\
        class View:
            def __init__(self, offsets):
                self._offsets = offsets
        """
        assert not rule_hits("R8", src, "repro/core/somewhere.py")

    def test_reads_and_other_attrs_clean(self):
        src = """\
        def peek(g):
            e = g._epoch
            g.cursor = e
            return g.epoch
        """
        assert not rule_hits("R8", src)

    def test_tree_is_currently_clean(self):
        from pathlib import Path

        import repro

        root = Path(repro.__file__).parent
        report = LintEngine.for_rule_ids(["R8"]).lint_paths([root])
        assert report.ok, [v.format() for v in report.violations]
