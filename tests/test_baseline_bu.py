"""Tests for the BOOMER-unaware baseline."""

import pytest

from repro.baseline.bu import BoomerUnaware
from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.errors import QueryValidationError
from tests.conftest import brute_force_upper_matches, make_fig2_query


def keys(matches):
    return {tuple(sorted(m.items())) for m in matches}


class TestCorrectness:
    def test_matches_brute_force(self, fig2_ctx, fig2_graph):
        query = make_fig2_query()
        result = BoomerUnaware(fig2_ctx).evaluate(query)
        assert keys(result.matches) == brute_force_upper_matches(fig2_graph, query)
        assert not result.timed_out
        assert not result.truncated

    def test_agrees_with_boomer(self, fig2_pre):
        from repro.core.preprocessor import make_context

        query = make_fig2_query()
        bu_result = BoomerUnaware(make_context(fig2_pre)).evaluate(query)

        boomer = Boomer(make_context(fig2_pre), strategy="DI")
        boomer.apply(NewVertex(0, "A"))
        boomer.apply(NewVertex(1, "B"))
        boomer.apply(NewEdge(0, 1, 1, 1))
        boomer.apply(NewVertex(2, "C"))
        boomer.apply(NewEdge(1, 2, 1, 2))
        boomer.apply(NewEdge(0, 2, 1, 3))
        boomer.apply(Run())
        assert keys(bu_result.matches) == keys(boomer.run_result.matches.matches)

    def test_injectivity(self, fig2_ctx):
        from repro.core.query import BPHQuery

        query = BPHQuery()
        query.add_vertex("B", vertex_id=0)
        query.add_vertex("B", vertex_id=1)
        query.add_edge(0, 1, 1, 2)
        result = BoomerUnaware(fig2_ctx).evaluate(query)
        assert all(m[0] != m[1] for m in result.matches)

    def test_order_is_reordered_by_candidate_size(self, fig2_ctx):
        query = make_fig2_query()
        result = BoomerUnaware(fig2_ctx).evaluate(query)
        # C has 1 candidate, B/A have 4 each: C first.
        assert result.order[0] == 2

    def test_validates_query(self, fig2_ctx):
        from repro.core.query import BPHQuery

        query = BPHQuery()
        query.add_vertex("A")
        query.add_vertex("B")  # disconnected
        with pytest.raises(QueryValidationError):
            BoomerUnaware(fig2_ctx).evaluate(query)


class TestLimits:
    def test_timeout_flag(self, fig2_ctx):
        query = make_fig2_query()
        result = BoomerUnaware(fig2_ctx, timeout_seconds=0.0).evaluate(query)
        assert result.timed_out

    def test_max_results_truncation(self, fig2_ctx):
        query = make_fig2_query()
        result = BoomerUnaware(fig2_ctx, max_results=1).evaluate(query)
        assert result.truncated
        assert result.num_matches == 1

    def test_distance_queries_counted(self, fig2_ctx):
        query = make_fig2_query()
        result = BoomerUnaware(fig2_ctx).evaluate(query)
        assert result.distance_queries > 0

    def test_srt_positive(self, fig2_ctx):
        result = BoomerUnaware(fig2_ctx).evaluate(make_fig2_query())
        assert result.srt_seconds > 0


class TestResultGeneration:
    def test_lower_bound_filtering_shared_with_boomer(self, fig2_ctx):
        from repro.core.query import BPHQuery

        # lower=2 on the A-C edge: matches needing a length-1-only path drop.
        query = BPHQuery()
        query.add_vertex("A", vertex_id=0)
        query.add_vertex("C", vertex_id=1)
        query.add_edge(0, 1, 2, 3)
        bu = BoomerUnaware(fig2_ctx)
        result = bu.evaluate(query)
        subgraphs = bu.results(result, query)
        for sub in subgraphs:
            assert 2 <= sub.path_length(0, 1) <= 3

    def test_results_limit(self, fig2_ctx):
        query = make_fig2_query()
        bu = BoomerUnaware(fig2_ctx)
        result = bu.evaluate(query)
        assert len(bu.results(result, query, limit=2)) == 2
