"""Tests for the distance-join baseline."""

import pytest

from repro.baseline.distance_join import DistanceJoin
from repro.core.preprocessor import make_context, preprocess
from repro.core.query import BPHQuery
from tests.conftest import (
    brute_force_upper_matches,
    build_fig2_graph,
    make_fig2_query,
)
from tests.test_integration_end_to_end import random_setup


def keys(matches):
    return {tuple(sorted(m.items())) for m in matches}


class TestCorrectness:
    def test_fig2_matches_brute_force(self, fig2_ctx, fig2_graph):
        query = make_fig2_query()
        result = DistanceJoin(fig2_ctx).evaluate(query)
        assert keys(result.matches) == brute_force_upper_matches(fig2_graph, query)
        assert not result.timed_out
        assert not result.truncated

    @pytest.mark.parametrize("seed", range(6))
    def test_random_setups_match_brute_force(self, seed):
        graph, query = random_setup(seed + 400)
        pre = preprocess(graph, t_avg_samples=50)
        result = DistanceJoin(make_context(pre)).evaluate(query)
        assert keys(result.matches) == brute_force_upper_matches(graph, query)

    def test_agrees_with_bu(self, fig2_pre):
        from repro.baseline.bu import BoomerUnaware

        query = make_fig2_query()
        dj = DistanceJoin(make_context(fig2_pre)).evaluate(query)
        bu = BoomerUnaware(make_context(fig2_pre)).evaluate(query)
        assert keys(dj.matches) == keys(bu.matches)

    def test_injectivity(self, fig2_ctx):
        query = BPHQuery()
        query.add_vertex("B", vertex_id=0)
        query.add_vertex("B", vertex_id=1)
        query.add_edge(0, 1, 1, 2)
        result = DistanceJoin(fig2_ctx).evaluate(query)
        assert all(m[0] != m[1] for m in result.matches)


class TestGlobalUpper:
    def test_global_bound_overrides_per_edge(self, fig2_ctx, fig2_graph):
        # Per-edge bounds [1,1]/[1,2]/[1,3]; a global bound of 3 loosens
        # the strict edges, which can only add matches.
        query = make_fig2_query()
        per_edge = DistanceJoin(fig2_ctx).evaluate(query)
        global3 = DistanceJoin(fig2_ctx, global_upper=3).evaluate(query)
        assert keys(per_edge.matches) <= keys(global3.matches)
        # Reference: the same query with every upper set to 3.
        loosened = BPHQuery()
        loosened.add_vertex("A", vertex_id=0)
        loosened.add_vertex("B", vertex_id=1)
        loosened.add_vertex("C", vertex_id=2)
        loosened.add_edge(0, 1, 1, 3)
        loosened.add_edge(1, 2, 1, 3)
        loosened.add_edge(0, 2, 1, 3)
        assert keys(global3.matches) == brute_force_upper_matches(
            build_fig2_graph(), loosened
        )


class TestInstrumentation:
    def test_phase_timings_and_sizes(self, fig2_ctx):
        query = make_fig2_query()
        result = DistanceJoin(fig2_ctx).evaluate(query)
        assert result.materialize_seconds > 0
        assert result.join_seconds >= 0
        assert result.srt_seconds >= result.materialize_seconds
        assert set(result.relation_sizes) == {(0, 1), (1, 2), (0, 2)}
        assert all(size > 0 for size in result.relation_sizes.values())

    def test_timeout(self, fig2_ctx):
        query = make_fig2_query()
        result = DistanceJoin(fig2_ctx, timeout_seconds=0.0).evaluate(query)
        assert result.timed_out
        assert result.matches == []

    def test_max_results(self, fig2_ctx):
        query = make_fig2_query()
        result = DistanceJoin(fig2_ctx, max_results=1).evaluate(query)
        assert result.truncated
        assert result.num_matches == 1
