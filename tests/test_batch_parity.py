"""Batch-on vs batch-off parity: identical matches, identical query counts.

The batched distance kernels are a pure transport optimization — they must
not change *anything* observable about a Run except wall-clock and the
``oracle_calls`` counter.  These tests run every strategy (IC/DR/DI) and
the BU baseline twice over the same preprocessed context, once with
``batch_enabled=True`` and once with the per-pair scalar path, and demand
byte-identical match lists (same matches, same enumeration order) and
identical logical ``distance_queries`` totals.
"""

from __future__ import annotations

import pytest

from repro.baseline.bu import BoomerUnaware
from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.core.preprocessor import make_context
from tests.conftest import make_fig2_query


def formulate_fig2(boomer: Boomer) -> Boomer:
    boomer.apply(NewVertex(0, "A"))
    boomer.apply(NewVertex(1, "B"))
    boomer.apply(NewEdge(0, 1, 1, 1))
    boomer.apply(NewVertex(2, "C"))
    boomer.apply(NewEdge(1, 2, 1, 2))
    boomer.apply(NewEdge(0, 2, 1, 3))
    return boomer


def ordered_matches(matches) -> list[tuple[tuple[int, int], ...]]:
    """Match list with enumeration order preserved (not a set)."""
    return [tuple(sorted(m.items())) for m in matches]


@pytest.mark.parametrize("strategy", ["IC", "DR", "DI"])
def test_strategy_matches_bit_identical(fig2_pre, strategy):
    arms = {}
    for batch in (True, False):
        boomer = Boomer(
            make_context(fig2_pre), strategy=strategy, batch_enabled=batch
        )
        formulate_fig2(boomer)
        boomer.apply(Run())
        result = boomer.run_result
        arms[batch] = (
            ordered_matches(result.matches.matches),
            result.counters["distance_queries"],
            result.counters["pairs_added"],
        )
    batch_matches, batch_queries, batch_pairs = arms[True]
    scalar_matches, scalar_queries, scalar_pairs = arms[False]
    assert batch_matches == scalar_matches  # same matches, same order
    assert batch_queries == scalar_queries  # same logical query count
    assert batch_pairs == scalar_pairs


def test_bu_matches_bit_identical(fig2_pre):
    from dataclasses import replace

    query = make_fig2_query()
    arms = {}
    for batch in (True, False):
        ctx = replace(make_context(fig2_pre), batch_enabled=batch)
        result = BoomerUnaware(ctx).evaluate(query)
        arms[batch] = (ordered_matches(result.matches), result.distance_queries)
    assert arms[True][0] == arms[False][0]
    assert arms[True][1] == arms[False][1]


def make_two_label_pre(n_per_label: int = 12):
    """A graph big enough that a [1,3] edge hits large_upper_search with
    multi-element candidate sets on both sides (fig2 prunes to singletons,
    where batch and scalar invocation counts coincide)."""
    from repro.core.preprocessor import preprocess
    from repro.graph.builder import GraphBuilder

    builder = GraphBuilder("two-label")
    builder.add_vertices(["A"] * n_per_label + ["B"] * n_per_label)
    total = 2 * n_per_label
    for v in range(total):
        builder.add_edge(v, (v + 1) % total)  # ring: everything reachable
    for v in range(0, total, 3):
        builder.add_edge_if_absent(v, (v + 7) % total)  # chords
    return preprocess(builder.build(), t_avg_samples=50)


def formulate_ab(boomer: Boomer) -> Boomer:
    boomer.apply(NewVertex(0, "A"))
    boomer.apply(NewVertex(1, "B"))
    boomer.apply(NewEdge(0, 1, 1, 3))  # upper >= 3 -> large_upper_search
    return boomer


def test_batch_reduces_interpreter_level_calls():
    """The whole point: far fewer oracle invocations, same answers."""
    pre = make_two_label_pre()
    calls, matches = {}, {}
    for batch in (True, False):
        boomer = Boomer(make_context(pre), strategy="IC", batch_enabled=batch)
        formulate_ab(boomer)
        boomer.apply(Run())
        counters = boomer.run_result.counters
        calls[batch] = counters["oracle_calls"]
        matches[batch] = ordered_matches(boomer.run_result.matches.matches)
        assert counters["distance_queries"] > counters["oracle_calls"] or not batch
    assert matches[True] == matches[False]
    assert calls[True] < calls[False]


def test_results_identical_after_lower_bound_filtering(fig2_pre):
    """End-to-end: the displayed ResultSubgraphs agree across arms."""
    outs = {}
    for batch in (True, False):
        boomer = Boomer(make_context(fig2_pre), batch_enabled=batch)
        formulate_fig2(boomer)
        boomer.apply(Run())
        outs[batch] = [
            (tuple(sorted(r.assignment.items())), dict(r.paths))
            for r in boomer.results()
        ]
    assert outs[True] == outs[False]
