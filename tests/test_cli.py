"""Tests for the command-line interface."""

import pytest

from repro.cli import (
    EXIT_DEADLINE,
    EXIT_DEGRADED,
    EXIT_ERROR,
    EXIT_OK,
    main,
    parse_query_file,
)
from repro.errors import ReproError
from repro.faults import FaultPlan, OracleFaultSpec
from repro.graph.io import load_edge_list, save_edge_list
from tests.conftest import build_fig2_graph


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "g.txt"
    save_edge_list(build_fig2_graph(), path)
    return path


@pytest.fixture()
def query_file(tmp_path):
    path = tmp_path / "q.txt"
    path.write_text(
        "# the figure-2 triangle\n"
        "v 0 A\n"
        "v 1 B\n"
        "e 0 1 1 1\n"
        "v 2 C\n"
        "e 1 2 1 2\n"
        "e 0 2 1 3\n"
    )
    return path


class TestParseQueryFile:
    def test_round_structure(self, query_file):
        actions = parse_query_file(query_file)
        kinds = [a.kind for a in actions]
        assert kinds == [
            "NewVertex",
            "NewVertex",
            "NewEdge",
            "NewVertex",
            "NewEdge",
            "NewEdge",
            "Run",
        ]

    def test_default_bounds(self, tmp_path):
        path = tmp_path / "q.txt"
        path.write_text("v 0 A\nv 1 B\ne 0 1\n")
        actions = parse_query_file(path)
        edge = actions[2]
        assert edge.lower == 1 and edge.upper == 1

    def test_single_bound_means_exact(self, tmp_path):
        path = tmp_path / "q.txt"
        path.write_text("v 0 A\nv 1 B\ne 0 1 2\n")
        edge = parse_query_file(path)[2]
        assert edge.lower == 2 and edge.upper == 2

    def test_undeclared_vertex_rejected(self, tmp_path):
        path = tmp_path / "q.txt"
        path.write_text("v 0 A\ne 0 1 1 1\n")
        with pytest.raises(ReproError, match=":2"):
            parse_query_file(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "q.txt"
        path.write_text("# only a comment\n")
        with pytest.raises(ReproError):
            parse_query_file(path)

    def test_unknown_record_rejected(self, tmp_path):
        path = tmp_path / "q.txt"
        path.write_text("z 1 2\n")
        with pytest.raises(ReproError):
            parse_query_file(path)


class TestCommands:
    def test_generate_and_stats(self, tmp_path, capsys):
        out = tmp_path / "wn.txt"
        assert main(["generate", "--dataset", "wordnet", "--n", "60", "--out", str(out)]) == 0
        graph = load_edge_list(out)
        assert graph.num_vertices > 10
        assert main(["stats", "--graph", str(out)]) == 0
        captured = capsys.readouterr()
        assert "|V|" in captured.out

    def test_query_end_to_end(self, graph_file, query_file, capsys):
        code = main(
            [
                "query",
                "--graph",
                str(graph_file),
                "--query",
                str(query_file),
                "--strategy",
                "DI",
                "--t-avg-samples",
                "200",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "match:" in captured.out
        assert "V_delta: 3" in captured.err

    def test_query_with_ranking_and_dot(self, graph_file, query_file, tmp_path, capsys):
        dot_path = tmp_path / "out.dot"
        code = main(
            [
                "query",
                "--graph",
                str(graph_file),
                "--query",
                str(query_file),
                "--rank",
                "compactness",
                "--dot",
                str(dot_path),
                "--t-avg-samples",
                "200",
            ]
        )
        assert code == 0
        assert dot_path.read_text().startswith("graph match {")

    def test_query_error_path(self, graph_file, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("nonsense\n")
        code = main(
            ["query", "--graph", str(graph_file), "--query", str(bad)]
        )
        assert code == EXIT_ERROR
        assert "error:" in capsys.readouterr().err


class TestExitCodes:
    """The four-way exit-code contract (0 ok / 1 error / 2 degraded / 3 deadline)."""

    def _query_argv(self, graph_file, query_file, *extra):
        return [
            "query",
            "--graph",
            str(graph_file),
            "--query",
            str(query_file),
            "--t-avg-samples",
            "200",
            *extra,
        ]

    def test_degraded_run_exits_2(self, graph_file, query_file, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        # fail_after=0: the oracle dies on its first call, which lands in
        # CAP construction of the upper-3 edge -> Run must degrade to BU.
        FaultPlan(seed=3, oracle=OracleFaultSpec(fail_after=0)).to_json(plan_path)
        code = main(
            self._query_argv(
                graph_file,
                query_file,
                "--resilience",
                "default",
                "--fault-plan",
                str(plan_path),
            )
        )
        assert code == EXIT_DEGRADED
        captured = capsys.readouterr()
        assert "DEGRADED" in captured.err
        assert "match:" in captured.out  # degraded still prints real results

    def test_deadline_exceeded_exits_3(self, graph_file, query_file, capsys):
        code = main(
            self._query_argv(graph_file, query_file, "--deadline", "0.0")
        )
        assert code == EXIT_DEADLINE
        assert "deadline exceeded" in capsys.readouterr().err

    def test_inline_fault_plan_json(self, graph_file, query_file, capsys):
        code = main(
            self._query_argv(
                graph_file,
                query_file,
                "--resilience",
                "default",
                "--fault-plan",
                '{"seed": 1, "oracle": {"transient_rate": 0.2}}',
            )
        )
        # Transient faults are retried away: clean CAP-path success.
        assert code == EXIT_OK
        assert "V_delta: 3" in capsys.readouterr().err

    def test_bad_fault_plan_exits_1(self, graph_file, query_file, capsys):
        code = main(
            self._query_argv(
                graph_file, query_file, "--fault-plan", '{"bogus_key": 1}',
                "--resilience", "default",
            )
        )
        assert code == EXIT_ERROR
        assert "unknown fault-plan keys" in capsys.readouterr().err

    def test_unresilient_fault_crashes(self, graph_file, query_file, tmp_path):
        # Without --resilience the injected crash propagates raw — the CLI
        # only converts *typed* errors into exit codes.
        plan_path = tmp_path / "plan.json"
        FaultPlan(seed=3, oracle=OracleFaultSpec(fail_after=2)).to_json(plan_path)
        with pytest.raises(Exception) as excinfo:
            main(
                self._query_argv(
                    graph_file, query_file, "--fault-plan", str(plan_path)
                )
            )
        assert "injected" in str(excinfo.value).lower()


class TestReplayCommand:
    def test_replay_end_to_end(self, graph_file, tmp_path, capsys):
        from repro.gui.recording import save_actions
        from repro.core.actions import NewEdge, NewVertex, Run

        rec = tmp_path / "session.json"
        save_actions(
            [
                NewVertex(0, "A", latency_after=0.01),
                NewVertex(1, "B", latency_after=0.01),
                NewEdge(0, 1, 1, 1, latency_after=0.01),
                Run(),
            ],
            rec,
        )
        code = main(
            [
                "replay",
                "--graph",
                str(graph_file),
                "--recording",
                str(rec),
                "--t-avg-samples",
                "200",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "replayed 4 actions" in captured.err
        assert "match:" in captured.out

    def test_replay_bad_recording(self, graph_file, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        code = main(
            ["replay", "--graph", str(graph_file), "--recording", str(bad)]
        )
        assert code == EXIT_ERROR

    def test_replay_degraded_exits_2(self, graph_file, tmp_path, capsys):
        from repro.gui.recording import save_actions
        from repro.core.actions import NewEdge, NewVertex, Run

        rec = tmp_path / "session.json"
        save_actions(
            [
                NewVertex(0, "A", latency_after=0.01),
                NewVertex(1, "B", latency_after=0.01),
                # upper=3 routes PVS through the (dead) oracle.
                NewEdge(0, 1, 1, 3, latency_after=0.01),
                Run(),
            ],
            rec,
        )
        plan_path = tmp_path / "plan.json"
        FaultPlan(seed=3, oracle=OracleFaultSpec(fail_after=0)).to_json(plan_path)
        code = main(
            [
                "replay",
                "--graph",
                str(graph_file),
                "--recording",
                str(rec),
                "--t-avg-samples",
                "200",
                "--resilience",
                "default",
                "--fault-plan",
                str(plan_path),
            ]
        )
        assert code == EXIT_DEGRADED
        assert "DEGRADED" in capsys.readouterr().err


class TestUpdateCheck:
    def test_seeded_sweep_passes(self, capsys):
        code = main(
            ["update-check", "--rounds", "1", "--n", "24", "--steps", "5",
             "--seed", "3"]
        )
        assert code == EXIT_OK
        assert "update-check PASS" in capsys.readouterr().out
