"""Tests for GUI actions and the action stream."""

import pytest

from repro.core.actions import (
    ActionStream,
    DeleteEdge,
    ModifyBounds,
    NewEdge,
    NewVertex,
    Run,
)
from repro.errors import ActionError


class TestActions:
    def test_kinds(self):
        assert NewVertex(0, "A").kind == "NewVertex"
        assert NewEdge(0, 1).kind == "NewEdge"
        assert ModifyBounds(0, 1, 1, 2).kind == "ModifyBounds"
        assert DeleteEdge(0, 1).kind == "DeleteEdge"
        assert Run().kind == "Run"

    def test_defaults(self):
        e = NewEdge(0, 1)
        assert e.lower == 1 and e.upper == 1
        assert e.latency_after is None

    def test_latency_keyword_only(self):
        v = NewVertex(0, "A", latency_after=1.5)
        assert v.latency_after == 1.5

    def test_frozen(self):
        with pytest.raises(AttributeError):
            NewVertex(0, "A").vertex_id = 2


class TestActionStream:
    def test_append_and_consume(self):
        stream = ActionStream()
        stream.append(NewVertex(0, "A"))
        stream.append(NewVertex(1, "B"))
        assert len(stream) == 2
        assert stream.has_pending
        first = stream.consume()
        assert isinstance(first, NewVertex) and first.vertex_id == 0
        assert len(stream.pending()) == 1

    def test_consume_exhausted(self):
        stream = ActionStream([NewVertex(0, "A")])
        stream.consume()
        assert not stream.has_pending
        with pytest.raises(ActionError):
            stream.consume()

    def test_iteration_yields_pending_only(self):
        stream = ActionStream([NewVertex(0, "A"), Run()])
        stream.consume()
        assert [a.kind for a in stream] == ["Run"]

    def test_run_must_be_last_on_init(self):
        with pytest.raises(ActionError):
            ActionStream([Run(), NewVertex(0, "A")])

    def test_append_after_run_rejected(self):
        stream = ActionStream([Run()])
        with pytest.raises(ActionError):
            stream.append(NewVertex(0, "A"))

    def test_repr(self):
        stream = ActionStream([Run()])
        assert "1 actions" in repr(stream)
