"""Tests for the blender engine and Boomer facade (Algorithm 1)."""

import pytest

from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.core.cost import CostModel
from repro.errors import ActionError, QueryValidationError, SessionError
from repro.utils.timing import TimeBudget


def formulate_fig2(boomer: Boomer):
    boomer.apply(NewVertex(0, "A"))
    boomer.apply(NewVertex(1, "B"))
    boomer.apply(NewEdge(0, 1, 1, 1))
    boomer.apply(NewVertex(2, "C"))
    boomer.apply(NewEdge(1, 2, 1, 2))
    boomer.apply(NewEdge(0, 2, 1, 3))
    return boomer


class TestActionHandling:
    def test_new_vertex_creates_level(self, fig2_ctx):
        boomer = Boomer(fig2_ctx)
        boomer.apply(NewVertex(0, "A"))
        assert boomer.cap.candidates(0) == {0, 1, 2, 3}
        assert boomer.query.has_vertex(0)

    def test_new_edge_processed_inline_when_cheap(self, fig2_ctx):
        boomer = Boomer(fig2_ctx, strategy="DR")
        boomer.apply(NewVertex(0, "A"))
        boomer.apply(NewVertex(1, "B"))
        report = boomer.apply(NewEdge(0, 1, 1, 1))
        assert report.processed_now
        assert boomer.cap.is_processed(0, 1)

    def test_strategy_name(self, fig2_ctx):
        assert Boomer(fig2_ctx, strategy="IC").strategy_name == "IC"
        assert Boomer(fig2_ctx, strategy="DI").strategy_name == "DI"

    def test_unknown_action_rejected(self, fig2_ctx):
        class Bogus:
            pass

        with pytest.raises(ActionError):
            Boomer(fig2_ctx).apply(Bogus())

    def test_apply_after_run_rejected(self, fig2_ctx):
        boomer = Boomer(fig2_ctx)
        boomer.apply(NewVertex(0, "A"))
        boomer.apply(Run())
        with pytest.raises(ActionError):
            boomer.apply(NewVertex(1, "B"))

    def test_action_reports_recorded(self, fig2_ctx):
        boomer = formulate_fig2(Boomer(fig2_ctx))
        boomer.apply(Run())
        assert len(boomer.action_reports) == 7
        assert all(r.compute_seconds >= 0 for r in boomer.action_reports)


class TestRun:
    def test_run_produces_result(self, fig2_ctx):
        boomer = formulate_fig2(Boomer(fig2_ctx))
        boomer.apply(Run())
        result = boomer.run_result
        assert result is not None
        assert result.num_matches == 3
        assert result.srt_seconds >= 0
        assert result.cap_construction_seconds > 0
        assert result.strategy == "DI"

    def test_run_validates_connectivity(self, fig2_ctx):
        boomer = Boomer(fig2_ctx)
        boomer.apply(NewVertex(0, "A"))
        boomer.apply(NewVertex(1, "B"))
        with pytest.raises(QueryValidationError):
            boomer.apply(Run())

    def test_run_drains_pool(self, fig2_ctx):
        fig2_ctx.cost_model = CostModel(t_avg=100.0, t_lat=0.0001)
        boomer = Boomer(fig2_ctx, strategy="DR")
        formulate_fig2(boomer)
        assert len(boomer.engine.pool) > 0
        boomer.apply(Run())
        assert len(boomer.engine.pool) == 0
        assert boomer.run_result.num_matches == 3

    def test_srt_components_sum(self, fig2_ctx):
        boomer = formulate_fig2(Boomer(fig2_ctx))
        boomer.apply(Run())
        result = boomer.run_result
        assert result.srt_seconds >= result.run_drain_seconds
        assert result.srt_seconds >= result.enumeration_seconds

    def test_counters_snapshot(self, fig2_ctx):
        boomer = formulate_fig2(Boomer(fig2_ctx))
        boomer.apply(Run())
        counters = boomer.run_result.counters
        assert counters["edges_processed"] == 3
        assert counters["pairs_added"] > 0


class TestExecuteStream:
    def test_list_of_actions(self, fig2_ctx):
        actions = [
            NewVertex(0, "A"),
            NewVertex(1, "B"),
            NewEdge(0, 1, 1, 1),
            Run(),
        ]
        result = Boomer(fig2_ctx).execute_stream(actions)
        assert result.num_matches > 0

    def test_stream_without_run_rejected(self, fig2_ctx):
        with pytest.raises(SessionError):
            Boomer(fig2_ctx).execute_stream([NewVertex(0, "A")])


class TestResults:
    def test_results_before_run_rejected(self, fig2_ctx):
        with pytest.raises(SessionError):
            Boomer(fig2_ctx).results()
        with pytest.raises(SessionError):
            Boomer(fig2_ctx).visualize({0: 1})

    def test_results_validated(self, fig2_ctx):
        boomer = formulate_fig2(Boomer(fig2_ctx))
        boomer.apply(Run())
        results = boomer.results()
        assert len(results) == 3
        for subgraph in results:
            assert set(subgraph.paths) == {(0, 1), (1, 2), (0, 2)}

    def test_results_limit(self, fig2_ctx):
        boomer = formulate_fig2(Boomer(fig2_ctx))
        boomer.apply(Run())
        assert len(boomer.results(limit=1)) == 1

    def test_visualize_single(self, fig2_ctx):
        boomer = formulate_fig2(Boomer(fig2_ctx))
        boomer.apply(Run())
        match = boomer.run_result.matches.matches[0]
        subgraph = boomer.visualize(match)
        assert subgraph is not None
        assert subgraph.assignment == match


class TestEngine:
    def test_probe_pool_respects_budget(self, fig2_ctx):
        fig2_ctx.cost_model = CostModel(t_avg=100.0, t_lat=0.0001)
        boomer = Boomer(fig2_ctx, strategy="DR")
        boomer.apply(NewVertex(0, "A"))
        boomer.apply(NewVertex(1, "B"))
        boomer.apply(NewEdge(0, 1, 1, 5))
        engine = boomer.engine
        assert engine.probe_pool(TimeBudget(1e-9)) == 0
        assert len(engine.pool) == 1
        # generous budget + cheap model drains it
        fig2_ctx.cost_model = CostModel(t_avg=1e-9, t_lat=0.0001)
        assert engine.probe_pool(TimeBudget(10.0)) == 1
        assert len(engine.pool) == 0

    def test_phase_timers(self, fig2_ctx):
        fig2_ctx.cost_model = CostModel(t_avg=100.0, t_lat=0.0001)
        boomer = Boomer(fig2_ctx, strategy="DR")
        formulate_fig2(boomer)
        boomer.apply(Run())
        engine = boomer.engine
        assert engine.formulation_compute.elapsed > 0
        assert engine.run_drain.elapsed > 0
        assert engine.cap_construction_seconds == pytest.approx(
            engine.formulation_compute.elapsed + engine.run_drain.elapsed
        )

    def test_auto_idle_flag(self, fig2_ctx):
        boomer = Boomer(fig2_ctx, strategy="DI", auto_idle=False)
        boomer.apply(NewVertex(0, "A"))
        report = boomer.action_reports[-1]
        assert report.idle_probe_seconds == 0.0


class TestIterResults:
    def test_lazy_iteration(self, fig2_ctx):
        boomer = formulate_fig2(Boomer(fig2_ctx))
        boomer.apply(Run())
        iterator = boomer.iter_results()
        first = next(iterator)
        assert first.assignment
        remaining = list(iterator)
        assert len(remaining) == 2  # 3 total for the Figure-2 example

    def test_iter_before_run_rejected(self, fig2_ctx):
        import pytest as _pytest

        with _pytest.raises(SessionError):
            next(Boomer(fig2_ctx).iter_results())

    def test_results_consistent_with_iterator(self, fig2_ctx):
        boomer = formulate_fig2(Boomer(fig2_ctx))
        boomer.apply(Run())
        eager = [r.assignment for r in boomer.results()]
        lazy = [r.assignment for r in boomer.iter_results()]
        assert eager == lazy
