"""Tests for the CAP index data structure."""

import pytest

from repro.core.cap import CAPIndex
from repro.core.query import BPHQuery
from repro.errors import CAPStateError


def make_query():
    q = BPHQuery()
    q.add_vertex("A", vertex_id=0)
    q.add_vertex("B", vertex_id=1)
    q.add_vertex("C", vertex_id=2)
    q.add_edge(0, 1)
    q.add_edge(1, 2)
    return q


def populate_simple(cap: CAPIndex):
    """Two levels, one edge, pairs (10,20) and (11,21)."""
    cap.add_level(0, [10, 11, 12])
    cap.add_level(1, [20, 21])
    cap.begin_edge(0, 1)
    cap.add_pair(0, 1, 10, 20)
    cap.add_pair(0, 1, 11, 21)
    return cap


class TestLevels:
    def test_add_and_query(self):
        cap = CAPIndex()
        cap.add_level(0, [1, 2, 3])
        assert cap.has_level(0)
        assert cap.candidates(0) == {1, 2, 3}
        assert cap.candidate_count(0) == 3
        assert cap.levels() == [0]

    def test_duplicate_level_rejected(self):
        cap = CAPIndex()
        cap.add_level(0, [])
        with pytest.raises(CAPStateError):
            cap.add_level(0, [1])

    def test_missing_level_rejected(self):
        cap = CAPIndex()
        with pytest.raises(CAPStateError):
            cap.candidates(3)

    def test_remove_level_drops_aivs(self):
        cap = populate_simple(CAPIndex())
        cap.finish_edge(0, 1)
        cap.remove_level(0)
        assert not cap.has_level(0)
        assert not cap.is_processed(0, 1)
        with pytest.raises(CAPStateError):
            cap.aivs(1, 0, 20)

    def test_reset_level(self):
        cap = populate_simple(CAPIndex())
        cap.finish_edge(0, 1)
        cap.reset_level(0, [99])
        assert cap.candidates(0) == {99}
        assert not cap.is_processed(0, 1)


class TestEdges:
    def test_begin_requires_levels(self):
        cap = CAPIndex()
        cap.add_level(0, [1])
        with pytest.raises(CAPStateError):
            cap.begin_edge(0, 1)

    def test_pairs_symmetric(self):
        cap = populate_simple(CAPIndex())
        assert cap.aivs(0, 1, 10) == {20}
        assert cap.aivs(1, 0, 20) == {10}

    def test_finish_marks_processed(self):
        cap = populate_simple(CAPIndex())
        assert not cap.is_processed(0, 1)
        cap.finish_edge(0, 1)
        assert cap.is_processed(0, 1)
        assert cap.is_processed(1, 0)
        assert cap.processed_edges() == {(0, 1)}

    def test_double_begin_rejected(self):
        cap = populate_simple(CAPIndex())
        cap.finish_edge(0, 1)
        with pytest.raises(CAPStateError):
            cap.begin_edge(0, 1)

    def test_finish_without_begin_rejected(self):
        cap = CAPIndex()
        cap.add_level(0, [1])
        cap.add_level(1, [2])
        with pytest.raises(CAPStateError):
            cap.finish_edge(0, 1)

    def test_aivs_missing_candidate(self):
        cap = populate_simple(CAPIndex())
        with pytest.raises(CAPStateError):
            cap.aivs(0, 1, 999)

    def test_remove_pair(self):
        cap = populate_simple(CAPIndex())
        cap.remove_pair(0, 1, 10, 20)
        assert cap.aivs(0, 1, 10) == set()
        assert cap.aivs(1, 0, 20) == set()

    def test_drop_edge(self):
        cap = populate_simple(CAPIndex())
        cap.finish_edge(0, 1)
        cap.drop_edge(0, 1)
        assert not cap.is_processed(0, 1)


class TestPruning:
    def test_isolated_pruned_on_finish(self):
        cap = populate_simple(CAPIndex())
        removed = cap.finish_edge(0, 1)
        # candidate 12 of level 0 got no pairs -> isolated -> pruned
        assert 12 in removed
        assert cap.candidates(0) == {10, 11}

    def test_cascading_prune(self):
        cap = CAPIndex()
        cap.add_level(0, [1])
        cap.add_level(1, [2])
        cap.add_level(2, [3])
        cap.begin_edge(0, 1)
        cap.add_pair(0, 1, 1, 2)
        cap.finish_edge(0, 1)
        cap.begin_edge(1, 2)
        # vertex 2's only support on level 2 never materializes
        cap.finish_edge(1, 2)
        # 2 isolated w.r.t. (1,2) -> pruned; cascade kills 1 (lost its only
        # AIVS target) and 3 stays isolated-free? 3 had no pairs -> pruned.
        assert cap.candidates(1) == set()
        assert cap.candidates(0) == set()
        assert cap.candidates(2) == set()

    def test_pruning_disabled(self):
        cap = CAPIndex(pruning_enabled=False)
        populate_simple(cap)
        removed = cap.finish_edge(0, 1)
        assert removed == []
        assert 12 in cap.candidates(0)

    def test_prune_candidate_public(self):
        cap = populate_simple(CAPIndex())
        cap.finish_edge(0, 1)
        removed = cap.prune_candidate(0, 10)
        # removing 10 leaves 20 unsupported -> cascades
        assert set(removed) == {10, 20}
        assert cap.candidates(1) == {21}

    def test_prune_candidate_absent_noop(self):
        cap = populate_simple(CAPIndex())
        assert cap.prune_candidate(0, 12345) == []

    def test_prune_isolated_after_pair_removal(self):
        cap = populate_simple(CAPIndex())
        cap.finish_edge(0, 1)
        cap.remove_pair(0, 1, 11, 21)
        removed = cap.prune_isolated(0, 1)
        assert set(removed) == {11, 21}

    def test_prune_steps_counted(self):
        cap = populate_simple(CAPIndex())
        before = cap.prune_steps
        cap.finish_edge(0, 1)
        assert cap.prune_steps == before + 1  # only vertex 12


class TestComponents:
    def test_processed_component(self):
        q = make_query()
        cap = CAPIndex()
        for qid in (0, 1, 2):
            cap.add_level(qid, [qid * 10])
        cap.begin_edge(0, 1)
        cap.add_pair(0, 1, 0, 10)
        cap.finish_edge(0, 1)
        vertices, edges = cap.processed_component(0)
        assert vertices == {0, 1}
        assert edges == {(0, 1)}
        # level 2 not connected by processed edges
        v2, e2 = cap.processed_component(2)
        assert v2 == {2}
        assert e2 == set()
        _ = q  # query only used semantically here

    def test_component_spans_chain(self):
        cap = CAPIndex()
        for qid in range(4):
            cap.add_level(qid, [qid])
        for a, b in ((0, 1), (1, 2)):
            cap.begin_edge(a, b)
            cap.add_pair(a, b, a, b)
            cap.finish_edge(a, b)
        vertices, edges = cap.processed_component(2)
        assert vertices == {0, 1, 2}
        assert edges == {(0, 1), (1, 2)}


class TestSizeAndConsistency:
    def test_size_report(self):
        cap = populate_simple(CAPIndex())
        report = cap.size_report()
        assert report.num_levels == 2
        assert report.vertex_entries == 5
        assert report.aivs_pairs == 4  # 2 pairs, both directions
        assert report.total == 5 + 2

    def test_peak_tracking(self):
        cap = populate_simple(CAPIndex())
        cap.finish_edge(0, 1)  # prunes 12 after peak snapshot
        assert cap.peak_total >= cap.size_report().total
        assert cap.peak_total == 7  # 5 vertices + 2 pairs before pruning

    def test_consistency_ok(self):
        q = make_query()
        cap = CAPIndex()
        cap.add_level(0, [1])
        cap.add_level(1, [2])
        cap.add_level(2, [3])
        cap.begin_edge(0, 1)
        cap.add_pair(0, 1, 1, 2)
        cap.finish_edge(0, 1)
        cap.check_consistency(q)  # should not raise

    def test_consistency_detects_asymmetry(self):
        q = make_query()
        cap = CAPIndex()
        cap.add_level(0, [1])
        cap.add_level(1, [2])
        cap.begin_edge(0, 1)
        cap.add_pair(0, 1, 1, 2)
        cap.finish_edge(0, 1)
        cap._aivs[(1, 0)][2].discard(1)  # corrupt deliberately
        with pytest.raises(CAPStateError):
            cap.check_consistency(q)

    def test_consistency_detects_isolated_unpruned(self):
        q = make_query()
        cap = CAPIndex()
        cap.add_level(0, [1, 5])
        cap.add_level(1, [2])
        cap.begin_edge(0, 1)
        cap.add_pair(0, 1, 1, 2)
        cap._processed.add((0, 1))  # bypass finish_edge's pruning
        with pytest.raises(CAPStateError):
            cap.check_consistency(q)

    def test_repr(self):
        cap = populate_simple(CAPIndex())
        assert "CAPIndex" in repr(cap)
