"""Tests for the shared engine context and its counters."""

import pytest

from repro.core.context import EngineContext, EngineCounters
from repro.core.cost import CostModel
from repro.core.matcher import SimilarityMatcher
from repro.indexing.pml import PrunedLandmarkLabeling
from repro.indexing.twohop import two_hop_counts
from tests.conftest import build_fig2_graph


@pytest.fixture()
def ctx():
    graph = build_fig2_graph()
    return EngineContext(
        graph=graph,
        oracle=PrunedLandmarkLabeling.build(graph),
        two_hop=two_hop_counts(graph),
        cost_model=CostModel(t_avg=1e-6, t_lat=1.0),
    )


class TestCounters:
    def test_snapshot_keys(self):
        counters = EngineCounters()
        snap = counters.snapshot()
        assert set(snap) == {
            "distance_queries",
            "oracle_calls",
            "out_scans",
            "in_scans",
            "pairs_added",
            "edges_processed",
            "edges_deferred",
            "pool_probes",
        }
        assert all(v == 0 for v in snap.values())

    def test_reset(self):
        counters = EngineCounters(distance_queries=5, out_scans=2)
        counters.reset()
        assert counters.snapshot() == EngineCounters().snapshot()


class TestContextQueries:
    def test_distance_counted(self, ctx):
        before = ctx.counters.distance_queries
        assert ctx.distance(0, 4) == 2  # v1 -> v5 via v9
        assert ctx.counters.distance_queries == before + 1

    def test_within_counted(self, ctx):
        before = ctx.counters.distance_queries
        assert ctx.within(1, 4, 1)  # v2-v5 edge
        assert not ctx.within(1, 4, 0)
        assert ctx.counters.distance_queries == before + 2

    def test_candidates_for_default_matcher(self, ctx):
        assert ctx.candidates_for("A") == [0, 1, 2, 3]
        assert ctx.candidates_for("missing") == []

    def test_candidates_for_custom_matcher(self, ctx):
        ctx.matcher = SimilarityMatcher(lambda a, b: 1.0, threshold=1.0)
        assert len(ctx.candidates_for("anything")) == ctx.graph.num_vertices

    def test_scan_override_default_none(self, ctx):
        assert ctx.scan_override is None
