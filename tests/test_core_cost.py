"""Tests for the cost model and GUI latency constants."""

import pytest

from repro.core.cost import CostModel, GUILatencyConstants


class TestGUILatencyConstants:
    def test_paper_defaults(self):
        c = GUILatencyConstants()
        assert c.t_edge == 2.0
        assert c.t_vertex == 3.0  # 1 + 1 + 1

    def test_t_lat_is_edge_time(self):
        # t_m + t_s + t_d > t_e  =>  t_lat = t_e (Equation 2 derivation)
        c = GUILatencyConstants()
        assert c.t_lat == c.t_edge

    def test_t_lat_min_semantics(self):
        c = GUILatencyConstants(t_move=0.1, t_select=0.1, t_drag=0.1, t_edge=2.0)
        assert c.t_lat == pytest.approx(0.3)

    def test_scaled(self):
        c = GUILatencyConstants().scaled(0.1)
        assert c.t_edge == pytest.approx(0.2)
        assert c.t_vertex == pytest.approx(0.3)
        assert c.t_bounds == pytest.approx(0.15)

    def test_scaling_preserves_t_lat_relation(self):
        base = GUILatencyConstants()
        scaled = base.scaled(0.25)
        assert scaled.t_lat == pytest.approx(base.t_lat * 0.25)


class TestCostModel:
    def test_estimate(self):
        model = CostModel(t_avg=2e-6, t_lat=1.0)
        assert model.estimate_edge_cost(100, 200) == pytest.approx(0.04)

    def test_expensive_requires_upper_ge_3(self):
        model = CostModel(t_avg=1.0, t_lat=0.001)
        assert not model.is_expensive(100, 100, 1)
        assert not model.is_expensive(100, 100, 2)
        assert model.is_expensive(100, 100, 3)

    def test_expensive_requires_cost_above_latency(self):
        model = CostModel(t_avg=1e-9, t_lat=1.0)
        assert not model.is_expensive(100, 100, 5)
        big = CostModel(t_avg=1e-3, t_lat=1.0)
        assert big.is_expensive(100, 100, 5)

    def test_boundary_not_expensive(self):
        # T_est must strictly exceed t_lat (Definition 5.8's ">").
        model = CostModel(t_avg=0.01, t_lat=1.0)
        assert model.estimate_edge_cost(10, 10) == pytest.approx(1.0)
        assert not model.is_expensive(10, 10, 3)

    def test_zero_candidates_never_expensive(self):
        model = CostModel(t_avg=10.0, t_lat=0.1)
        assert not model.is_expensive(0, 100, 5)


class TestBoundAwareEstimates:
    def test_upper_ge_3_uses_all_pairs_product(self):
        model = CostModel(t_avg=1e-3, t_lat=1.0, mean_degree=4.0, mean_two_hop=16.0)
        assert model.estimate_edge_cost(10, 20, upper=3) == pytest.approx(0.2)
        assert model.estimate_edge_cost(10, 20) == pytest.approx(0.2)

    def test_upper_1_scales_with_mean_degree(self):
        model = CostModel(t_avg=1e-3, t_lat=1.0, mean_degree=4.0, mean_two_hop=16.0)
        # min(|Vqi|, |Vqj|) * mean_degree * t_avg
        assert model.estimate_edge_cost(10, 20, upper=1) == pytest.approx(0.04)

    def test_upper_2_scales_with_mean_two_hop(self):
        model = CostModel(t_avg=1e-3, t_lat=1.0, mean_degree=4.0, mean_two_hop=16.0)
        assert model.estimate_edge_cost(10, 20, upper=2) == pytest.approx(0.16)

    def test_bound_specialized_cheaper_than_all_pairs(self):
        model = CostModel(t_avg=1e-3, t_lat=1.0, mean_degree=4.0, mean_two_hop=16.0)
        all_pairs = model.estimate_edge_cost(100, 100, upper=5)
        assert model.estimate_edge_cost(100, 100, upper=1) < all_pairs
        assert model.estimate_edge_cost(100, 100, upper=2) < all_pairs

    def test_missing_stats_fall_back_to_unit(self):
        model = CostModel(t_avg=1e-3, t_lat=1.0)
        assert model.estimate_edge_cost(10, 20, upper=1) == pytest.approx(0.01)
