"""Tests for the deferred-edge pool."""

import pytest

from repro.core.cap import CAPIndex
from repro.core.cost import CostModel
from repro.core.edge_pool import EdgePool
from repro.core.query import BPHQuery
from repro.errors import CAPStateError


def setup_pool():
    query = BPHQuery()
    for label in "ABC":
        query.add_vertex(label)
    e01 = query.add_edge(0, 1, 1, 5)
    e12 = query.add_edge(1, 2, 1, 5)
    cap = CAPIndex()
    cap.add_level(0, range(10))  # |V_0| = 10
    cap.add_level(1, range(100, 120))  # |V_1| = 20
    cap.add_level(2, range(200, 205))  # |V_2| = 5
    pool = EdgePool()
    return query, cap, pool, e01, e12


def test_insert_contains_len():
    _, _, pool, e01, e12 = setup_pool()
    pool.insert(e01)
    assert pool.contains(0, 1)
    assert pool.contains(1, 0)
    assert not pool.contains(1, 2)
    assert len(pool) == 1
    pool.insert(e12)
    assert len(pool) == 2
    assert bool(pool)


def test_remove_and_discard():
    _, _, pool, e01, _ = setup_pool()
    pool.insert(e01)
    removed = pool.remove(1, 0)
    assert removed.key == (0, 1)
    assert not pool
    with pytest.raises(CAPStateError):
        pool.remove(0, 1)
    assert pool.discard(0, 1) is None


def test_min_edge_uses_live_sizes():
    _, cap, pool, e01, e12 = setup_pool()
    pool.insert(e01)  # T_est ~ 10*20
    pool.insert(e12)  # T_est ~ 20*5
    model = CostModel(t_avg=1.0, t_lat=1.0)
    edge, cost = pool.min_edge(cap, model)
    assert edge.key == (1, 2)
    assert cost == pytest.approx(100.0)
    # shrink level 0 so (0,1) becomes cheapest
    cap.reset_level(0, [1])
    edge, cost = pool.min_edge(cap, model)
    assert edge.key == (0, 1)
    assert cost == pytest.approx(20.0)


def test_min_edge_empty():
    _, cap, pool, _, _ = setup_pool()
    assert pool.min_edge(cap, CostModel(1.0, 1.0)) is None


def test_replace_updates_bounds():
    query, _, pool, e01, _ = setup_pool()
    pool.insert(e01)
    new_edge = query.set_bounds(0, 1, 1, 9)
    pool.replace(new_edge)
    assert pool.edges()[0].upper == 9


def test_replace_missing_rejected():
    _, _, pool, e01, _ = setup_pool()
    with pytest.raises(CAPStateError):
        pool.replace(e01)


def test_sync_query_bounds():
    query, _, pool, e01, e12 = setup_pool()
    pool.insert(e01)
    pool.insert(e12)
    query.set_bounds(0, 1, 2, 7)
    pool.sync_query_bounds(query)
    assert {e.key: e.upper for e in pool.edges()} == {(0, 1): 7, (1, 2): 5}


def test_sync_query_bounds_discards_deleted_edges():
    # Regression: a modification can delete a query edge while it is still
    # deferred.  sync_query_bounds used to ask the query for every pooled
    # key unconditionally, raising on the deleted one; it must instead
    # drop the stale key and keep refreshing the survivors.
    query, _, pool, e01, e12 = setup_pool()
    pool.insert(e01)
    pool.insert(e12)
    query.set_bounds(0, 1, 2, 7)  # modify one edge...
    query.remove_edge(1, 2)  # ...delete the other while both are pooled
    pool.sync_query_bounds(query)
    assert {e.key: e.upper for e in pool.edges()} == {(0, 1): 7}
    assert not pool.contains(1, 2)


def test_sync_query_bounds_all_edges_deleted():
    query, _, pool, e01, e12 = setup_pool()
    pool.insert(e01)
    pool.insert(e12)
    query.remove_edge(0, 1)
    query.remove_edge(1, 2)
    pool.sync_query_bounds(query)
    assert len(pool) == 0


def test_clear_and_iter():
    _, _, pool, e01, e12 = setup_pool()
    pool.insert(e01)
    pool.insert(e12)
    assert [e.key for e in pool] == [(0, 1), (1, 2)]
    pool.clear()
    assert len(pool) == 0
