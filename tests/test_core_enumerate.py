"""Tests for partial-matched vertex set enumeration (V_Delta)."""

import pytest

from repro.core.blender import Boomer
from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.enumerate import (
    iter_partial_vertex_sets,
    partial_vertex_sets,
    reorder_matching_order,
)
from repro.errors import CAPStateError
from tests.conftest import (
    brute_force_upper_matches,
    build_fig2_graph,
    make_fig2_query,
)


@pytest.fixture()
def fig2_run(fig2_ctx):
    """A completed Boomer run of the Figure-2 Q1 query."""
    boomer = Boomer(fig2_ctx, strategy="IC")
    boomer.apply(NewVertex(0, "A"))
    boomer.apply(NewVertex(1, "B"))
    boomer.apply(NewEdge(0, 1, 1, 1))
    boomer.apply(NewVertex(2, "C"))
    boomer.apply(NewEdge(1, 2, 1, 2))
    boomer.apply(NewEdge(0, 2, 1, 3))
    boomer.apply(Run())
    return boomer


class TestPaperExample:
    def test_v_delta_matches_paper(self, fig2_run):
        # Paper Section 5.1: V_Delta = {{v2,v5,v12},{v3,v6,v12},{v3,v8,v12}}
        got = {
            tuple(sorted(m.items())) for m in fig2_run.run_result.matches
        }
        want = {
            ((0, 1), (1, 4), (2, 11)),
            ((0, 2), (1, 5), (2, 11)),
            ((0, 2), (1, 7), (2, 11)),
        }
        assert got == want

    def test_matches_brute_force(self, fig2_run):
        graph = build_fig2_graph()
        query = make_fig2_query()
        want = brute_force_upper_matches(graph, query)
        got = {tuple(sorted(m.items())) for m in fig2_run.run_result.matches}
        assert got == want


class TestReorder:
    def test_sorted_by_candidate_size(self, fig2_run):
        order = reorder_matching_order(fig2_run.query, fig2_run.cap)
        sizes = [fig2_run.cap.candidate_count(q) for q in order]
        assert sizes == sorted(sizes)

    def test_ties_keep_user_order(self, fig2_run):
        cap = fig2_run.cap
        # make all levels the same size artificially
        base = fig2_run.query.matching_order
        order = reorder_matching_order(fig2_run.query, cap, base)
        # q2 (level C, 1 candidate) must come first
        assert order[0] == 2
        _ = base


class TestEnumeration:
    def test_unprocessed_edge_rejected(self, fig2_ctx):
        boomer = Boomer(fig2_ctx, strategy="DR")
        boomer.apply(NewVertex(0, "A"))
        boomer.apply(NewVertex(1, "B"))
        boomer.apply(NewEdge(0, 1, 1, 1))
        # force an unprocessed state by pooling manually
        engine = boomer.engine
        engine.cap.drop_edge(0, 1)
        with pytest.raises(CAPStateError):
            list(iter_partial_vertex_sets(engine.query, engine.cap))

    def test_max_results_truncation(self, fig2_run):
        engine = fig2_run.engine
        result = partial_vertex_sets(engine.query, engine.cap, max_results=2)
        assert len(result) == 2
        assert result.truncated

    def test_no_truncation_flag_when_complete(self, fig2_run):
        engine = fig2_run.engine
        result = partial_vertex_sets(engine.query, engine.cap, max_results=100)
        assert not result.truncated
        assert len(result) == 3

    def test_deterministic_order(self, fig2_run):
        engine = fig2_run.engine
        a = partial_vertex_sets(engine.query, engine.cap).matches
        b = partial_vertex_sets(engine.query, engine.cap).matches
        assert a == b

    def test_reorder_false_same_set(self, fig2_run):
        engine = fig2_run.engine
        a = partial_vertex_sets(engine.query, engine.cap, reorder=True)
        b = partial_vertex_sets(engine.query, engine.cap, reorder=False)
        key = lambda ms: {tuple(sorted(m.items())) for m in ms}
        assert key(a.matches) == key(b.matches)

    def test_injectivity_enforced(self, fig2_ctx):
        # Two query vertices with the same label must map to distinct data
        # vertices (1-1 p-hom).
        boomer = Boomer(fig2_ctx, strategy="IC")
        boomer.apply(NewVertex(0, "B"))
        boomer.apply(NewVertex(1, "B"))
        boomer.apply(NewEdge(0, 1, 1, 2))
        boomer.apply(Run())
        for match in boomer.run_result.matches:
            assert match[0] != match[1]

    def test_iterator_is_lazy(self, fig2_run):
        engine = fig2_run.engine
        iterator = iter_partial_vertex_sets(engine.query, engine.cap)
        first = next(iterator)
        assert isinstance(first, dict)
        assert set(first) == {0, 1, 2}

    def test_empty_query_yields_nothing(self, fig2_ctx):
        from repro.core.cap import CAPIndex
        from repro.core.query import BPHQuery

        assert list(iter_partial_vertex_sets(BPHQuery(), CAPIndex())) == []

    def test_single_vertex_query(self, fig2_ctx):
        boomer = Boomer(fig2_ctx, strategy="IC")
        boomer.apply(NewVertex(0, "C"))
        boomer.apply(Run())
        assert [m[0] for m in boomer.run_result.matches] == [11]
