"""Tests for exploratory-search helpers over a live CAP index."""

import pytest

from repro.core.actions import NewEdge, NewVertex
from repro.core.blender import Boomer
from repro.core.explore import (
    estimate_selectivity,
    maximum_match,
    suggest_extension_labels,
)
from repro.errors import CAPStateError


@pytest.fixture()
def partial(fig2_ctx):
    """A partially formulated query: A and B drawn, (A,B)[1,1] processed."""
    boomer = Boomer(fig2_ctx, strategy="IC")
    boomer.apply(NewVertex(0, "A"))
    boomer.apply(NewVertex(1, "B"))
    boomer.apply(NewEdge(0, 1, 1, 1))
    return boomer


class TestMaximumMatch:
    def test_live_candidates_per_level(self, partial):
        s_m = maximum_match(partial.engine)
        assert set(s_m) == {0, 1}
        # v1 (id 0) is pruned (no B neighbor within 1 hop)
        assert 0 not in s_m[0]
        assert s_m[0] == sorted(partial.cap.candidates(0))

    def test_reflects_pruning(self, fig2_ctx):
        boomer = Boomer(fig2_ctx, strategy="IC")
        boomer.apply(NewVertex(0, "A"))
        before = maximum_match(boomer.engine)
        assert before[0] == [0, 1, 2, 3]


class TestSuggestions:
    def test_requires_level(self, partial):
        with pytest.raises(CAPStateError):
            suggest_extension_labels(partial.engine, 99)

    def test_supported_labels_only(self, partial):
        suggestions = dict(suggest_extension_labels(partial.engine, 1, top_k=10))
        # B candidates (v5, v6, v8 at least) have A, X, C, B neighbors
        assert all(count > 0 for count in suggestions.values())
        assert "X" in suggestions or "C" in suggestions

    def test_support_counts_bounded_by_level_size(self, partial):
        level_size = partial.cap.candidate_count(1)
        for _, count in suggest_extension_labels(partial.engine, 1, top_k=10):
            assert count <= level_size

    def test_top_k(self, partial):
        assert len(suggest_extension_labels(partial.engine, 1, top_k=1)) == 1

    def test_ranked_descending(self, partial):
        counts = [c for _, c in suggest_extension_labels(partial.engine, 1, top_k=10)]
        assert counts == sorted(counts, reverse=True)

    def test_suggestion_keeps_levels_alive(self, partial):
        """Attaching a suggested label with bounds [1,1] cannot empty the
        touched CAP levels (complete-match survival additionally depends on
        the rest of the query, e.g. 1-1 injectivity)."""
        label, support = suggest_extension_labels(partial.engine, 1, top_k=1)[0]
        assert support > 0
        partial.apply(NewVertex(2, label))
        partial.apply(NewEdge(1, 2, 1, 1))
        assert partial.cap.candidate_count(2) > 0
        assert partial.cap.candidate_count(1) > 0

    def test_unsupported_label_prunes_new_level_empty(self, partial, fig2_graph):
        """Counterpoint: a label with zero support empties the new level."""
        suggestions = dict(suggest_extension_labels(partial.engine, 1, top_k=10))
        unsupported = [
            label
            for label in fig2_graph.distinct_labels()
            if label not in suggestions
        ]
        if not unsupported:
            pytest.skip("every label is supported on this fixture")
        partial.apply(NewVertex(2, unsupported[0]))
        partial.apply(NewEdge(1, 2, 1, 1))
        assert partial.cap.candidate_count(2) == 0


class TestSelectivity:
    def test_fractions_in_unit_interval(self, partial):
        sel = estimate_selectivity(partial.engine)
        assert set(sel) == {0, 1}
        for value in sel.values():
            assert 0.0 <= value <= 1.0

    def test_pruned_level_below_one(self, partial):
        sel = estimate_selectivity(partial.engine)
        assert sel[0] < 1.0  # v1 pruned out of 4 A's

    def test_untouched_level_is_one(self, fig2_ctx):
        boomer = Boomer(fig2_ctx, strategy="IC")
        boomer.apply(NewVertex(0, "C"))
        assert estimate_selectivity(boomer.engine)[0] == 1.0
