"""Tests for DetectPath and just-in-time lower-bound filtering."""

import pytest

from repro.core.context import EngineContext
from repro.core.cost import CostModel
from repro.core.lowerbound import detect_path, filter_by_lower_bound
from repro.core.query import BPHQuery
from repro.graph.algorithms import has_path_within
from repro.indexing.pml import PrunedLandmarkLabeling
from repro.indexing.twohop import two_hop_counts
from tests.conftest import build_cycle_graph, build_fig2_graph, build_path_graph


def make_ctx(graph):
    return EngineContext(
        graph=graph,
        oracle=PrunedLandmarkLabeling.build(graph),
        two_hop=two_hop_counts(graph),
        cost_model=CostModel(t_avg=1e-6, t_lat=1.0),
    )


def assert_valid_path(graph, path, source, target, lower, upper):
    assert path[0] == source and path[-1] == target
    assert lower <= len(path) - 1 <= upper
    assert len(set(path)) == len(path)  # simple
    for a, b in zip(path, path[1:]):
        assert graph.has_edge(a, b)


class TestDetectPath:
    def test_shortest_path_case(self):
        graph = build_path_graph(6)
        ctx = make_ctx(graph)
        path = detect_path(ctx, 0, 3, 1, 5)
        assert_valid_path(graph, path, 0, 3, 1, 5)
        assert len(path) - 1 == 3  # guided search finds the shortest

    def test_detour_needed(self):
        # Cycle of 5: adjacent vertices, lower=2 forces the long way round.
        graph = build_cycle_graph(5)
        ctx = make_ctx(graph)
        path = detect_path(ctx, 0, 1, 2, 4)
        assert_valid_path(graph, path, 0, 1, 2, 4)
        assert len(path) - 1 == 4

    def test_impossible_lower(self):
        # Path graph: the only simple 0->1 path has length 1.
        graph = build_path_graph(4)
        ctx = make_ctx(graph)
        assert detect_path(ctx, 0, 1, 2, 3) is None

    def test_upper_too_small(self):
        graph = build_path_graph(6)
        ctx = make_ctx(graph)
        assert detect_path(ctx, 0, 5, 1, 4) is None

    def test_same_vertex_rejected(self):
        graph = build_cycle_graph(4)
        ctx = make_ctx(graph)
        assert detect_path(ctx, 2, 2, 1, 4) is None

    def test_disconnected(self):
        from repro.graph.builder import GraphBuilder

        b = GraphBuilder()
        b.add_vertices("ab")
        ctx = make_ctx(b.build())
        assert detect_path(ctx, 0, 1, 1, 5) is None

    @pytest.mark.parametrize("lower,upper", [(1, 1), (1, 3), (2, 3), (3, 3), (2, 4)])
    def test_agrees_with_ground_truth_fig2(self, lower, upper):
        graph = build_fig2_graph()
        ctx = make_ctx(graph)
        for u in range(graph.num_vertices):
            for v in range(graph.num_vertices):
                if u == v:
                    continue
                path = detect_path(ctx, u, v, lower, upper)
                exists = has_path_within(graph, u, v, lower, upper)
                if exists:
                    assert path is not None, (u, v)
                    assert_valid_path(graph, path, u, v, lower, upper)
                else:
                    assert path is None, (u, v, path)

    def test_max_nodes_safety_valve(self):
        graph = build_fig2_graph()
        ctx = make_ctx(graph)
        # With a 1-node budget, nontrivial searches give up (returns None
        # rather than hanging); correctness callers use the default budget.
        assert detect_path(ctx, 0, 11, 3, 3, max_nodes=1) is None


class TestTruncationReporting:
    """Budget exhaustion is distinguishable from proven path absence."""

    def test_truncated_flag_set_when_budget_fires(self):
        from repro.core.lowerbound import PathSearchStats

        graph = build_fig2_graph()
        ctx = make_ctx(graph)
        stats = PathSearchStats()
        assert detect_path(ctx, 0, 11, 3, 3, max_nodes=1, stats=stats) is None
        assert stats.truncated
        assert stats.expanded > 0

    def test_proven_absence_is_not_truncated(self):
        from repro.core.lowerbound import PathSearchStats

        graph = build_path_graph(4)
        ctx = make_ctx(graph)
        stats = PathSearchStats()
        # The only simple 0->1 path has length 1 < lower: a full search
        # proves absence without exhausting the budget.
        assert detect_path(ctx, 0, 1, 2, 3, stats=stats) is None
        assert not stats.truncated

    def test_stats_reset_between_searches(self):
        from repro.core.lowerbound import PathSearchStats

        graph = build_fig2_graph()
        ctx = make_ctx(graph)
        stats = PathSearchStats()
        detect_path(ctx, 0, 11, 3, 3, max_nodes=1, stats=stats)
        assert stats.truncated
        detect_path(ctx, 1, 4, 1, 1, stats=stats)  # adjacent, trivially found
        assert not stats.truncated  # reused stats object was reset


class TestFilterTruncationMetric:
    def _truncation_count(self):
        from repro.obs.metrics import metrics

        return metrics.counter("repro_detect_path_truncations_total").value

    def test_truncated_rejection_increments_counter(self, fig2_ctx, monkeypatch):
        import repro.core.lowerbound as lb
        from tests.conftest import make_fig2_query

        original = lb.detect_path

        def tiny_budget(ctx, source, target, lower, upper, max_nodes=100_000, stats=None):
            return original(ctx, source, target, lower, upper, max_nodes=1, stats=stats)

        monkeypatch.setattr(lb, "detect_path", tiny_budget)
        before = self._truncation_count()
        result = lb.filter_by_lower_bound(
            {0: 1, 1: 4, 2: 11}, make_fig2_query(), fig2_ctx
        )
        assert result is None  # the (valid) match was dropped at the budget
        assert self._truncation_count() == before + 1

    def test_clean_accept_does_not_increment(self, fig2_ctx):
        from tests.conftest import make_fig2_query

        before = self._truncation_count()
        result = filter_by_lower_bound(
            {0: 1, 1: 4, 2: 11}, make_fig2_query(), fig2_ctx
        )
        assert result is not None
        assert self._truncation_count() == before

    def test_proven_rejection_does_not_increment(self, fig2_ctx):
        query = BPHQuery()
        query.add_vertex("A", vertex_id=0)
        query.add_vertex("B", vertex_id=1)
        query.add_edge(0, 1, 3, 3)
        before = self._truncation_count()
        # v1 (id 0) and v7 (id 6) are in different components: absence is
        # proven immediately, well inside the default budget.
        assert filter_by_lower_bound({0: 0, 1: 6}, query, fig2_ctx) is None
        assert self._truncation_count() == before


class TestFilterByLowerBound:
    def make_query(self, lower=1, upper=3):
        query = BPHQuery()
        query.add_vertex("A", vertex_id=0)
        query.add_vertex("C", vertex_id=1)
        query.add_edge(0, 1, lower, upper)
        return query

    def test_accepts_and_materializes_paths(self):
        graph = build_fig2_graph()
        ctx = make_ctx(graph)
        query = self.make_query(1, 3)
        result = filter_by_lower_bound({0: 1, 1: 11}, query, ctx)  # v2 -> v12
        assert result is not None
        path = result.paths[(0, 1)]
        assert_valid_path(graph, path, 1, 11, 1, 3)

    def test_rejects_when_no_qualifying_path(self):
        graph = build_path_graph(3)
        ctx = make_ctx(graph)
        query = BPHQuery()
        query.add_vertex("P", vertex_id=0)
        query.add_vertex("P", vertex_id=1)
        query.add_edge(0, 1, 2, 2)
        # vertices 0 and 1 are adjacent; no simple path of length exactly 2
        assert filter_by_lower_bound({0: 0, 1: 1}, query, ctx) is None

    def test_multi_edge_all_paths_materialized(self, fig2_ctx):
        from tests.conftest import make_fig2_query

        query = make_fig2_query()
        result = filter_by_lower_bound({0: 1, 1: 4, 2: 11}, query, fig2_ctx)
        assert result is not None
        assert set(result.paths) == {(0, 1), (1, 2), (0, 2)}

    def test_result_subgraph_vertices_include_path_interiors(self, fig2_ctx):
        from tests.conftest import make_fig2_query

        query = make_fig2_query()
        result = filter_by_lower_bound({0: 1, 1: 4, 2: 11}, query, fig2_ctx)
        # v5->v12 path goes through v9 (id 8): interior vertex included.
        assert result.vertices >= {1, 4, 11}
        assert len(result.vertices) >= 4

    def test_path_length_accessor(self, fig2_ctx):
        from tests.conftest import make_fig2_query

        query = make_fig2_query()
        result = filter_by_lower_bound({0: 1, 1: 4, 2: 11}, query, fig2_ctx)
        assert result.path_length(0, 1) == 1  # the [1,1] edge
        assert result.path_length(1, 0) == 1  # order-insensitive

    def test_region_extraction(self, fig2_ctx):
        from tests.conftest import make_fig2_query

        query = make_fig2_query()
        result = filter_by_lower_bound({0: 1, 1: 4, 2: 11}, query, fig2_ctx)
        region, mapping = result.region(fig2_ctx.graph, radius=1)
        assert region.num_vertices >= len(result.vertices)
        for orig in result.vertices:
            assert orig in mapping
