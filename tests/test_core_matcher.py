"""Tests for vertex matchers (label equality vs similarity)."""

import pytest

from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.core.matcher import (
    LabelEqualityMatcher,
    SimilarityMatcher,
    VertexMatcher,
    jaccard_label_similarity,
)
from repro.core.preprocessor import make_context
from tests.conftest import build_fig2_graph


class TestLabelEqualityMatcher:
    def test_candidates(self, fig2_graph):
        matcher = LabelEqualityMatcher()
        assert list(matcher.candidates_for(fig2_graph, "A")) == [0, 1, 2, 3]
        assert list(matcher.candidates_for(fig2_graph, "Z")) == []

    def test_matches(self, fig2_graph):
        matcher = LabelEqualityMatcher()
        assert matcher.matches(fig2_graph, "A", 0)
        assert not matcher.matches(fig2_graph, "A", 4)

    def test_satisfies_protocol(self):
        assert isinstance(LabelEqualityMatcher(), VertexMatcher)


class TestSimilarityMatcher:
    def exact(self, a, b):
        return 1.0 if a == b else 0.0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            SimilarityMatcher(self.exact, 1.5)

    def test_exact_similarity_equals_label_matcher(self, fig2_graph):
        sim = SimilarityMatcher(self.exact, threshold=1.0)
        eq = LabelEqualityMatcher()
        for label in fig2_graph.distinct_labels():
            assert list(sim.candidates_for(fig2_graph, label)) == list(
                eq.candidates_for(fig2_graph, label)
            )

    def test_zero_threshold_matches_everything(self, fig2_graph):
        sim = SimilarityMatcher(lambda a, b: 0.0, threshold=0.0)
        assert len(sim.candidates_for(fig2_graph, "A")) == fig2_graph.num_vertices

    def test_custom_similarity_widens_candidates(self, fig2_graph):
        # A and B are "similar"; X and C are not.
        def sim(query_label, data_label):
            close = {"A", "B"}
            if query_label == data_label:
                return 1.0
            return 0.8 if {query_label, data_label} <= close else 0.0

        matcher = SimilarityMatcher(sim, threshold=0.5)
        got = list(matcher.candidates_for(fig2_graph, "A"))
        assert got == [0, 1, 2, 3, 4, 5, 6, 7]  # A's and B's

    def test_matches_per_vertex(self, fig2_graph):
        matcher = SimilarityMatcher(self.exact, threshold=1.0)
        assert matcher.matches(fig2_graph, "C", 11)
        assert not matcher.matches(fig2_graph, "C", 0)

    def test_cache_consistency(self, fig2_graph):
        matcher = SimilarityMatcher(self.exact, threshold=1.0)
        first = matcher.candidates_for(fig2_graph, "B")
        second = matcher.candidates_for(fig2_graph, "B")
        assert first is second  # cached

    def test_matching_labels(self, fig2_graph):
        matcher = SimilarityMatcher(self.exact, threshold=1.0)
        assert matcher.matching_labels(fig2_graph, "A") == ["A"]


class TestJaccardSimilarity:
    def test_identical(self):
        assert jaccard_label_similarity("abc", "abc") == 1.0

    def test_disjoint(self):
        assert jaccard_label_similarity("abc", "xyz") == 0.0

    def test_partial(self):
        assert jaccard_label_similarity("ab", "bc") == pytest.approx(1 / 3)

    def test_case_insensitive(self):
        assert jaccard_label_similarity("ABC", "abc") == 1.0

    def test_empty(self):
        assert jaccard_label_similarity("", "") == 1.0


class TestEndToEndWithSimilarity:
    def test_p_hom_style_query(self, fig2_pre):
        """Full 1-1 p-hom: query label 'AB' matches both A and B vertices."""

        def sim(query_label, data_label):
            return 1.0 if str(data_label) in str(query_label) else 0.0

        ctx = make_context(fig2_pre)
        ctx.matcher = SimilarityMatcher(sim, threshold=1.0)
        boomer = Boomer(ctx, strategy="IC")
        boomer.apply(NewVertex(0, "AB"))  # matches all A and B vertices
        boomer.apply(NewVertex(1, "C"))
        boomer.apply(NewEdge(0, 1, 1, 2))
        boomer.apply(Run())
        matched_zero = {m[0] for m in boomer.run_result.matches}
        graph = build_fig2_graph()
        # every matched vertex is an A or a B within 2 hops of v12 (id 11)
        for v in matched_zero:
            assert graph.label(v) in ("A", "B")
        # B vertices adjacent to v12's neighborhood must appear (e.g. v8 id 7)
        assert 7 in matched_zero

    def test_rollback_preserves_matcher(self, fig2_pre):
        from repro.core.actions import DeleteEdge

        def sim(query_label, data_label):
            return 1.0 if str(data_label) in str(query_label) else 0.0

        ctx = make_context(fig2_pre)
        ctx.matcher = SimilarityMatcher(sim, threshold=1.0)
        boomer = Boomer(ctx, strategy="IC")
        boomer.apply(NewVertex(0, "AB"))
        boomer.apply(NewVertex(1, "C"))
        boomer.apply(NewEdge(0, 1, 1, 1))
        boomer.apply(DeleteEdge(0, 1))
        # rollback must re-retrieve candidates through the matcher
        assert boomer.cap.candidate_count(0) == 8  # all A's and B's


class TestSimilarityEquivalence:
    """Similarity matching over label classes must equal label-equality
    matching on a graph whose labels are collapsed to those classes."""

    def test_union_class_equivalence(self, fig2_graph, fig2_pre):
        from repro.core.actions import NewEdge, NewVertex, Run
        from repro.core.preprocessor import make_context, preprocess
        from repro.graph.builder import GraphBuilder

        # Collapse A and B into one class "AB" in a relabeled graph.
        collapse = {"A": "AB", "B": "AB", "X": "X", "C": "C"}
        builder = GraphBuilder("fig2-collapsed")
        builder.add_vertices([collapse[l] for l in fig2_graph.labels()])
        for u, v in fig2_graph.iter_edges():
            builder.add_edge(u, v)
        collapsed = builder.build()
        collapsed_pre = preprocess(collapsed, t_avg_samples=100)

        def run(ctx, labels):
            boomer = Boomer(ctx, strategy="IC")
            boomer.apply(NewVertex(0, labels[0]))
            boomer.apply(NewVertex(1, labels[1]))
            boomer.apply(NewEdge(0, 1, 1, 2))
            boomer.apply(Run())
            return {tuple(sorted(m.items())) for m in boomer.run_result.matches}

        def sim(query_label, data_label):
            return 1.0 if collapse[data_label] == query_label else 0.0

        ctx_sim = make_context(fig2_pre)
        ctx_sim.matcher = SimilarityMatcher(sim, threshold=1.0)
        via_similarity = run(ctx_sim, ("AB", "C"))
        via_collapsed = run(make_context(collapsed_pre), ("AB", "C"))
        assert via_similarity == via_collapsed
        assert via_similarity  # non-vacuous
