"""Tests for query modification (Section 6 / Algorithms 5 and 15).

Key correctness property: after any modification the session must produce
exactly the same final results as a fresh session formulating the modified
query from scratch.
"""

import pytest

from repro.core.actions import DeleteEdge, ModifyBounds, NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.errors import CAPStateError
from tests.conftest import brute_force_upper_matches


def formulate_fig2(boomer: Boomer, bounds=((1, 1), (1, 2), (1, 3))):
    boomer.apply(NewVertex(0, "A"))
    boomer.apply(NewVertex(1, "B"))
    boomer.apply(NewEdge(0, 1, *bounds[0]))
    boomer.apply(NewVertex(2, "C"))
    boomer.apply(NewEdge(1, 2, *bounds[1]))
    boomer.apply(NewEdge(0, 2, *bounds[2]))
    return boomer


def match_keys(run_result):
    return {tuple(sorted(m.items())) for m in run_result.matches}


def fresh_reference(ctx_factory, build):
    """Matches of a from-scratch formulation described by `build`."""
    boomer = Boomer(ctx_factory(), strategy="IC")
    build(boomer)
    boomer.apply(Run())
    return match_keys(boomer.run_result)


class TestDeletion:
    def test_delete_processed_edge_equals_fresh(self, fig2_pre):
        from repro.core.preprocessor import make_context
        from repro.core.cost import GUILatencyConstants

        latency = GUILatencyConstants().scaled(0.001)
        make_ctx = lambda: make_context(fig2_pre, latency=latency)

        boomer = formulate_fig2(Boomer(make_ctx(), strategy="IC"))
        report = boomer.apply(DeleteEdge(0, 2)).modification
        assert report.kind == "delete"
        assert report.was_processed
        boomer.apply(Run())

        def build(b):
            b.apply(NewVertex(0, "A"))
            b.apply(NewVertex(1, "B"))
            b.apply(NewEdge(0, 1, 1, 1))
            b.apply(NewVertex(2, "C"))
            b.apply(NewEdge(1, 2, 1, 2))

        assert match_keys(boomer.run_result) == fresh_reference(make_ctx, build)

    def test_delete_pooled_edge_no_cap_change(self, fig2_ctx):
        boomer = Boomer(fig2_ctx, strategy="DR")
        boomer.apply(NewVertex(0, "A"))
        boomer.apply(NewVertex(1, "B"))
        # make everything expensive so the edge is pooled
        from repro.core.cost import CostModel

        fig2_ctx.cost_model = CostModel(t_avg=100.0, t_lat=0.0001)
        boomer.apply(NewEdge(0, 1, 1, 5))
        assert boomer.engine.pool.contains(0, 1)
        report = boomer.apply(DeleteEdge(0, 1)).modification
        assert not report.was_processed
        assert not boomer.engine.pool.contains(0, 1)
        assert not boomer.query.has_edge(0, 1)

    def test_delete_unknown_edge_raises(self, fig2_ctx):
        boomer = Boomer(fig2_ctx, strategy="IC")
        boomer.apply(NewVertex(0, "A"))
        boomer.apply(NewVertex(1, "B"))
        with pytest.raises(Exception):
            boomer.apply(DeleteEdge(0, 1))  # never drawn


class TestBoundsModification:
    @pytest.fixture()
    def ctx_factory(self, fig2_pre):
        from repro.core.cost import GUILatencyConstants
        from repro.core.preprocessor import make_context

        latency = GUILatencyConstants().scaled(0.001)
        return lambda: make_context(fig2_pre, latency=latency)

    def _reference(self, ctx_factory, bounds):
        def build(b):
            formulate_fig2(b, bounds)

        return fresh_reference(ctx_factory, build)

    def test_tighten_processed_edge(self, ctx_factory):
        boomer = formulate_fig2(Boomer(ctx_factory(), strategy="IC"))
        report = boomer.apply(ModifyBounds(0, 2, 1, 2)).modification
        assert report.kind == "tighten"
        boomer.apply(Run())
        assert match_keys(boomer.run_result) == self._reference(
            ctx_factory, ((1, 1), (1, 2), (1, 2))
        )

    def test_loosen_processed_edge(self, ctx_factory):
        boomer = formulate_fig2(Boomer(ctx_factory(), strategy="IC"))
        report = boomer.apply(ModifyBounds(1, 2, 1, 3)).modification
        assert report.kind == "loosen"
        boomer.apply(Run())
        assert match_keys(boomer.run_result) == self._reference(
            ctx_factory, ((1, 1), (1, 3), (1, 3))
        )

    def test_lower_only_change_is_noop_on_cap(self, ctx_factory):
        boomer = formulate_fig2(Boomer(ctx_factory(), strategy="IC"))
        size_before = boomer.cap.size_report().total
        report = boomer.apply(ModifyBounds(0, 2, 2, 3)).modification
        assert report.kind == "lower-only"
        assert boomer.cap.size_report().total == size_before
        assert boomer.query.edge_between(0, 2).lower == 2

    def test_modify_pooled_edge_updates_pool_only(self, fig2_ctx):
        from repro.core.cost import CostModel

        boomer = Boomer(fig2_ctx, strategy="DR")
        boomer.apply(NewVertex(0, "A"))
        boomer.apply(NewVertex(1, "B"))
        fig2_ctx.cost_model = CostModel(t_avg=100.0, t_lat=0.0001)
        boomer.apply(NewEdge(0, 1, 1, 5))
        report = boomer.apply(ModifyBounds(0, 1, 1, 4)).modification
        assert report.kind == "pooled-update"
        assert boomer.engine.pool.edges()[0].upper == 4

    def test_tighten_matches_brute_force(self, ctx_factory, fig2_graph):
        boomer = formulate_fig2(Boomer(ctx_factory(), strategy="IC"))
        boomer.apply(ModifyBounds(0, 2, 1, 1))
        boomer.apply(Run())
        from repro.core.query import BPHQuery

        query = BPHQuery()
        query.add_vertex("A", vertex_id=0)
        query.add_vertex("B", vertex_id=1)
        query.add_vertex("C", vertex_id=2)
        query.add_edge(0, 1, 1, 1)
        query.add_edge(1, 2, 1, 2)
        query.add_edge(0, 2, 1, 1)
        assert match_keys(boomer.run_result) == brute_force_upper_matches(
            fig2_graph, query
        )


class TestRollbackInternals:
    def test_rollback_resets_levels(self, fig2_ctx):
        boomer = formulate_fig2(Boomer(fig2_ctx, strategy="IC"))
        # after formulation some A-candidates were pruned
        assert boomer.cap.candidate_count(0) < 4
        boomer.apply(DeleteEdge(0, 1))
        # IC reprocesses immediately; all edges of the component must be
        # processed again and the index consistent
        assert boomer.engine.pool.contains(0, 1) is False
        boomer.cap.check_consistency(boomer.query)

    def test_modification_report_fields(self, fig2_ctx):
        boomer = formulate_fig2(Boomer(fig2_ctx, strategy="IC"))
        report = boomer.apply(DeleteEdge(0, 2)).modification
        assert report.edge == (0, 2)
        assert report.elapsed_seconds >= 0
        assert set(report.affected_levels) == {0, 1, 2}
        assert (0, 2) not in report.repooled_edges

    def test_modify_unknown_edge_raises(self, fig2_ctx):
        boomer = Boomer(fig2_ctx, strategy="IC")
        boomer.apply(NewVertex(0, "A"))
        boomer.apply(NewVertex(1, "B"))
        with pytest.raises((CAPStateError, Exception)):
            boomer.apply(ModifyBounds(0, 1, 1, 2))


class TestDeleteValidation:
    def test_invalid_delete_leaves_query_untouched(self, fig2_ctx):
        """A rejected deletion must not half-mutate the session."""
        from repro.core.actions import DeleteEdge

        boomer = Boomer(fig2_ctx, strategy="IC")
        boomer.apply(NewVertex(0, "A"))
        boomer.apply(NewVertex(1, "B"))
        with pytest.raises(Exception):
            boomer.apply(DeleteEdge(0, 1))  # edge never drawn
        # session still usable: draw the edge and run
        boomer.apply(NewEdge(0, 1, 1, 1))
        boomer.apply(Run())
        assert boomer.run_result.num_matches > 0
