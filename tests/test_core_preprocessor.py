"""Tests for the offline preprocessor."""

import pytest

from repro.core.cost import GUILatencyConstants
from repro.core.preprocessor import make_context, measure_t_avg, preprocess
from repro.indexing.oracle import BFSOracle
from tests.conftest import build_fig2_graph


@pytest.fixture(scope="module")
def pre():
    return preprocess(build_fig2_graph(), t_avg_samples=500)


def test_preprocess_builds_all_pieces(pre):
    assert pre.pml is not None
    assert len(pre.two_hop) == pre.graph.num_vertices
    assert pre.t_avg > 0
    assert pre.pml_build_seconds >= 0
    assert pre.two_hop_seconds >= 0
    assert pre.t_avg_samples == 500


def test_summary_mentions_graph(pre):
    assert "fig2" in pre.summary()


def test_measure_t_avg_positive(pre):
    t = measure_t_avg(pre.pml, pre.graph, samples=100, seed=1)
    assert t > 0
    assert t < 0.01  # microsecond scale, not milliseconds


def test_measure_t_avg_empty_graph():
    from repro.graph.builder import GraphBuilder

    g = GraphBuilder().build()

    class NoOracle:
        def distance(self, u, v):
            return 0

        def within(self, u, v, upper):
            return True

    assert measure_t_avg(NoOracle(), g, samples=10) == 0.0


def test_make_context_defaults_to_pml(pre):
    ctx = make_context(pre)
    assert ctx.oracle is pre.pml
    assert ctx.cost_model.t_lat == GUILatencyConstants().t_lat
    assert ctx.cost_model.t_avg == pre.t_avg


def test_make_context_custom_oracle_and_latency(pre):
    oracle = BFSOracle(pre.graph)
    latency = GUILatencyConstants().scaled(0.5)
    ctx = make_context(pre, latency=latency, oracle=oracle)
    assert ctx.oracle is oracle
    assert ctx.cost_model.t_lat == pytest.approx(1.0)  # 2.0 * 0.5


def test_contexts_share_index_but_not_counters(pre):
    a = make_context(pre)
    b = make_context(pre)
    a.counters.distance_queries = 99
    assert b.counters.distance_queries == 0
    assert a.oracle is b.oracle
