"""Tests for PopulateVertexSet and its three search strategies.

Each search must produce exactly the pairs whose BFS distance satisfies the
edge's upper bound — verified against ground truth on the Figure-2 graph
and random graphs.
"""

import pytest

from repro.core.cap import CAPIndex
from repro.core.cost import CostModel
from repro.core.context import EngineContext
from repro.core.pvs import (
    large_upper_search,
    neighbor_search,
    populate_vertex_set,
    two_hop_search,
)
from repro.core.query import BPHQuery
from repro.graph.algorithms import bfs_distances
from repro.graph.generators import erdos_renyi
from repro.indexing.pml import PrunedLandmarkLabeling
from repro.indexing.twohop import two_hop_counts
from tests.conftest import build_fig2_graph


def make_ctx(graph, scan_override=None):
    ctx = EngineContext(
        graph=graph,
        oracle=PrunedLandmarkLabeling.build(graph),
        two_hop=two_hop_counts(graph),
        cost_model=CostModel(t_avg=1e-6, t_lat=1.0),
    )
    ctx.scan_override = scan_override
    return ctx


def expected_pairs(graph, cands_i, cands_j, upper):
    out = set()
    for vi in cands_i:
        dist = bfs_distances(graph, vi)
        for vj in cands_j:
            if vi != vj and 0 <= dist[vj] <= upper:
                out.add((vi, vj))
    return out


def run_search(graph, label_i, label_j, upper, ctx=None, force=False):
    ctx = ctx or make_ctx(graph)
    query = BPHQuery()
    query.add_vertex(label_i, vertex_id=0)
    query.add_vertex(label_j, vertex_id=1)
    edge = query.add_edge(0, 1, 1, upper)
    cap = CAPIndex()
    cap.add_level(0, (int(v) for v in graph.vertices_with_label(label_i)))
    cap.add_level(1, (int(v) for v in graph.vertices_with_label(label_j)))
    cap.begin_edge(0, 1)
    populate_vertex_set(cap, ctx, edge, force_large_upper=force)
    actual = {
        (vi, vj) for vi in cap.candidates(0) for vj in cap.aivs(0, 1, vi)
    }
    want = expected_pairs(
        graph,
        [int(v) for v in graph.vertices_with_label(label_i)],
        [int(v) for v in graph.vertices_with_label(label_j)],
        upper,
    )
    return actual, want, cap


class TestDispatch:
    @pytest.mark.parametrize("upper", [1, 2, 3, 5])
    def test_matches_ground_truth(self, upper):
        graph = build_fig2_graph()
        actual, want, _ = run_search(graph, "A", "B", upper)
        assert actual == want

    @pytest.mark.parametrize("upper", [1, 2])
    def test_forced_large_upper_same_result(self, upper):
        graph = build_fig2_graph()
        a1, w, _ = run_search(graph, "A", "B", upper)
        a2, _, _ = run_search(graph, "A", "B", upper, force=True)
        assert a1 == a2 == w


class TestNeighborSearch:
    def test_equals_truth_fig2(self):
        graph = build_fig2_graph()
        actual, want, _ = run_search(graph, "A", "B", 1)
        assert actual == want

    def test_same_label_levels_skip_self(self):
        graph = build_fig2_graph()
        actual, _, _ = run_search(graph, "B", "B", 1)
        assert all(vi != vj for vi, vj in actual)
        # v5-v6 is an edge between two B vertices
        assert (4, 5) in actual and (5, 4) in actual

    @pytest.mark.parametrize("mode", ["in", "out"])
    def test_forced_scan_modes_agree(self, mode):
        graph = build_fig2_graph()
        forced, want, _ = run_search(graph, "A", "B", 1, ctx=make_ctx(graph, mode))
        assert forced == want

    def test_counters(self):
        graph = build_fig2_graph()
        ctx = make_ctx(graph, "out")
        run_search(graph, "A", "B", 1, ctx=ctx)
        assert ctx.counters.out_scans == 4  # one per A candidate
        assert ctx.counters.in_scans == 0
        assert ctx.counters.pairs_added > 0


class TestTwoHopSearch:
    def test_equals_truth_fig2(self):
        graph = build_fig2_graph()
        actual, want, _ = run_search(graph, "A", "B", 2)
        assert actual == want

    @pytest.mark.parametrize("mode", ["in", "out"])
    def test_forced_scan_modes_agree(self, mode):
        graph = build_fig2_graph()
        forced, want, _ = run_search(graph, "A", "B", 2, ctx=make_ctx(graph, mode))
        assert forced == want

    def test_random_graphs(self):
        for seed in range(3):
            graph = erdos_renyi(
                30, 45, seed=seed, labels=["X" if v % 2 else "Y" for v in range(30)]
            )
            actual, want, _ = run_search(graph, "X", "Y", 2)
            assert actual == want


class TestLargeUpperSearch:
    @pytest.mark.parametrize("upper", [3, 4, 10])
    def test_equals_truth(self, upper):
        graph = build_fig2_graph()
        actual, want, _ = run_search(graph, "A", "C", upper)
        assert actual == want

    def test_counts_distance_queries(self):
        graph = build_fig2_graph()
        ctx = make_ctx(graph)
        run_search(graph, "A", "B", 3, ctx=ctx)
        assert ctx.counters.distance_queries == 4 * 4

    def test_random_graphs(self):
        for seed in range(3):
            graph = erdos_renyi(
                25, 40, seed=seed, labels=["X" if v % 3 else "Y" for v in range(25)]
            )
            actual, want, _ = run_search(graph, "X", "Y", 3)
            assert actual == want


def test_direct_function_calls_equal_dispatch():
    graph = build_fig2_graph()
    for upper, fn in ((1, neighbor_search), (2, two_hop_search), (3, large_upper_search)):
        ctx = make_ctx(graph)
        query = BPHQuery()
        query.add_vertex("A", vertex_id=0)
        query.add_vertex("B", vertex_id=1)
        edge = query.add_edge(0, 1, 1, upper)
        cap = CAPIndex()
        cap.add_level(0, (int(v) for v in graph.vertices_with_label("A")))
        cap.add_level(1, (int(v) for v in graph.vertices_with_label("B")))
        cap.begin_edge(0, 1)
        fn(cap, ctx, edge)
        got = {(vi, vj) for vi in cap.candidates(0) for vj in cap.aivs(0, 1, vi)}
        want = expected_pairs(
            graph,
            [int(v) for v in graph.vertices_with_label("A")],
            [int(v) for v in graph.vertices_with_label("B")],
            upper,
        )
        assert got == want
