"""Tests for the BPH query model."""

import pytest

from repro.core.query import BPHQuery, Bounds, QueryEdge, canonical_edge
from repro.errors import (
    BoundsError,
    QueryEdgeNotFoundError,
    QueryValidationError,
    QueryVertexNotFoundError,
)


class TestBounds:
    def test_defaults(self):
        b = Bounds()
        assert b.lower == 1 and b.upper == 1
        assert b.is_default

    def test_contains(self):
        b = Bounds(2, 4)
        assert not b.contains(1)
        assert b.contains(2)
        assert b.contains(4)
        assert not b.contains(5)

    def test_lower_below_one_rejected(self):
        with pytest.raises(BoundsError):
            Bounds(0, 1)

    def test_lower_above_upper_rejected(self):
        with pytest.raises(BoundsError):
            Bounds(3, 2)

    def test_str(self):
        assert str(Bounds(1, 3)) == "[1,3]"

    def test_non_default(self):
        assert not Bounds(1, 2).is_default
        assert not Bounds(2, 2).is_default


class TestCanonicalEdge:
    def test_ordering(self):
        assert canonical_edge(2, 1) == (1, 2)
        assert canonical_edge(1, 2) == (1, 2)


class TestQueryEdge:
    def test_key_and_bounds_shortcuts(self):
        e = QueryEdge(1, 2, Bounds(2, 3))
        assert e.key == (1, 2)
        assert e.lower == 2
        assert e.upper == 3

    def test_non_canonical_rejected(self):
        with pytest.raises(QueryValidationError):
            QueryEdge(2, 1, Bounds())

    def test_other_endpoint(self):
        e = QueryEdge(1, 2, Bounds())
        assert e.other_endpoint(1) == 2
        assert e.other_endpoint(2) == 1
        with pytest.raises(QueryVertexNotFoundError):
            e.other_endpoint(3)


class TestBPHQueryConstruction:
    def test_auto_ids(self):
        q = BPHQuery()
        assert q.add_vertex("A") == 0
        assert q.add_vertex("B") == 1

    def test_explicit_ids(self):
        q = BPHQuery()
        assert q.add_vertex("A", vertex_id=5) == 5
        assert q.add_vertex("B") == 6  # next dense after max

    def test_duplicate_id_rejected(self):
        q = BPHQuery()
        q.add_vertex("A", vertex_id=1)
        with pytest.raises(QueryValidationError):
            q.add_vertex("B", vertex_id=1)

    def test_none_label_rejected(self):
        with pytest.raises(QueryValidationError):
            BPHQuery().add_vertex(None)

    def test_add_edge_canonicalizes(self):
        q = BPHQuery()
        q.add_vertex("A")
        q.add_vertex("B")
        edge = q.add_edge(1, 0, 1, 2)
        assert edge.key == (0, 1)
        assert q.has_edge(0, 1) and q.has_edge(1, 0)

    def test_self_loop_rejected(self):
        q = BPHQuery()
        q.add_vertex("A")
        with pytest.raises(QueryValidationError):
            q.add_edge(0, 0)

    def test_duplicate_edge_rejected(self):
        q = BPHQuery()
        q.add_vertices_for_test = [q.add_vertex(l) for l in "AB"]
        q.add_edge(0, 1)
        with pytest.raises(QueryValidationError):
            q.add_edge(1, 0)

    def test_edge_to_unknown_vertex(self):
        q = BPHQuery()
        q.add_vertex("A")
        with pytest.raises(QueryVertexNotFoundError):
            q.add_edge(0, 7)


class TestMutation:
    def make_triangle(self):
        q = BPHQuery()
        for label in "ABC":
            q.add_vertex(label)
        q.add_edge(0, 1)
        q.add_edge(1, 2, 1, 2)
        q.add_edge(0, 2, 1, 3)
        return q

    def test_remove_edge(self):
        q = self.make_triangle()
        removed = q.remove_edge(2, 1)
        assert removed.key == (1, 2)
        assert not q.has_edge(1, 2)
        assert q.num_edges == 2
        assert 2 not in q.neighbors(1)

    def test_remove_missing_edge(self):
        q = self.make_triangle()
        with pytest.raises(QueryEdgeNotFoundError):
            q.remove_edge(0, 0 + 10)

    def test_set_bounds(self):
        q = self.make_triangle()
        edge = q.set_bounds(0, 1, 2, 5)
        assert edge.bounds == Bounds(2, 5)
        assert q.edge_between(0, 1).upper == 5

    def test_set_bounds_missing_edge(self):
        q = BPHQuery()
        q.add_vertex("A")
        q.add_vertex("B")
        with pytest.raises(QueryEdgeNotFoundError):
            q.set_bounds(0, 1, 1, 2)


class TestAccessors:
    def test_matching_order_is_insertion_order(self):
        q = BPHQuery()
        q.add_vertex("B", vertex_id=3)
        q.add_vertex("A", vertex_id=1)
        assert q.matching_order == [3, 1]
        assert [v.id for v in q.vertices()] == [3, 1]

    def test_neighbors_and_incident_edges(self):
        q = BPHQuery()
        for label in "ABC":
            q.add_vertex(label)
        q.add_edge(0, 1)
        q.add_edge(0, 2)
        assert q.neighbors(0) == {1, 2}
        assert [e.key for e in q.incident_edges(0)] == [(0, 1), (0, 2)]

    def test_label(self):
        q = BPHQuery()
        q.add_vertex("XYZ")
        assert q.label(0) == "XYZ"

    def test_iteration(self):
        q = BPHQuery()
        q.add_vertex("A")
        q.add_vertex("B")
        assert [v.label for v in q] == ["A", "B"]


class TestStructure:
    def test_connectivity(self):
        q = BPHQuery()
        for label in "ABC":
            q.add_vertex(label)
        assert not q.is_connected()
        q.add_edge(0, 1)
        assert not q.is_connected()
        q.add_edge(1, 2)
        assert q.is_connected()

    def test_empty_and_singleton_connected(self):
        assert BPHQuery().is_connected()
        q = BPHQuery()
        q.add_vertex("A")
        assert q.is_connected()

    def test_is_subgraph_iso_query(self):
        q = BPHQuery()
        q.add_vertex("A")
        q.add_vertex("B")
        q.add_edge(0, 1)
        assert q.is_subgraph_iso_query
        q.set_bounds(0, 1, 1, 2)
        assert not q.is_subgraph_iso_query

    def test_validate(self):
        q = BPHQuery()
        with pytest.raises(QueryValidationError):
            q.validate()
        q.add_vertex("A")
        q.validate()
        q.add_vertex("B")
        with pytest.raises(QueryValidationError):
            q.validate()  # disconnected
        q.add_edge(0, 1)
        q.validate()


class TestCopy:
    def test_copy_is_deep_for_structure(self):
        q = BPHQuery(name="orig")
        for label in "AB":
            q.add_vertex(label)
        q.add_edge(0, 1, 1, 2)
        clone = q.copy()
        clone.remove_edge(0, 1)
        assert q.has_edge(0, 1)
        assert clone.name == "orig"

    def test_copy_preserves_ids_order_bounds(self):
        q = BPHQuery()
        q.add_vertex("A", vertex_id=4)
        q.add_vertex("B", vertex_id=2)
        q.add_edge(4, 2, 2, 3)
        clone = q.copy(name="c2")
        assert clone.matching_order == [4, 2]
        assert clone.edge_between(2, 4).bounds == Bounds(2, 3)
        assert clone.name == "c2"
