"""Tests for result ranking."""

import pytest

from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.core.ranking import (
    RANKINGS,
    compactness_score,
    rank_results,
    slack_score,
    spread_score,
)
from repro.errors import ExperimentError


@pytest.fixture()
def completed(fig2_ctx):
    boomer = Boomer(fig2_ctx, strategy="IC")
    boomer.apply(NewVertex(0, "A"))
    boomer.apply(NewVertex(1, "B"))
    boomer.apply(NewEdge(0, 1, 1, 1))
    boomer.apply(NewVertex(2, "C"))
    boomer.apply(NewEdge(1, 2, 1, 2))
    boomer.apply(NewEdge(0, 2, 1, 3))
    boomer.apply(Run())
    return boomer


def test_known_schemes():
    assert set(RANKINGS) == {"compactness", "slack", "spread"}


def test_unknown_scheme_rejected(completed):
    with pytest.raises(ExperimentError):
        rank_results(completed.results(), completed.query, completed.engine.ctx, scheme="magic")


def test_compactness_orders_by_total_path_length(completed):
    results = completed.results()
    ranked = rank_results(results, completed.query, completed.engine.ctx, "compactness")
    scores = [
        compactness_score(r, completed.query, completed.engine.ctx) for r in ranked
    ]
    assert scores == sorted(scores)


def test_slack_prefers_most_headroom(completed):
    results = completed.results()
    ranked = rank_results(results, completed.query, completed.engine.ctx, "slack")
    scores = [slack_score(r, completed.query, completed.engine.ctx) for r in ranked]
    assert scores == sorted(scores)


def test_spread_uses_oracle_distances(completed):
    results = completed.results()
    for r in results:
        spread = spread_score(r, completed.query, completed.engine.ctx)
        assert spread >= 1


def test_limit(completed):
    ranked = rank_results(
        completed.results(), completed.query, completed.engine.ctx, limit=2
    )
    assert len(ranked) == 2


def test_deterministic_tiebreak(completed):
    a = rank_results(completed.results(), completed.query, completed.engine.ctx)
    b = rank_results(completed.results(), completed.query, completed.engine.ctx)
    assert [r.assignment for r in a] == [r.assignment for r in b]


def test_ranking_preserves_result_set(completed):
    results = completed.results()
    ranked = rank_results(results, completed.query, completed.engine.ctx)
    key = lambda rs: {tuple(sorted(r.assignment.items())) for r in rs}
    assert key(results) == key(ranked)
