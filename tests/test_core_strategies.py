"""Tests for the IC/DR/DI construction strategies.

Uses the Figure-2 graph with an artificially tuned cost model so that
expensiveness is controlled deterministically.
"""

import pytest

from repro.core.blender import BlenderEngine
from repro.core.context import EngineContext
from repro.core.cost import CostModel
from repro.core.strategies import (
    STRATEGY_NAMES,
    ConstructionStrategy,
    DeferToIdleStrategy,
    DeferToRunStrategy,
    ImmediateStrategy,
    make_strategy,
)
from repro.indexing.pml import PrunedLandmarkLabeling
from repro.indexing.twohop import two_hop_counts
from tests.conftest import build_fig2_graph


def make_engine(strategy: ConstructionStrategy, t_avg=1e-9, t_lat=10.0):
    graph = build_fig2_graph()
    ctx = EngineContext(
        graph=graph,
        oracle=PrunedLandmarkLabeling.build(graph),
        two_hop=two_hop_counts(graph),
        cost_model=CostModel(t_avg=t_avg, t_lat=t_lat),
    )
    engine = BlenderEngine(ctx, strategy)
    engine.query.add_vertex("A", vertex_id=0)
    engine.query.add_vertex("B", vertex_id=1)
    engine.process_new_vertex(0, "A")
    engine.process_new_vertex(1, "B")
    return engine


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("IC", ImmediateStrategy),
            ("immediate", ImmediateStrategy),
            ("DR", DeferToRunStrategy),
            ("defer-to-run", DeferToRunStrategy),
            ("defer_to_run", DeferToRunStrategy),
            ("DI", DeferToIdleStrategy),
            ("Defer-To-Idle", DeferToIdleStrategy),
        ],
    )
    def test_names(self, name, cls):
        assert isinstance(make_strategy(name), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_strategy("bogus")

    def test_registry_names(self):
        assert STRATEGY_NAMES == ("IC", "DR", "DI")


class TestImmediate:
    def test_always_processes(self):
        engine = make_engine(ImmediateStrategy(), t_avg=100.0, t_lat=0.0001)
        edge = engine.query.add_edge(0, 1, 1, 5)  # hugely "expensive"
        assert engine.strategy.on_new_edge(engine, edge) is True
        assert engine.cap.is_processed(0, 1)
        assert len(engine.pool) == 0


class TestDeferToRun:
    def test_cheap_edge_processed_inline(self):
        engine = make_engine(DeferToRunStrategy(), t_avg=1e-9, t_lat=10.0)
        edge = engine.query.add_edge(0, 1, 1, 5)
        assert engine.strategy.on_new_edge(engine, edge) is True
        assert engine.cap.is_processed(0, 1)

    def test_expensive_edge_pooled(self):
        engine = make_engine(DeferToRunStrategy(), t_avg=100.0, t_lat=0.001)
        edge = engine.query.add_edge(0, 1, 1, 5)
        assert engine.strategy.on_new_edge(engine, edge) is False
        assert not engine.cap.is_processed(0, 1)
        assert engine.pool.contains(0, 1)
        assert engine.ctx.counters.edges_deferred == 1

    def test_low_upper_never_pooled(self):
        engine = make_engine(DeferToRunStrategy(), t_avg=100.0, t_lat=0.001)
        edge = engine.query.add_edge(0, 1, 1, 2)
        assert engine.strategy.on_new_edge(engine, edge) is True

    def test_idle_does_nothing(self):
        engine = make_engine(DeferToRunStrategy(), t_avg=100.0, t_lat=0.001)
        edge = engine.query.add_edge(0, 1, 1, 5)
        engine.strategy.on_new_edge(engine, edge)
        engine.strategy.on_idle(engine, 1e9)
        assert engine.pool.contains(0, 1)  # still pooled

    def test_on_run_drains(self):
        engine = make_engine(DeferToRunStrategy(), t_avg=100.0, t_lat=0.001)
        edge = engine.query.add_edge(0, 1, 1, 5)
        engine.strategy.on_new_edge(engine, edge)
        engine.strategy.on_run(engine)
        assert not engine.pool
        assert engine.cap.is_processed(0, 1)


class TestDeferToIdle:
    def test_probe_processes_when_budget_allows(self):
        engine = make_engine(DeferToIdleStrategy(), t_avg=100.0, t_lat=0.001)
        edge = engine.query.add_edge(0, 1, 1, 5)
        engine.strategy.on_new_edge(engine, edge)
        assert engine.pool.contains(0, 1)
        # Make the pooled edge cheap again by shrinking a level, then probe.
        engine.cap.reset_level(0, [1])
        engine.ctx.cost_model = CostModel(t_avg=1e-9, t_lat=0.001)
        engine.strategy.on_idle(engine, idle_seconds=5.0)
        assert not engine.pool
        assert engine.cap.is_processed(0, 1)

    def test_probe_skips_when_budget_too_small(self):
        engine = make_engine(DeferToIdleStrategy(), t_avg=100.0, t_lat=0.001)
        edge = engine.query.add_edge(0, 1, 1, 5)
        engine.strategy.on_new_edge(engine, edge)
        engine.strategy.on_idle(engine, idle_seconds=0.0001)
        assert engine.pool.contains(0, 1)

    def test_zero_idle_noop(self):
        engine = make_engine(DeferToIdleStrategy(), t_avg=100.0, t_lat=0.001)
        edge = engine.query.add_edge(0, 1, 1, 5)
        engine.strategy.on_new_edge(engine, edge)
        engine.strategy.on_idle(engine, 0.0)
        assert engine.pool.contains(0, 1)


def test_names():
    assert ImmediateStrategy().name == "IC"
    assert DeferToRunStrategy().name == "DR"
    assert DeferToIdleStrategy().name == "DI"
