"""Tests for the dataset registry and caching."""

import pytest

from repro.datasets.registry import (
    DATASET_NAMES,
    SCALES,
    clear_memory_cache,
    dataset_config,
    get_dataset,
)
from repro.errors import DatasetError


def test_known_names_and_scales():
    assert set(DATASET_NAMES) == {"wordnet", "dblp", "flickr"}
    assert set(SCALES) == {"tiny", "small", "paper"}


def test_paper_preset_is_paper_sized():
    config = dataset_config("flickr", "paper")
    assert config.num_vertices == 1_800_000
    assert config.num_labels == 3000
    assert config.latency_scale == 1.0  # nothing shrank, nothing to rescale
    assert config.edge_ratio == pytest.approx(12.8)
    assert "-r12.8" in config.cache_key


def test_unknown_error_lists_presets_dynamically():
    with pytest.raises(DatasetError, match="flickr/paper"):
        dataset_config("dblp", "huge")


def test_config_lookup():
    config = dataset_config("wordnet", "tiny")
    assert config.name == "wordnet"
    assert config.scale == "tiny"
    assert config.num_vertices > 0
    assert "wordnet" in config.cache_key


def test_unknown_rejected():
    with pytest.raises(DatasetError):
        dataset_config("imdb")
    with pytest.raises(DatasetError):
        dataset_config("dblp", "huge")


def test_bundle_contents(wordnet_tiny):
    assert wordnet_tiny.name == "wordnet"
    assert wordnet_tiny.graph.num_vertices > 100
    assert wordnet_tiny.pre.t_avg > 0
    assert wordnet_tiny.latency.t_lat < 2.0  # scaled down


def test_make_context_fresh_counters(wordnet_tiny):
    a = wordnet_tiny.make_context()
    b = wordnet_tiny.make_context()
    a.counters.distance_queries = 5
    assert b.counters.distance_queries == 0
    assert a.oracle is b.oracle  # shared index


def test_label_scheme_per_dataset(wordnet_tiny, dblp_tiny, flickr_tiny):
    assert wordnet_tiny.graph.distinct_labels() <= {"n", "v", "a", "s", "r"}
    assert len(dblp_tiny.graph.distinct_labels()) <= 4
    assert len(flickr_tiny.graph.distinct_labels()) <= 22
    # per-label ordering: wordnet >> dblp > flickr candidate sets
    top = lambda bundle: max(
        len(bundle.graph.vertices_with_label(l))
        for l in bundle.graph.distinct_labels()
    )
    assert top(wordnet_tiny) > top(dblp_tiny) > top(flickr_tiny)


def test_memory_cache_returns_same_object(wordnet_tiny):
    again = get_dataset("wordnet", "tiny")
    assert again is wordnet_tiny


def test_disk_cache_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    clear_memory_cache()
    first = get_dataset("dblp", "tiny")
    assert any(tmp_path.iterdir())  # pickle written
    clear_memory_cache()
    second = get_dataset("dblp", "tiny")  # loaded from disk
    assert second.graph == first.graph
    assert second.pre.t_avg > 0
    clear_memory_cache()


def test_no_disk_cache_flag(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "sub"))
    clear_memory_cache()
    get_dataset("dblp", "tiny", use_disk_cache=False)
    assert not (tmp_path / "sub").exists()
    clear_memory_cache()


def test_corrupt_disk_cache_rebuilds(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    clear_memory_cache()
    config = dataset_config("dblp", "tiny")
    (tmp_path).mkdir(exist_ok=True)
    (tmp_path / f"{config.cache_key}.pkl").write_bytes(b"garbage")
    bundle = get_dataset("dblp", "tiny")
    assert bundle.graph.num_vertices > 0
    clear_memory_cache()
