"""Documentation hygiene checks.

Keeps the docs honest: every module the docs reference must exist, every
public module must carry a docstring, and the deliverable files must be
present and non-trivial.
"""

import importlib
import pkgutil
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent


def iter_repro_modules():
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield module_info.name


ALL_MODULES = sorted(iter_repro_modules())


@pytest.mark.parametrize("name", ALL_MODULES)
def test_every_module_imports_and_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"
    assert len(module.__doc__.strip()) > 20, f"{name} docstring is trivial"


def test_public_api_objects_documented():
    import repro.core as core

    for symbol in core.__all__:
        obj = getattr(core, symbol)
        if isinstance(obj, (str, tuple, dict)):
            continue  # constants
        assert getattr(obj, "__doc__", None), f"repro.core.{symbol} lacks a docstring"


@pytest.mark.parametrize(
    "filename",
    ["README.md", "DESIGN.md", "LICENSE", "pyproject.toml",
     "docs/ALGORITHMS.md", "docs/ARCHITECTURE.md", "docs/USAGE.md",
     "docs/SERVICE.md", "docs/OBSERVABILITY.md", "docs/ANALYSIS.md",
     "docs/STORAGE.md"],
)
def test_deliverable_files_present(filename):
    path = REPO_ROOT / filename
    assert path.exists(), filename
    assert len(path.read_text(encoding="utf-8")) > 400, f"{filename} is stubby"


def test_design_covers_every_experiment():
    text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
    for artifact in [
        "Fig. 5",
        "Fig. 7",
        "Fig. 8",
        "Fig. 10",
        "Fig. 11",
        "Fig. 14",
        "Table 1",
    ]:
        assert artifact in text, artifact


def test_algorithm_map_mentions_all_paper_algorithms():
    text = (REPO_ROOT / "docs/ALGORITHMS.md").read_text(encoding="utf-8")
    for number in range(1, 16):
        assert f"Alg. {number}" in text or f"Algorithm {number}" in text, number


def test_readme_architecture_modules_exist():
    """Module paths named in README's architecture block must be importable."""
    for dotted in [
        "repro.graph",
        "repro.indexing",
        "repro.core",
        "repro.baseline",
        "repro.gui",
        "repro.workload",
        "repro.datasets",
        "repro.experiments",
    ]:
        importlib.import_module(dotted)


def test_version_consistency():
    import repro

    pyproject = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    assert f'version = "{repro.__version__}"' in pyproject


def test_examples_directory_complete():
    examples = {p.name for p in (REPO_ROOT / "examples").glob("*.py")}
    assert {
        "quickstart.py",
        "bio_homolog_search.py",
        "social_fof.py",
        "interactive_modification.py",
        "exploratory_phom.py",
    } <= examples


def test_benchmarks_cover_every_paper_artifact():
    """Each evaluation figure/table has a bench module naming it."""
    bench_sources = "\n".join(
        p.read_text(encoding="utf-8")
        for p in (REPO_ROOT / "benchmarks").glob("bench_*.py")
    )
    for artifact in [
        "Figure 5",
        "Figure 6",
        "Figure 7",
        "Figure 8",
        "Figure 9",
        "Figure 10",
        "Figure 11",
        "Figure 13",
        "Figure 14",
        "Table 1",
        "Figure 15",
        "Figure 16",
        "Figure 17",
    ]:
        assert artifact in bench_sources, artifact
