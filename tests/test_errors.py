"""Exception-hierarchy contract tests."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in errors.__all__:
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_graph_errors_hierarchy():
    assert issubclass(errors.GraphBuildError, errors.GraphError)
    assert issubclass(errors.VertexNotFoundError, errors.GraphError)
    assert issubclass(errors.EdgeNotFoundError, errors.GraphError)
    assert issubclass(errors.GraphIOError, errors.GraphError)


def test_vertex_not_found_is_key_error():
    # Lookup-style failures should be catchable as KeyError too.
    assert issubclass(errors.VertexNotFoundError, KeyError)
    assert issubclass(errors.QueryVertexNotFoundError, KeyError)
    assert issubclass(errors.QueryEdgeNotFoundError, KeyError)


def test_bounds_error_is_value_error():
    assert issubclass(errors.BoundsError, ValueError)


def test_vertex_not_found_message_and_payload():
    err = errors.VertexNotFoundError(42)
    assert err.vertex == 42
    assert "42" in str(err)


def test_edge_not_found_payload():
    err = errors.EdgeNotFoundError(1, 2)
    assert err.edge == (1, 2)


def test_query_errors_hierarchy():
    assert issubclass(errors.QueryValidationError, errors.QueryError)
    assert issubclass(errors.BoundsError, errors.QueryError)


def test_index_errors_hierarchy():
    assert issubclass(errors.IndexNotBuiltError, errors.IndexError_)
    assert issubclass(errors.CAPStateError, errors.CAPError)


def test_session_errors_hierarchy():
    assert issubclass(errors.ActionError, errors.SessionError)


def test_resilience_errors_hierarchy():
    assert issubclass(errors.ResilienceError, errors.ReproError)
    assert issubclass(errors.DeadlineExceededError, errors.ResilienceError)
    assert issubclass(errors.RetryExhaustedError, errors.ResilienceError)
    assert issubclass(errors.CAPCorruptionError, errors.ResilienceError)
    assert issubclass(errors.DegradedModeError, errors.ResilienceError)


def test_deadline_exceeded_is_timeout_error():
    # Generic timeout handlers (concurrent.futures style) must catch it.
    assert issubclass(errors.DeadlineExceededError, TimeoutError)


def test_deadline_exceeded_payload():
    err = errors.DeadlineExceededError("pool drain", limit=2.5)
    assert err.context == "pool drain"
    assert err.limit == 2.5
    assert "pool drain" in str(err) and "2.500" in str(err)
    bare = errors.DeadlineExceededError()
    assert bare.limit is None


def test_retry_exhausted_payload():
    cause = RuntimeError("oracle down")
    err = errors.RetryExhaustedError("probe", 3, cause)
    assert err.operation == "probe"
    assert err.attempts == 3
    assert err.last_error is cause
    assert "probe" in str(err) and "RuntimeError" in str(err)


def test_cap_corruption_is_cap_error():
    # Existing CAPError handlers must also see corruption failures.
    assert issubclass(errors.CAPCorruptionError, errors.CAPError)
    err = errors.CAPCorruptionError("rotten", corrupt_edges=[(0, 1)])
    assert err.corrupt_edges == [(0, 1)]
    assert errors.CAPCorruptionError("rotten").corrupt_edges == []


def test_single_except_clause_catches_everything():
    with pytest.raises(errors.ReproError):
        raise errors.DatasetError("nope")
