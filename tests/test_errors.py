"""Exception-hierarchy contract tests."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in errors.__all__:
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_graph_errors_hierarchy():
    assert issubclass(errors.GraphBuildError, errors.GraphError)
    assert issubclass(errors.VertexNotFoundError, errors.GraphError)
    assert issubclass(errors.EdgeNotFoundError, errors.GraphError)
    assert issubclass(errors.GraphIOError, errors.GraphError)


def test_vertex_not_found_is_key_error():
    # Lookup-style failures should be catchable as KeyError too.
    assert issubclass(errors.VertexNotFoundError, KeyError)
    assert issubclass(errors.QueryVertexNotFoundError, KeyError)
    assert issubclass(errors.QueryEdgeNotFoundError, KeyError)


def test_bounds_error_is_value_error():
    assert issubclass(errors.BoundsError, ValueError)


def test_vertex_not_found_message_and_payload():
    err = errors.VertexNotFoundError(42)
    assert err.vertex == 42
    assert "42" in str(err)


def test_edge_not_found_payload():
    err = errors.EdgeNotFoundError(1, 2)
    assert err.edge == (1, 2)


def test_query_errors_hierarchy():
    assert issubclass(errors.QueryValidationError, errors.QueryError)
    assert issubclass(errors.BoundsError, errors.QueryError)


def test_index_errors_hierarchy():
    assert issubclass(errors.IndexNotBuiltError, errors.IndexError_)
    assert issubclass(errors.CAPStateError, errors.CAPError)


def test_session_errors_hierarchy():
    assert issubclass(errors.ActionError, errors.SessionError)


def test_single_except_clause_catches_everything():
    with pytest.raises(errors.ReproError):
        raise errors.DatasetError("nope")
