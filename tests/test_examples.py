"""The shipped examples must run clean end to end.

Each example is executed as a subprocess (its own interpreter, like a user
would run it) and must exit 0 with its key output markers present.
Dataset-backed examples benefit from the registry's disk cache, so this
stays fast after the first run.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

_CASES = [
    ("quickstart.py", ["V_Delta: 3 upper-bound matches", "matched by path"]),
    ("bio_homolog_search.py", ["conserved apoptosis pathway match", "C. elegans"]),
    ("social_fof.py", ["FOF:", "lower-bound check"]),
    ("interactive_modification.py", ["verified: edited session's answers equal"]),
    ("exploratory_phom.py", ["suggested labels", "most compact matches"]),
    ("benchmark_walkthrough.py", ["registered experiments", "markdown report"]),
]


@pytest.mark.parametrize("script,markers", _CASES, ids=[c[0] for c in _CASES])
def test_example_runs_clean(script, markers):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    for marker in markers:
        assert marker in proc.stdout, (marker, proc.stdout[-2000:])
