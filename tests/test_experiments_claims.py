"""Tests for the claim-verdict machinery (synthetic tables)."""

from repro.experiments.claims import ClaimVerdict, evaluate_claims, render_claims
from repro.experiments.harness import ExperimentTable


def _table(artifact, headers, rows):
    return ExperimentTable(
        experiment="expX", artifact=artifact, title=artifact, headers=headers, rows=rows
    )


def make_passing_tables():
    return {
        "Figure 5": _table(
            "Figure 5",
            ["query", "3-strategy SRT (ms)", "1-strategy SRT (ms)", "speedup", "|V_delta|"],
            [["Q1", 1.0, 10.0, 10.0, 5]],
        ),
        "Figure 6(a)": _table(
            "Figure 6(a)",
            ["query", "pruning SRT (ms)", "no-pruning SRT (ms)", "ratio"],
            [["Q1", 1.0, 5.0, 5.0]],
        ),
        "Figure 6(b)": _table(
            "Figure 6(b)",
            ["query", "pruning size", "no-pruning size", "ratio"],
            [["Q1", 10, 50, 5.0]],
        ),
        "Figure 7": _table(
            "Figure 7",
            ["dataset", "query", "BU (ms)", "IC (ms)", "DR (ms)", "DI (ms)", "|V_delta|"],
            [
                ["wordnet", "Q1", "DNF", 100.0, 10.0, 9.0, 5],
                ["dblp", "Q1", 900.0, 100.0, 10.0, 9.0, 5],
            ],
        ),
        "Figure 8": _table(
            "Figure 8",
            ["dataset", "query", "IC (ms)", "DR (ms)", "DI (ms)", "deferred"],
            [["wordnet", "Q1", 100.0, 10.0, 9.0, 1]],
        ),
        "Figure 9": _table(
            "Figure 9",
            ["dataset", "query", "IC peak", "DR peak", "DI peak", "final"],
            [["wordnet", "Q1", 1000, 100, 100, 100]],
        ),
        "Figure 10": _table(
            "Figure 10",
            ["dataset", "query", "upper", "IC (ms)", "DR (ms)", "DI (ms)"],
            [
                ["dblp", "Q2", 1, 1.0, 1.0, 1.0],
                ["dblp", "Q2", 3, 50.0, 30.0, 30.0],
                ["dblp", "Q2", 5, 60.0, 35.0, 35.0],
            ],
        ),
        "Figure 11": _table(
            "Figure 11",
            ["dataset", "query", "upper", "BU (ms)", "IC (ms)", "DR (ms)", "DI (ms)"],
            [["dblp", "Q2", 3, "DNF", 50.0, 30.0, 30.0]],
        ),
        "Figure 14": _table(
            "Figure 14",
            ["dataset", "query", "lower", "avg check (ms)", "V_P checked", "passed"],
            [["wordnet", "Q2", 2, 1.5, 10, 10]],
        ),
        "Table 1": _table(
            "Table 1",
            ["dataset", "query", "delete e1 (ms)", "tighten e3 (ms)", "loosen e3 (ms)"],
            [["wordnet", "Q4", 100.0, 1.0, 500.0]],
        ),
        "Figure 16": _table(
            "Figure 16",
            ["dataset", "query+QFS", "IC", "DR", "DI"],
            [
                ["wordnet", "Q1S1", 100.0, 10.0, 10.0],
                ["wordnet", "Q1S3", 10.0, 10.0, 10.0],
            ],
        ),
    }


def test_all_claims_pass_on_synthetic_tables():
    verdicts = evaluate_claims(make_passing_tables())
    assert len(verdicts) == 9
    assert all(v.passed for v in verdicts), [
        (v.claim_id, v.detail) for v in verdicts if not v.passed
    ]


def test_missing_tables_yield_none():
    verdicts = evaluate_claims({})
    assert all(v.passed is None for v in verdicts)


def test_failing_claim_detected():
    tables = make_passing_tables()
    tables["Figure 5"] = _table(
        "Figure 5",
        ["query", "3-strategy SRT (ms)", "1-strategy SRT (ms)", "speedup", "|V_delta|"],
        [["Q1", 10.0, 1.0, 0.1, 5]],
    )
    verdicts = {v.claim_id: v for v in evaluate_claims(tables)}
    assert verdicts["C1"].passed is False
    assert verdicts["C2"].passed is True


def test_render_claims_marks():
    verdicts = [
        ClaimVerdict("C1", "Figure 5", "stmt", True, "d"),
        ClaimVerdict("C2", "Figure 6(a)", "stmt", False, "d"),
        ClaimVerdict("C3", "Figure 7", "stmt", None, "d"),
    ]
    text = render_claims(verdicts)
    assert "PASS" in text and "FAIL" in text
    assert text.count("|") > 10


def test_report_includes_verdicts():
    from repro.experiments.report import render_markdown

    tables = list(make_passing_tables().values())
    text = render_markdown(tables, "small")
    assert "## Claim verdicts" in text
    assert "PASS" in text
