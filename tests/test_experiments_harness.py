"""Tests for the experiment harness and registry."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    EXPERIMENT_REGISTRY,
    ExperimentTable,
    get_experiment,
    render_markdown,
    scale_settings,
    write_report,
)
from repro.experiments.exp3_strategies import exp3_overrides
from repro.experiments.exp4_upper_bound import exp4_plan
from repro.experiments.harness import average_sessions, run_bu, session_for


class TestRegistry:
    def test_all_registered(self):
        assert set(EXPERIMENT_REGISTRY) == {
            "exp1",
            "exp2",
            "exp3",
            "exp4",
            "exp5",
            "exp6",
            "exp7",
            "exp8",
            "exp9",
            "exp10",
        }

    def test_get_experiment(self):
        exp = get_experiment("exp3")
        assert exp.id == "exp3"
        assert "Figure 7" in exp.artifacts

    def test_unknown_rejected(self):
        with pytest.raises(ExperimentError):
            get_experiment("exp99")

    def test_every_paper_artifact_covered(self):
        artifacts = set()
        for cls in EXPERIMENT_REGISTRY.values():
            artifacts.update(cls.artifacts)
        for required in [
            "Figure 5",
            "Figure 6(a)",
            "Figure 6(b)",
            "Figure 7",
            "Figure 8",
            "Figure 9",
            "Figure 10",
            "Figure 11",
            "Figure 13",
            "Figure 14",
            "Table 1",
            "Figure 15",
            "Figure 16",
            "Figure 17",
        ]:
            assert required in artifacts, required


class TestScaleSettings:
    def test_tiny_and_small(self):
        tiny = scale_settings("tiny")
        small = scale_settings("small")
        assert tiny.bu_timeout_seconds < small.bu_timeout_seconds
        assert tiny.max_results <= small.max_results

    def test_unknown(self):
        with pytest.raises(ExperimentError):
            scale_settings("huge")


class TestMeasurementPrimitives:
    def test_average_sessions_keys(self, dblp_tiny):
        from repro.workload.generator import instantiate

        instance = instantiate("Q1", dblp_tiny.graph, dataset="dblp")
        out = average_sessions(
            dblp_tiny, instance, "DI", scale_settings("tiny"), repeats=1
        )
        assert set(out) >= {
            "srt",
            "cap_time",
            "cap_size",
            "cap_peak_size",
            "matches",
            "backlog",
            "deferred",
            "truncated",
        }
        assert out["srt"] >= 0
        assert out["cap_size"] > 0

    def test_run_bu(self, dblp_tiny):
        from repro.workload.generator import instantiate

        instance = instantiate("Q1", dblp_tiny.graph, dataset="dblp")
        result = run_bu(dblp_tiny, instance, scale_settings("tiny"))
        assert result.srt_seconds > 0

    def test_session_for_is_fresh(self, dblp_tiny):
        a = session_for(dblp_tiny)
        b = session_for(dblp_tiny)
        assert a is not b


class TestExperimentOverrides:
    def test_exp3_wordnet_overrides(self):
        assert exp3_overrides("wordnet", "Q1") == {1: 5, 2: 1}
        assert exp3_overrides("wordnet", "Q5") == {1: 4, 2: 1, 3: 1}
        assert exp3_overrides("wordnet", "Q6") == {1: 5, 5: 1, 6: 2}

    def test_exp3_flickr_overrides(self):
        assert exp3_overrides("flickr", "Q2") == {1: 5, 2: 5}
        assert exp3_overrides("flickr", "Q3") == {1: 5, 2: 5, 3: 1}

    def test_exp3_dblp_q5_exception(self):
        assert exp3_overrides("dblp", "Q5")[3] == 3
        assert exp3_overrides("dblp", "Q2") == exp3_overrides("flickr", "Q2")

    def test_exp4_plan(self):
        pinned, varied = exp4_plan("dblp", "Q2")
        assert pinned == {} and varied == (1, 2)
        pinned, varied = exp4_plan("flickr", "Q6")
        assert pinned == {4: 2, 5: 2, 6: 1} and varied == (1, 3)


class TestTablesAndReport:
    def make_table(self):
        return ExperimentTable(
            experiment="expX",
            artifact="Figure 0",
            title="demo",
            headers=["a", "b"],
            rows=[["x", 1.23456]],
            notes=["a note"],
        )

    def test_render_ascii(self):
        out = self.make_table().render()
        assert "Figure 0" in out and "note" in out

    def test_markdown(self):
        md = self.make_table().to_markdown()
        assert "| a | b |" in md
        assert "1.235" in md
        assert "*Note: a note*" in md

    def test_write_report(self, tmp_path):
        path = write_report([self.make_table()], "tiny", tmp_path / "R.md")
        text = path.read_text()
        assert "paper vs measured" in text
        assert "Figure 0" in text

    def test_render_markdown_groups_by_experiment(self):
        text = render_markdown([self.make_table()], "tiny")
        assert "## expX" in text
