"""Tests for the per-experiment instance builders (bounds wiring)."""

import pytest

from repro.core.query import Bounds
from repro.experiments.exp3_strategies import exp3_instance
from repro.experiments.exp4_upper_bound import UPPER_SWEEP, exp4_instance
from repro.experiments.exp5_lower_bound import exp5_instance
from repro.experiments.exp6_modification import exp6_instance
from tests.conftest import build_fig2_graph


@pytest.fixture(scope="module")
def graph():
    return build_fig2_graph()


class TestExp3Instances:
    def test_wordnet_q1_bounds(self, graph):
        inst = exp3_instance("wordnet", "Q1", graph)
        assert inst.bounds[0].upper == 5  # e1
        assert inst.bounds[1].upper == 1  # e2
        assert inst.tag == "exp3"

    def test_wordnet_q5_e1_is_4(self, graph):
        inst = exp3_instance("wordnet", "Q5", graph)
        assert inst.bounds[0].upper == 4
        assert inst.bounds[1].upper == 1
        assert inst.bounds[2].upper == 1

    def test_flickr_all_e1_e2_5(self, graph):
        for name in ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6"):
            inst = exp3_instance("flickr", name, graph)
            assert inst.bounds[0].upper == 5
            assert inst.bounds[1].upper == 5

    def test_q6_petal_overrides(self, graph):
        inst = exp3_instance("dblp", "Q6", graph)
        assert inst.bounds[4].upper == 1  # e5
        assert inst.bounds[5].upper == 2  # e6

    def test_lower_bounds_stay_valid(self, graph):
        for dataset in ("wordnet", "dblp", "flickr"):
            for name in ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6"):
                inst = exp3_instance(dataset, name, graph)
                for bounds in inst.bounds:
                    assert bounds.lower <= bounds.upper


class TestExp4Instances:
    def test_sweep_values(self):
        assert UPPER_SWEEP == (1, 3, 5, 10)

    def test_varied_edges_take_sweep_value(self, graph):
        inst = exp4_instance("dblp", "Q2", graph, upper=5)
        assert inst.bounds[0].upper == 5
        assert inst.bounds[1].upper == 5
        assert inst.tag == "u5"

    def test_pinned_edges_fixed(self, graph):
        inst = exp4_instance("flickr", "Q6", graph, upper=10)
        assert inst.bounds[3].upper == 2  # e4 pinned
        assert inst.bounds[4].upper == 2  # e5 pinned
        assert inst.bounds[5].upper == 1  # e6 pinned
        assert inst.bounds[0].upper == 10  # e1 varied
        assert inst.bounds[2].upper == 10  # e3 varied

    def test_q5_varies_e2_only(self, graph):
        inst = exp4_instance("dblp", "Q5", graph, upper=10)
        assert inst.bounds[1].upper == 10
        assert inst.bounds[2].upper == 1
        assert inst.bounds[3].upper == 2


class TestExp5Instances:
    @pytest.mark.parametrize("lower", [1, 2, 3])
    def test_all_edges_get_lower(self, graph, lower):
        inst = exp5_instance("wordnet", "Q2", graph, lower=lower)
        for bounds in inst.bounds:
            assert bounds.lower == lower
            assert bounds.upper >= lower + 1


class TestExp6Instances:
    def test_base_bounds_all_1_2(self, graph):
        inst = exp6_instance("wordnet", "Q6", graph)
        assert all(b == Bounds(1, 2) for b in inst.bounds)
        assert inst.tag == "mod"
