"""End-to-end experiment-module runs at tiny scale (fast ones only).

The heavy experiments are exercised by the benchmark suite; here we run
the cheapest experiment through the module API and the CLI to pin the
plumbing (table structure, report writing).
"""

import pytest

from repro.experiments import get_experiment
from repro.experiments.__main__ import main


@pytest.fixture(scope="module")
def exp9_tables():
    return get_experiment("exp9").run(scale="tiny")


class TestExp9Run:
    def test_one_table(self, exp9_tables):
        assert len(exp9_tables) == 1
        table = exp9_tables[0]
        assert table.experiment == "exp9"
        assert table.headers[0] == "strategy"

    def test_covers_all_strategies_and_speeds(self, exp9_tables):
        rows = exp9_tables[0].rows
        strategies = {row[0] for row in rows}
        speeds = {row[1] for row in rows}
        assert strategies == {"IC", "DR", "DI"}
        assert speeds == {0.5, 1.0, 2.0}
        assert len(rows) == 9

    def test_min_le_mean_le_max(self, exp9_tables):
        for row in exp9_tables[0].rows:
            _, _, mean, low, high = row
            assert low <= mean <= high

    def test_render_and_markdown(self, exp9_tables):
        table = exp9_tables[0]
        assert "User panel" in table.render()
        assert "| strategy |" in table.to_markdown()


class TestCLIRun:
    def test_run_with_report(self, tmp_path, capsys):
        out = tmp_path / "mini.md"
        code = main(["run", "exp9", "--scale", "tiny", "--out", str(out)])
        assert code == 0
        text = out.read_text()
        assert "paper vs measured" in text
        assert "exp9" in text
        printed = capsys.readouterr().out
        assert "User panel" in printed
