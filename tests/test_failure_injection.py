"""Failure injection: errors surface cleanly, no silent corruption."""

import pytest

from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.core.context import EngineContext
from repro.core.cost import CostModel
from repro.indexing.pml import PrunedLandmarkLabeling
from repro.indexing.twohop import two_hop_counts
from tests.conftest import build_fig2_graph


class FlakyOracle:
    """Distance oracle that fails after N successful queries."""

    def __init__(self, inner, fail_after: int) -> None:
        self.inner = inner
        self.remaining = fail_after

    def _tick(self):
        if self.remaining <= 0:
            raise RuntimeError("injected oracle failure")
        self.remaining -= 1

    def distance(self, u, v):
        self._tick()
        return self.inner.distance(u, v)

    def within(self, u, v, upper):
        self._tick()
        return self.inner.within(u, v, upper)


def make_ctx(fail_after=10**9):
    graph = build_fig2_graph()
    pml = PrunedLandmarkLabeling.build(graph)
    return EngineContext(
        graph=graph,
        oracle=FlakyOracle(pml, fail_after),
        two_hop=two_hop_counts(graph),
        cost_model=CostModel(t_avg=1e-6, t_lat=10.0),
    )


def test_oracle_failure_propagates_from_large_upper_search():
    ctx = make_ctx(fail_after=3)
    boomer = Boomer(ctx, strategy="IC")
    boomer.apply(NewVertex(0, "A"))
    boomer.apply(NewVertex(1, "B"))
    with pytest.raises(RuntimeError, match="injected"):
        boomer.apply(NewEdge(0, 1, 1, 3))  # all-pairs PML path


def test_failure_leaves_no_processed_mark():
    ctx = make_ctx(fail_after=3)
    boomer = Boomer(ctx, strategy="IC")
    boomer.apply(NewVertex(0, "A"))
    boomer.apply(NewVertex(1, "B"))
    try:
        boomer.apply(NewEdge(0, 1, 1, 3))
    except RuntimeError:
        pass
    # The failed edge must not be marked processed: enumeration would
    # otherwise silently use a half-populated AIVS.
    assert not boomer.cap.is_processed(0, 1)
    with pytest.raises(Exception):
        boomer.apply(Run())  # either enumeration guard or another failure


def test_recovery_with_fresh_engine_same_context_graph():
    """A failure poisons only that session; the shared graph/preprocessing
    is immutable and a fresh engine with a healthy oracle succeeds."""
    graph = build_fig2_graph()
    pml = PrunedLandmarkLabeling.build(graph)
    healthy = EngineContext(
        graph=graph,
        oracle=pml,
        two_hop=two_hop_counts(graph),
        cost_model=CostModel(t_avg=1e-6, t_lat=10.0),
    )
    boomer = Boomer(healthy, strategy="IC")
    boomer.apply(NewVertex(0, "A"))
    boomer.apply(NewVertex(1, "B"))
    boomer.apply(NewEdge(0, 1, 1, 3))
    boomer.apply(Run())
    assert boomer.run_result.num_matches > 0


def test_failure_during_lower_bound_check():
    ctx = make_ctx()
    boomer = Boomer(ctx, strategy="IC")
    boomer.apply(NewVertex(0, "A"))
    boomer.apply(NewVertex(1, "C"))
    boomer.apply(NewEdge(0, 1, 1, 3))
    boomer.apply(Run())
    ctx.oracle.remaining = 1  # fail during DetectPath's guided search
    match = boomer.run_result.matches.matches[0]
    with pytest.raises(RuntimeError, match="injected"):
        boomer.visualize(match)
