"""Failure injection through :mod:`repro.faults`: no silent corruption.

The contract under test is the resilience trichotomy: a session driven
under *any* seeded :class:`FaultPlan` with a resilience config attached
either (a) completes on the CAP path with the fault-free match set,
(b) degrades to the BU baseline with the *identical* match set, or
(c) raises a typed error (:class:`ResilienceError` subclass, or the raw
:class:`InjectedFaultError` when resilience is off) — it never returns
silently wrong matches.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.core.preprocessor import make_context, preprocess
from repro.errors import ResilienceError, RetryExhaustedError
from repro.faults import (
    CAPCorruptionSpec,
    FaultPlan,
    FaultyOracle,
    InjectedFaultError,
    OracleFaultSpec,
)
from repro.gui.session import VisualSession
from repro.resilience import ResilienceConfig
from tests.conftest import build_fig2_graph


@pytest.fixture(scope="module")
def pre():
    return preprocess(build_fig2_graph(), t_avg_samples=100)


def make_ctx(pre, plan: FaultPlan | None = None):
    ctx = make_context(pre)
    return plan.wrap_context(ctx) if plan is not None else ctx


def triangle_actions():
    """Fig. 2 triangle; the upper-3 edge routes PVS through the oracle."""
    return [
        NewVertex(0, "A", latency_after=0.002),
        NewVertex(1, "B", latency_after=0.002),
        NewEdge(0, 1, 1, 1, latency_after=0.002),
        NewVertex(2, "C", latency_after=0.002),
        NewEdge(1, 2, 1, 2, latency_after=0.002),
        NewEdge(0, 2, 1, 3, latency_after=0.002),
        Run(),
    ]


def match_set(matches):
    return sorted(tuple(sorted(m.items())) for m in matches)


@pytest.fixture(scope="module")
def clean_matches(pre):
    boomer = Boomer(make_ctx(pre), strategy="IC")
    for action in triangle_actions():
        boomer.apply(action)
    return match_set(boomer.run_result.matches)


# ---------------------------------------------------------------------------
# Without resilience: injected faults surface raw, but never corrupt state
# ---------------------------------------------------------------------------
class TestUnprotected:
    def test_oracle_failure_propagates_from_large_upper_search(self, pre):
        plan = FaultPlan(seed=1, oracle=OracleFaultSpec(fail_after=0))
        boomer = Boomer(make_ctx(pre, plan), strategy="IC")
        boomer.apply(NewVertex(0, "A"))
        boomer.apply(NewVertex(1, "B"))
        with pytest.raises(InjectedFaultError, match="injected"):
            boomer.apply(NewEdge(0, 1, 1, 3))  # all-pairs PML path

    def test_failure_leaves_no_processed_mark(self, pre):
        plan = FaultPlan(seed=1, oracle=OracleFaultSpec(fail_after=0))
        boomer = Boomer(make_ctx(pre, plan), strategy="IC")
        boomer.apply(NewVertex(0, "A"))
        boomer.apply(NewVertex(1, "B"))
        with pytest.raises(InjectedFaultError):
            boomer.apply(NewEdge(0, 1, 1, 3))
        # The failed edge must not be marked processed: enumeration would
        # otherwise silently use a half-populated AIVS.
        assert not boomer.cap.is_processed(0, 1)
        with pytest.raises(Exception):
            boomer.apply(Run())  # either enumeration guard or another failure

    def test_recovery_with_fresh_engine_same_context_graph(self, pre, clean_matches):
        """A failure poisons only that session; a fresh engine with a
        healthy oracle over the same preprocessing succeeds."""
        boomer = Boomer(make_ctx(pre), strategy="IC")
        for action in triangle_actions():
            boomer.apply(action)
        assert match_set(boomer.run_result.matches) == clean_matches

    def test_failure_during_lower_bound_check(self, pre):
        boomer = Boomer(make_ctx(pre), strategy="IC")
        boomer.apply(NewVertex(0, "A"))
        boomer.apply(NewVertex(1, "C"))
        boomer.apply(NewEdge(0, 1, 1, 3))
        boomer.apply(Run())
        # Swap in an already-dead oracle: DetectPath's guided search fails.
        boomer._result_ctx = make_ctx(
            pre, FaultPlan(seed=1, oracle=OracleFaultSpec(fail_after=0))
        )
        match = boomer.run_result.matches.matches[0]
        with pytest.raises(InjectedFaultError, match="injected"):
            boomer.visualize(match)


# ---------------------------------------------------------------------------
# With resilience: the session survives and the answers never change
# ---------------------------------------------------------------------------
class TestProtected:
    def test_transient_faults_retry_to_clean_result(self, pre, clean_matches):
        plan = FaultPlan(
            seed=5, oracle=OracleFaultSpec(transient_rate=0.4, transient_burst=1)
        )
        boomer = Boomer(
            make_ctx(pre, plan), strategy="DI", resilience=ResilienceConfig.default()
        )
        for action in triangle_actions():
            boomer.apply(action)
        assert not boomer.run_result.degraded
        assert match_set(boomer.run_result.matches) == clean_matches

    def test_permanent_death_degrades_to_identical_matches(self, pre, clean_matches):
        plan = FaultPlan(seed=5, oracle=OracleFaultSpec(fail_after=0))
        boomer = Boomer(
            make_ctx(pre, plan), strategy="DI", resilience=ResilienceConfig.default()
        )
        for action in triangle_actions():
            boomer.apply(action)
        run = boomer.run_result
        assert run.degraded and run.fallback == "bu-bfs"
        assert "RetryExhaustedError" in run.degradation_reason
        assert match_set(run.matches) == clean_matches
        # Result generation must survive the dead oracle too.
        assert boomer.results()  # lower=1 bounds: every match validates

    def test_dead_oracle_fails_over_during_result_generation(self, pre):
        """Oracle dies *after* Run: visualize() swaps to a BFS oracle."""
        # CAP construction needs only ~2 oracle calls for this query;
        # result generation needs dozens, so the death lands there.
        plan = FaultPlan(seed=5, oracle=OracleFaultSpec(fail_after=10))
        ctx = make_ctx(pre, plan)
        boomer = Boomer(ctx, strategy="IC", resilience=ResilienceConfig.default())
        for action in triangle_actions():
            boomer.apply(action)
        assert not boomer.run_result.degraded
        results = boomer.results()
        assert results
        assert not isinstance(boomer._result_ctx.oracle, FaultyOracle)

    def test_strict_config_raises_typed_error(self, pre):
        plan = FaultPlan(seed=5, oracle=OracleFaultSpec(fail_after=0))
        boomer = Boomer(
            make_ctx(pre, plan), strategy="IC", resilience=ResilienceConfig.strict()
        )
        boomer.apply(NewVertex(0, "A"))
        boomer.apply(NewVertex(1, "B"))
        with pytest.raises(RetryExhaustedError):
            boomer.apply(NewEdge(0, 1, 1, 3))


# ---------------------------------------------------------------------------
# Property: the trichotomy holds for arbitrary seeded fault plans
# ---------------------------------------------------------------------------
oracle_specs = st.one_of(
    st.none(),
    st.builds(
        OracleFaultSpec,
        transient_rate=st.sampled_from([0.0, 0.2, 0.6]),
        transient_burst=st.integers(min_value=1, max_value=3),
        fail_after=st.one_of(st.none(), st.integers(min_value=0, max_value=8)),
    ),
)
cap_specs = st.one_of(
    st.none(),
    st.builds(
        CAPCorruptionSpec,
        drop_pair_count=st.integers(min_value=0, max_value=2),
        bogus_pair_count=st.integers(min_value=0, max_value=2),
        drop_candidate_count=st.integers(min_value=0, max_value=2),
    ),
)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    oracle=oracle_specs,
    cap=cap_specs,
    strategy=st.sampled_from(["IC", "DR", "DI"]),
)
def test_session_is_never_silently_wrong(pre, clean_matches, seed, oracle, cap, strategy):
    plan = FaultPlan(seed=seed, oracle=oracle, cap=cap)
    session = VisualSession(
        make_context(pre),
        resilience=ResilienceConfig.default(),
        fault_plan=plan,
    )
    try:
        result = session.run_actions(triangle_actions(), strategy=strategy)
    except ResilienceError:
        return  # typed failure: acceptable outcome, nothing silently wrong
    # Completed (CAP path or degraded BU): the matches must be the
    # fault-free answer either way.
    assert match_set(result.run.matches) == clean_matches
    if result.degraded:
        assert result.fallback in ("bu-oracle", "bu-bfs")
