"""Tests for the seeded fault-injection harness (:mod:`repro.faults`)."""

import pytest

from repro.core.actions import NewEdge, NewVertex
from repro.core.blender import Boomer
from repro.core.cost import GUILatencyConstants
from repro.core.preprocessor import make_context, preprocess
from repro.errors import ReproError
from repro.faults import (
    CAPCorruptionSpec,
    CAPCorruptor,
    FaultPlan,
    FaultyLatencyModel,
    FaultyOracle,
    GUIFaultSpec,
    InjectedFaultError,
    OracleFaultSpec,
)
from repro.gui.latency import LatencyModel
from tests.conftest import build_fig2_graph


@pytest.fixture(scope="module")
def pre():
    return preprocess(build_fig2_graph(), t_avg_samples=100)


class TestFaultPlan:
    def test_null_plan_is_identity(self, pre):
        plan = FaultPlan()
        assert plan.is_null
        ctx = make_context(pre)
        assert plan.wrap_context(ctx) is ctx
        assert plan.wrap_oracle(ctx.oracle) is ctx.oracle
        model = LatencyModel(GUILatencyConstants())
        assert plan.wrap_latency_model(model) is model
        assert plan.corrupt_cap(None) is None  # cap never touched

    def test_json_round_trip_string(self):
        plan = FaultPlan(
            seed=42,
            oracle=OracleFaultSpec(transient_rate=0.25, fail_after=10),
            gui=GUIFaultSpec(drop_rate=0.1, spike_factor=5.0),
            cap=CAPCorruptionSpec(bogus_pair_count=2),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_json_round_trip_file(self, tmp_path):
        plan = FaultPlan(seed=7, oracle=OracleFaultSpec(fail_after=3))
        path = tmp_path / "plan.json"
        plan.to_json(path)
        assert FaultPlan.from_json(path) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(ReproError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"seed": 1, "disk": {}})
        with pytest.raises(ReproError, match="unknown oracle fault-spec keys"):
            FaultPlan.from_dict({"oracle": {"explode_rate": 1.0}})

    def test_invalid_json_rejected(self):
        with pytest.raises(ReproError, match="invalid fault-plan JSON"):
            FaultPlan.from_json("{not json")

    def test_component_seeds_are_independent(self, pre):
        """Toggling GUI faults must not shift the oracle's fault schedule."""
        spec = OracleFaultSpec(transient_rate=0.5)
        base = FaultPlan(seed=9, oracle=spec)
        with_gui = FaultPlan(seed=9, oracle=spec, gui=GUIFaultSpec(drop_rate=0.5))

        def schedule(plan):
            oracle = plan.wrap_oracle(make_context(pre).oracle)
            outcomes = []
            for _ in range(50):
                try:
                    oracle.distance(0, 1)
                    outcomes.append("ok")
                except InjectedFaultError:
                    outcomes.append("fault")
            return outcomes

        assert schedule(base) == schedule(with_gui)


class TestFaultyOracle:
    def test_permanent_death(self, pre):
        oracle = FaultyOracle(make_context(pre).oracle, OracleFaultSpec(fail_after=2))
        assert oracle.distance(0, 1) >= 0
        assert oracle.within(0, 1, 3) in (True, False)
        with pytest.raises(InjectedFaultError, match="permanently down"):
            oracle.distance(0, 1)
        with pytest.raises(InjectedFaultError):  # stays dead
            oracle.within(0, 1, 3)
        assert oracle.calls == 4 and oracle.faults_injected == 2

    def test_transient_burst_length(self, pre):
        # rate 1.0: the first call faults and opens a burst of exactly 3.
        spec = OracleFaultSpec(transient_rate=1.0, transient_burst=3)
        oracle = FaultyOracle(make_context(pre).oracle, spec, seed=1)
        failures = 0
        for _ in range(3):
            with pytest.raises(InjectedFaultError):
                oracle.distance(0, 1)
            failures += 1
        assert failures == 3

    def test_same_seed_same_schedule(self, pre):
        spec = OracleFaultSpec(transient_rate=0.4)
        inner = make_context(pre).oracle

        def run(seed):
            oracle = FaultyOracle(inner, spec, seed=seed)
            out = []
            for _ in range(40):
                try:
                    oracle.distance(0, 1)
                    out.append(True)
                except InjectedFaultError:
                    out.append(False)
            return out

        assert run(5) == run(5)
        assert run(5) != run(6)  # and the seed actually matters

    def test_schedule_isolated_from_global_rng(self, pre):
        """R1 regression: injectors must not touch the ambient ``random``.

        Re-seeding (or draining) the process-global generator between runs
        must leave the fault schedule byte-identical — the injectors draw
        only from their own ``seeded_rng`` instance.
        """
        import random as global_random

        spec = OracleFaultSpec(transient_rate=0.4)
        inner = make_context(pre).oracle

        def run():
            oracle = FaultyOracle(inner, spec, seed=11)
            out = []
            for _ in range(40):
                try:
                    oracle.distance(0, 1)
                    out.append(True)
                except InjectedFaultError:
                    out.append(False)
            return out

        global_random.seed(1)
        first = run()
        global_random.seed(999)
        global_random.random()  # perturb ambient state between runs
        assert run() == first


class TestFaultyLatencyModel:
    def test_drop_and_spike_are_seeded(self):
        spec = GUIFaultSpec(drop_rate=0.3, spike_rate=0.3, spike_factor=10.0)
        constants = GUILatencyConstants()

        def run(seed):
            # Fresh inner model each run: the model itself is stateful.
            faulty = FaultyLatencyModel(
                LatencyModel(constants, seed=0), spec, seed=seed
            )
            return [faulty.vertex_time() for _ in range(30)]

        assert run(3) == run(3)
        values = run(3)
        assert 0.0 in values  # drops happened
        assert max(values) > constants.t_vertex * 5  # spikes happened

    def test_all_steps_perturbed(self):
        faulty = FaultyLatencyModel(
            LatencyModel(GUILatencyConstants()), GUIFaultSpec(drop_rate=1.0), seed=0
        )
        assert faulty.vertex_time() == 0.0
        assert faulty.edge_time(default_bounds=True) == 0.0
        assert faulty.modify_time() == 0.0
        assert faulty.run_click_time() == 0.0
        assert faulty.drops_injected == 4


class TestCAPCorruptor:
    def _built_cap(self, pre):
        boomer = Boomer(make_context(pre), strategy="IC")
        boomer.apply(NewVertex(0, "A"))
        boomer.apply(NewVertex(1, "B"))
        boomer.apply(NewEdge(0, 1, 1, 2))
        boomer.apply(NewVertex(2, "C"))
        boomer.apply(NewEdge(1, 2, 1, 2))
        return boomer

    def test_each_mode_reports_damage(self, pre):
        boomer = self._built_cap(pre)
        spec = CAPCorruptionSpec(
            drop_pair_count=1, bogus_pair_count=1, drop_candidate_count=1
        )
        report = CAPCorruptor(spec, seed=3).corrupt(boomer.cap)
        assert len(report.dropped_pairs) == 1
        assert len(report.bogus_pairs) == 1
        assert len(report.dropped_candidates) == 1
        assert report.total == 3

    def test_corruption_is_detectable(self, pre):
        """Every damage mode must violate an audited invariant."""
        for spec in (
            CAPCorruptionSpec(drop_pair_count=1),
            CAPCorruptionSpec(bogus_pair_count=1),
            CAPCorruptionSpec(drop_candidate_count=1),
        ):
            boomer = self._built_cap(pre)
            report = CAPCorruptor(spec, seed=3).corrupt(boomer.cap)
            assert report.total == 1
            issues = boomer.cap.integrity_issues(boomer.query)
            assert issues, f"{spec} was not detected structurally"

    def test_same_seed_same_damage(self, pre):
        spec = CAPCorruptionSpec(drop_pair_count=2, bogus_pair_count=2)
        reports = []
        for _ in range(2):
            boomer = self._built_cap(pre)
            reports.append(CAPCorruptor(spec, seed=11).corrupt(boomer.cap))
        assert reports[0].dropped_pairs == reports[1].dropped_pairs
        assert reports[0].bogus_pairs == reports[1].bogus_pairs
