"""Tests for repro.graph.algorithms."""

import pytest

from repro.graph.algorithms import (
    bfs_distances,
    connected_components,
    distance,
    has_path_within,
    k_hop_neighborhood,
    largest_component,
    region_around,
    shortest_path,
)
from repro.graph.builder import GraphBuilder
from tests.conftest import build_cycle_graph, build_fig2_graph, build_path_graph


@pytest.fixture()
def two_components():
    b = GraphBuilder()
    b.add_vertices("abcde")
    b.add_edge(0, 1)
    b.add_edge(1, 2)
    b.add_edge(3, 4)
    return b.build()


class TestBFSDistances:
    def test_path_graph(self):
        g = build_path_graph(5)
        assert list(bfs_distances(g, 0)) == [0, 1, 2, 3, 4]

    def test_unreachable_is_minus_one(self, two_components):
        d = bfs_distances(two_components, 0)
        assert d[3] == -1 and d[4] == -1

    def test_cutoff(self):
        g = build_path_graph(6)
        d = bfs_distances(g, 0, cutoff=2)
        assert list(d) == [0, 1, 2, -1, -1, -1]

    def test_cycle_symmetry(self):
        g = build_cycle_graph(6)
        d = bfs_distances(g, 0)
        assert list(d) == [0, 1, 2, 3, 2, 1]


class TestDistance:
    def test_self_distance(self):
        assert distance(build_path_graph(3), 1, 1) == 0

    def test_matches_bfs(self):
        g = build_fig2_graph()
        for u in range(g.num_vertices):
            vec = bfs_distances(g, u)
            for v in range(g.num_vertices):
                assert distance(g, u, v) == int(vec[v])

    def test_unreachable(self, two_components):
        assert distance(two_components, 0, 4) == -1

    def test_cutoff_limits_search(self):
        g = build_path_graph(10)
        assert distance(g, 0, 9, cutoff=3) == -1
        assert distance(g, 0, 3, cutoff=3) == 3


class TestKHop:
    def test_one_hop(self):
        g = build_path_graph(5)
        assert k_hop_neighborhood(g, 2, 1) == {1, 3}

    def test_two_hop(self):
        g = build_path_graph(5)
        assert k_hop_neighborhood(g, 2, 2) == {0, 1, 3, 4}

    def test_zero_hop_empty(self):
        assert k_hop_neighborhood(build_path_graph(3), 0, 0) == set()

    def test_excludes_source(self):
        g = build_cycle_graph(4)
        assert 0 not in k_hop_neighborhood(g, 0, 2)


class TestComponents:
    def test_single_component(self):
        assert len(connected_components(build_cycle_graph(5))) == 1

    def test_two_components_sorted_by_size(self, two_components):
        comps = connected_components(two_components)
        assert len(comps) == 2
        assert len(comps[0]) == 3
        assert len(comps[1]) == 2

    def test_largest_component(self, two_components):
        g = largest_component(two_components)
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_covers_all_vertices(self):
        g = build_fig2_graph()
        comps = connected_components(g)
        assert sorted(v for comp in comps for v in comp) == list(range(g.num_vertices))


class TestShortestPath:
    def test_trivial(self):
        assert shortest_path(build_path_graph(3), 1, 1) == [1]

    def test_path_found(self):
        g = build_path_graph(5)
        assert shortest_path(g, 0, 4) == [0, 1, 2, 3, 4]

    def test_no_path(self, two_components):
        assert shortest_path(two_components, 0, 3) is None

    def test_length_matches_distance(self):
        g = build_fig2_graph()
        for u in range(g.num_vertices):
            for v in range(g.num_vertices):
                p = shortest_path(g, u, v)
                d = distance(g, u, v)
                if d < 0:
                    assert p is None
                else:
                    assert p is not None
                    assert len(p) - 1 == d
                    # consecutive vertices must be adjacent
                    for a, b in zip(p, p[1:]):
                        assert g.has_edge(a, b)


class TestHasPathWithin:
    def test_simple_edge(self):
        g = build_path_graph(3)
        assert has_path_within(g, 0, 1, 1, 1)

    def test_lower_bound_excludes_short(self):
        g = build_path_graph(3)
        assert not has_path_within(g, 0, 1, 2, 3)  # only path has length 1

    def test_cycle_gives_detour(self):
        g = build_cycle_graph(5)
        # adjacent vertices also joined by the 4-long way around
        assert has_path_within(g, 0, 1, 2, 4)
        assert not has_path_within(g, 0, 1, 2, 3)

    def test_same_vertex_rejected(self):
        g = build_cycle_graph(4)
        assert not has_path_within(g, 0, 0, 1, 4)

    def test_upper_cuts_off(self):
        g = build_path_graph(6)
        assert not has_path_within(g, 0, 5, 1, 4)
        assert has_path_within(g, 0, 5, 1, 5)

    def test_invalid_bounds(self):
        g = build_path_graph(3)
        assert not has_path_within(g, 0, 2, 3, 2)


class TestRegionAround:
    def test_zero_radius(self):
        g = build_fig2_graph()
        region, mapping = region_around(g, [1, 4], radius=0)
        assert region.num_vertices == 2
        assert set(mapping) == {1, 4}

    def test_radius_one_includes_halo(self):
        g = build_path_graph(5)
        region, mapping = region_around(g, [2], radius=1)
        assert set(mapping) == {2, 1, 3}
        assert region.num_edges == 2

    def test_core_vertices_first(self):
        g = build_path_graph(5)
        _, mapping = region_around(g, [3], radius=1)
        assert mapping[3] == 0  # core comes first in the region ids

    def test_mapping_consistent_with_labels(self):
        g = build_fig2_graph()
        region, mapping = region_around(g, [11], radius=1)
        for orig, new in mapping.items():
            assert region.label(new) == g.label(orig)
