"""Tests for repro.graph.builder."""

import pytest

from repro.errors import GraphBuildError, VertexNotFoundError
from repro.graph.builder import GraphBuilder


class TestAddVertex:
    def test_ids_dense(self):
        b = GraphBuilder()
        assert b.add_vertex("A") == 0
        assert b.add_vertex("B") == 1

    def test_none_label_rejected(self):
        with pytest.raises(GraphBuildError):
            GraphBuilder().add_vertex(None)

    def test_add_vertices_order(self):
        b = GraphBuilder()
        assert b.add_vertices(["x", "y", "z"]) == [0, 1, 2]

    def test_counts(self):
        b = GraphBuilder()
        b.add_vertices("abc")
        assert b.num_vertices == 3
        assert b.num_edges == 0


class TestAddEdge:
    def test_self_loop_rejected(self):
        b = GraphBuilder()
        b.add_vertex("A")
        with pytest.raises(GraphBuildError):
            b.add_edge(0, 0)

    def test_duplicate_rejected_both_directions(self):
        b = GraphBuilder()
        b.add_vertices("ab")
        b.add_edge(0, 1)
        with pytest.raises(GraphBuildError):
            b.add_edge(0, 1)
        with pytest.raises(GraphBuildError):
            b.add_edge(1, 0)

    def test_unknown_endpoint(self):
        b = GraphBuilder()
        b.add_vertex("A")
        with pytest.raises(VertexNotFoundError):
            b.add_edge(0, 5)

    def test_add_edge_if_absent(self):
        b = GraphBuilder()
        b.add_vertices("ab")
        assert b.add_edge_if_absent(0, 1) is True
        assert b.add_edge_if_absent(1, 0) is False  # duplicate
        assert b.add_edge_if_absent(0, 0) is False  # self loop
        assert b.num_edges == 1

    def test_has_edge(self):
        b = GraphBuilder()
        b.add_vertices("ab")
        assert not b.has_edge(0, 1)
        b.add_edge(0, 1)
        assert b.has_edge(0, 1)
        assert b.has_edge(1, 0)


class TestBuild:
    def test_roundtrip_structure(self):
        b = GraphBuilder("g")
        b.add_vertices(["A", "B", "C"])
        b.add_edge(0, 2)
        b.add_edge(2, 1)
        g = b.build()
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.has_edge(0, 2)
        assert g.has_edge(1, 2)
        assert not g.has_edge(0, 1)
        assert g.name == "g"

    def test_empty_graph(self):
        g = GraphBuilder().build()
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_isolated_vertices(self):
        b = GraphBuilder()
        b.add_vertices("abc")
        g = b.build()
        assert g.num_edges == 0
        assert all(g.degree(v) == 0 for v in range(3))

    def test_adjacency_sorted_after_build(self):
        b = GraphBuilder()
        b.add_vertices("abcde")
        for w in (4, 2, 3, 1):
            b.add_edge(0, w)
        g = b.build()
        assert list(g.neighbors(0)) == [1, 2, 3, 4]

    def test_build_is_repeatable(self):
        b = GraphBuilder()
        b.add_vertices("ab")
        b.add_edge(0, 1)
        assert b.build() == b.build()


def test_repr():
    b = GraphBuilder("named")
    b.add_vertices("ab")
    assert "named" in repr(b)
