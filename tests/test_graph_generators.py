"""Tests for repro.graph.generators."""

import pytest

from repro.errors import GraphBuildError
from repro.graph.generators import (
    WORDNET_LABELS,
    assign_labels_uniform,
    assign_labels_zipf,
    barabasi_albert,
    dblp_like,
    erdos_renyi,
    flickr_like,
    watts_strogatz,
    wordnet_like,
)
from repro.graph.algorithms import connected_components


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = erdos_renyi(50, 100, seed=1)
        assert g.num_vertices == 50
        assert g.num_edges == 100

    def test_deterministic(self):
        assert erdos_renyi(30, 40, seed=5) == erdos_renyi(30, 40, seed=5)

    def test_seed_changes_graph(self):
        assert erdos_renyi(30, 40, seed=5) != erdos_renyi(30, 40, seed=6)

    def test_too_many_edges_rejected(self):
        with pytest.raises(GraphBuildError):
            erdos_renyi(4, 10, seed=0)

    def test_negative_rejected(self):
        with pytest.raises(GraphBuildError):
            erdos_renyi(-1, 0)

    def test_custom_labels(self):
        g = erdos_renyi(3, 1, seed=0, labels=["x", "y", "z"])
        assert g.labels() == ["x", "y", "z"]


class TestBarabasiAlbert:
    def test_sizes(self):
        g = barabasi_albert(200, 2, seed=3)
        assert g.num_vertices == 200
        # each vertex beyond the seed path adds exactly m edges
        assert g.num_edges == 2 + (200 - 3) * 2

    def test_heavy_tail(self):
        g = barabasi_albert(500, 2, seed=3)
        degrees = sorted(g.degree_array())
        assert degrees[-1] > 5 * (2 * g.num_edges / g.num_vertices)

    def test_connected(self):
        g = barabasi_albert(100, 1, seed=2)
        assert len(connected_components(g)) == 1

    def test_parameter_validation(self):
        with pytest.raises(GraphBuildError):
            barabasi_albert(5, 0)
        with pytest.raises(GraphBuildError):
            barabasi_albert(2, 2)

    def test_deterministic(self):
        assert barabasi_albert(50, 2, seed=9) == barabasi_albert(50, 2, seed=9)


class TestWattsStrogatz:
    def test_sizes(self):
        g = watts_strogatz(100, 4, 0.1, seed=1)
        assert g.num_vertices == 100
        assert g.num_edges > 150  # ~2 per vertex, some rewires may collide

    def test_zero_beta_is_lattice(self):
        g = watts_strogatz(20, 2, 0.0, seed=0)
        for v in range(20):
            assert g.has_edge(v, (v + 1) % 20)

    def test_validation(self):
        with pytest.raises(GraphBuildError):
            watts_strogatz(10, 3, 0.1)  # odd k
        with pytest.raises(GraphBuildError):
            watts_strogatz(10, 2, 1.5)  # beta out of range
        with pytest.raises(GraphBuildError):
            watts_strogatz(2, 2, 0.1)  # n <= k


class TestLabelAssignment:
    def test_uniform_range_and_determinism(self):
        labels = assign_labels_uniform(1000, 10, seed=4)
        assert set(labels) <= set(range(10))
        assert labels == assign_labels_uniform(1000, 10, seed=4)

    def test_zipf_weights_respected(self):
        labels = assign_labels_zipf(5000, ["a", "b"], [0.9, 0.1], seed=1)
        share_a = labels.count("a") / len(labels)
        assert 0.85 < share_a < 0.95

    def test_zipf_mismatched_lengths(self):
        with pytest.raises(GraphBuildError):
            assign_labels_zipf(10, ["a"], [0.5, 0.5])


class TestDatasetEmulators:
    def test_wordnet_density_and_labels(self):
        g = wordnet_like(800, seed=7)
        assert g.distinct_labels() <= set(WORDNET_LABELS)
        ratio = g.num_edges / g.num_vertices
        assert 1.2 < ratio < 1.8
        # nouns dominate
        assert g.label_frequency("n") > 0.5

    def test_wordnet_connected(self):
        g = wordnet_like(500, seed=7)
        assert len(connected_components(g)) == 1

    def test_wordnet_name(self):
        assert wordnet_like(300, seed=1).name == "wordnet-like"

    def test_dblp_density_and_labels(self):
        g = dblp_like(800, seed=2, num_labels=20)
        assert len(g.distinct_labels()) <= 20
        ratio = g.num_edges / g.num_vertices
        assert 3.0 < ratio < 4.0

    def test_flickr_density(self):
        g = flickr_like(800, seed=3, num_labels=40)
        ratio = g.num_edges / g.num_vertices
        assert 7.0 < ratio < 9.0

    def test_emulators_deterministic(self):
        assert wordnet_like(300, seed=5) == wordnet_like(300, seed=5)
        assert dblp_like(300, seed=5, num_labels=8) == dblp_like(300, seed=5, num_labels=8)

    def test_too_small_rejected(self):
        with pytest.raises(GraphBuildError):
            wordnet_like(2)
