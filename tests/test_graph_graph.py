"""Tests for repro.graph.graph (the CSR Graph class)."""

import numpy as np
import pytest

from repro.errors import VertexNotFoundError
from repro.graph.builder import GraphBuilder
from tests.conftest import build_cycle_graph, build_fig2_graph, build_path_graph


@pytest.fixture()
def triangle():
    b = GraphBuilder("tri")
    b.add_vertices(["A", "B", "B"])
    b.add_edge(0, 1)
    b.add_edge(1, 2)
    b.add_edge(0, 2)
    return b.build()


class TestBasicAccessors:
    def test_sizes(self, triangle):
        assert triangle.num_vertices == 3
        assert triangle.num_edges == 3
        assert len(triangle) == 3

    def test_degree(self, triangle):
        assert [triangle.degree(v) for v in range(3)] == [2, 2, 2]

    def test_path_degrees(self):
        g = build_path_graph(4)
        assert [g.degree(v) for v in range(4)] == [1, 2, 2, 1]

    def test_neighbors_sorted(self):
        g = build_fig2_graph()
        for v in g.iter_vertices():
            nbrs = g.neighbors(v)
            assert list(nbrs) == sorted(nbrs)

    def test_labels(self, triangle):
        assert triangle.label(0) == "A"
        assert triangle.label(2) == "B"
        assert triangle.labels() == ["A", "B", "B"]
        assert triangle.distinct_labels() == {"A", "B"}

    def test_vertex_bounds_checked(self, triangle):
        with pytest.raises(VertexNotFoundError):
            triangle.degree(3)
        with pytest.raises(VertexNotFoundError):
            triangle.neighbors(-1)
        with pytest.raises(VertexNotFoundError):
            triangle.label(99)


class TestLabelIndex:
    def test_vertices_with_label(self, triangle):
        assert list(triangle.vertices_with_label("B")) == [1, 2]
        assert list(triangle.vertices_with_label("A")) == [0]

    def test_missing_label_is_empty(self, triangle):
        assert len(triangle.vertices_with_label("Z")) == 0

    def test_label_frequency(self, triangle):
        assert triangle.label_frequency("B") == pytest.approx(2 / 3)
        assert triangle.label_frequency("Z") == 0.0

    def test_index_sorted(self):
        g = build_fig2_graph()
        for label in g.distinct_labels():
            ids = g.vertices_with_label(label)
            assert list(ids) == sorted(ids)


class TestEdges:
    def test_has_edge(self, triangle):
        assert triangle.has_edge(0, 1)
        assert triangle.has_edge(1, 0)
        g = build_path_graph(4)
        assert not g.has_edge(0, 3)

    def test_iter_edges_each_once(self, triangle):
        edges = list(triangle.iter_edges())
        assert len(edges) == 3
        assert all(u < v for u, v in edges)
        assert len(set(edges)) == 3

    def test_iter_edges_count_matches(self):
        g = build_fig2_graph()
        assert len(list(g.iter_edges())) == g.num_edges

    def test_degree_array(self, triangle):
        assert list(triangle.degree_array()) == [2, 2, 2]

    def test_raw_csr_consistency(self):
        g = build_fig2_graph()
        offsets, neighbors = g.raw_csr()
        assert int(offsets[-1]) == 2 * g.num_edges
        for v in g.iter_vertices():
            assert list(neighbors[offsets[v] : offsets[v + 1]]) == list(g.neighbors(v))


class TestInducedSubgraph:
    def test_simple_subgraph(self):
        g = build_fig2_graph()
        sub = g.induced_subgraph([1, 4, 11])  # v2, v5, v12
        assert sub.num_vertices == 3
        assert sub.label(0) == "A"
        assert sub.label(1) == "B"
        assert sub.label(2) == "C"
        assert sub.has_edge(0, 1)  # v2-v5 edge survives
        assert not sub.has_edge(0, 2)

    def test_duplicates_collapsed(self, triangle):
        sub = triangle.induced_subgraph([0, 0, 1])
        assert sub.num_vertices == 2
        assert sub.num_edges == 1

    def test_preserves_order_of_first_occurrence(self, triangle):
        sub = triangle.induced_subgraph([2, 0])
        assert sub.label(0) == "B"
        assert sub.label(1) == "A"

    def test_empty_selection(self, triangle):
        sub = triangle.induced_subgraph([])
        assert sub.num_vertices == 0
        assert sub.num_edges == 0

    def test_unknown_vertex_rejected(self, triangle):
        with pytest.raises(VertexNotFoundError):
            triangle.induced_subgraph([0, 17])


class TestEquality:
    def test_equal_graphs(self):
        assert build_path_graph(5) == build_path_graph(5)

    def test_different_structure(self):
        assert build_path_graph(5) != build_cycle_graph(5)

    def test_different_labels(self):
        assert build_path_graph(3, "X") != build_path_graph(3, "Y")

    def test_not_equal_to_other_types(self):
        assert build_path_graph(2) != "graph"


def test_repr_mentions_sizes(triangle):
    text = repr(triangle)
    assert "3" in text and "tri" in text


def test_neighbors_returns_numpy_array(triangle):
    assert isinstance(triangle.neighbors(0), np.ndarray)
