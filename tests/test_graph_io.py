"""Tests for repro.graph.io."""

import pytest

from repro.errors import GraphIOError
from repro.graph.io import load_edge_list, load_json, save_edge_list, save_json
from tests.conftest import build_fig2_graph, build_path_graph


class TestEdgeListRoundtrip:
    def test_roundtrip(self, tmp_path):
        g = build_fig2_graph()
        path = tmp_path / "g.txt"
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert loaded.num_vertices == g.num_vertices
        assert loaded.num_edges == g.num_edges
        assert set(loaded.iter_edges()) == set(g.iter_edges())
        assert loaded.labels() == [str(l) for l in g.labels()]

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mygraph.txt"
        save_edge_list(build_path_graph(3), path)
        assert load_edge_list(path).name == "mygraph"

    def test_explicit_name(self, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list(build_path_graph(3), path)
        assert load_edge_list(path, name="override").name == "override"

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# hi\n\nv 0 A\nv 1 B\n\ne 0 1\n")
        g = load_edge_list(path)
        assert g.num_vertices == 2
        assert g.num_edges == 1

    def test_multiword_labels(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("v 0 hello world\n")
        assert load_edge_list(path).label(0) == "hello world"


class TestEdgeListErrors:
    def test_non_dense_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("v 1 A\n")
        with pytest.raises(GraphIOError):
            load_edge_list(path)

    def test_missing_label(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("v 0\n")
        with pytest.raises(GraphIOError):
            load_edge_list(path)

    def test_unknown_record(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("x 0 1\n")
        with pytest.raises(GraphIOError):
            load_edge_list(path)

    def test_malformed_edge(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("v 0 A\ne 0\n")
        with pytest.raises(GraphIOError):
            load_edge_list(path)

    def test_edge_before_vertex(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("e 0 1\n")
        with pytest.raises(GraphIOError):
            load_edge_list(path)

    def test_duplicate_edge_wrapped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("v 0 A\nv 1 B\ne 0 1\ne 1 0\n")
        with pytest.raises(GraphIOError):
            load_edge_list(path)

    def test_error_mentions_line_number(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("v 0 A\nbroken line\n")
        with pytest.raises(GraphIOError, match=":2"):
            load_edge_list(path)


class TestJSON:
    def test_roundtrip(self, tmp_path):
        g = build_fig2_graph()
        path = tmp_path / "g.json"
        save_json(g, path)
        loaded = load_json(path)
        assert loaded.num_vertices == g.num_vertices
        assert set(loaded.iter_edges()) == set(g.iter_edges())

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(GraphIOError):
            load_json(path)

    def test_missing_keys(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"labels": ["A"]}')
        with pytest.raises(GraphIOError):
            load_json(path)

    def test_invalid_structure(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"labels": ["A"], "edges": [[0, 0]]}')
        with pytest.raises(GraphIOError):
            load_json(path)
