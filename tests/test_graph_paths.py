"""Tests for bounded simple-path enumeration."""

import pytest

from repro.graph.paths import bounded_paths, iter_bounded_paths
from repro.indexing.pml import PrunedLandmarkLabeling
from tests.conftest import build_cycle_graph, build_fig2_graph, build_path_graph


class TestEnumeration:
    def test_path_graph_single_path(self):
        g = build_path_graph(5)
        paths = bounded_paths(g, 0, 4, 1, 10)
        assert paths == [[0, 1, 2, 3, 4]]

    def test_cycle_two_ways(self):
        g = build_cycle_graph(5)
        paths = bounded_paths(g, 0, 2, 1, 4)
        assert sorted(paths) == [[0, 1, 2], [0, 4, 3, 2]]

    def test_bounds_filter(self):
        g = build_cycle_graph(5)
        assert bounded_paths(g, 0, 2, 3, 4) == [[0, 4, 3, 2]]
        assert bounded_paths(g, 0, 2, 1, 2) == [[0, 1, 2]]
        assert bounded_paths(g, 0, 2, 4, 4) == []

    def test_same_vertex_empty(self):
        g = build_cycle_graph(4)
        assert bounded_paths(g, 1, 1, 1, 4) == []

    def test_invalid_bounds_empty(self):
        g = build_path_graph(3)
        assert bounded_paths(g, 0, 2, 3, 2) == []

    def test_limit(self):
        g = build_fig2_graph()
        capped = bounded_paths(g, 1, 11, 1, 5, limit=2)
        assert len(capped) == 2

    def test_all_paths_simple_and_within_bounds(self):
        g = build_fig2_graph()
        for path in iter_bounded_paths(g, 1, 11, 1, 4):
            assert path[0] == 1 and path[-1] == 11
            assert 1 <= len(path) - 1 <= 4
            assert len(set(path)) == len(path)
            for a, b in zip(path, path[1:]):
                assert g.has_edge(a, b)

    def test_oracle_pruning_same_results(self):
        g = build_fig2_graph()
        pml = PrunedLandmarkLabeling.build(g)
        plain = {tuple(p) for p in iter_bounded_paths(g, 1, 11, 1, 4)}
        pruned = {tuple(p) for p in iter_bounded_paths(g, 1, 11, 1, 4, oracle=pml)}
        assert plain == pruned
        assert plain  # non-empty on this graph

    def test_deterministic_order(self):
        g = build_fig2_graph()
        a = bounded_paths(g, 1, 11, 1, 5)
        b = bounded_paths(g, 1, 11, 1, 5)
        assert a == b

    def test_count_matches_naive_on_cycle(self):
        g = build_cycle_graph(6)
        # between opposite vertices: exactly two simple paths (length 3 each)
        assert len(bounded_paths(g, 0, 3, 1, 6)) == 2


class TestResultSubgraphIntegration:
    def test_all_path_embeddings(self, fig2_ctx):
        from tests.conftest import make_fig2_query
        from repro.core.lowerbound import filter_by_lower_bound

        query = make_fig2_query()
        result = filter_by_lower_bound({0: 1, 1: 4, 2: 11}, query, fig2_ctx)
        embeddings = result.all_path_embeddings(query, fig2_ctx)
        assert set(embeddings) == {(0, 1), (1, 2), (0, 2)}
        for edge in query.edges():
            paths = embeddings[edge.key]
            assert paths  # the display path exists, so at least one
            display = result.paths[edge.key]
            assert display in paths
            for path in paths:
                assert edge.lower <= len(path) - 1 <= edge.upper
