"""Tests for repro.graph.stats."""

from repro.graph.stats import compute_stats
from repro.graph.builder import GraphBuilder
from tests.conftest import build_fig2_graph, build_path_graph


def test_basic_counts():
    stats = compute_stats(build_fig2_graph())
    assert stats.num_vertices == 12
    assert stats.num_edges == 11
    assert stats.num_labels == 4


def test_density_ratio():
    stats = compute_stats(build_path_graph(5))
    assert stats.density_ratio == 4 / 5


def test_degree_extremes():
    stats = compute_stats(build_path_graph(4))
    assert stats.min_degree == 1
    assert stats.max_degree == 2
    assert abs(stats.mean_degree - 1.5) < 1e-9


def test_label_histogram_and_top_share():
    stats = compute_stats(build_fig2_graph())
    assert stats.label_histogram["A"] == 4
    assert stats.label_histogram["C"] == 1
    assert stats.top_label_share == 4 / 12


def test_empty_graph():
    stats = compute_stats(GraphBuilder().build())
    assert stats.num_vertices == 0
    assert stats.density_ratio == 0.0
    assert stats.top_label_share == 0.0


def test_describe_mentions_name_and_sizes():
    text = compute_stats(build_fig2_graph()).describe()
    assert "fig2" in text
    assert "12" in text
