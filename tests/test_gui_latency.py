"""Tests for the GUI latency model."""

import pytest

from repro.core.actions import DeleteEdge, ModifyBounds, NewEdge, NewVertex, Run
from repro.core.cost import GUILatencyConstants
from repro.gui.latency import LatencyModel


class TestDeterministicModel:
    @pytest.fixture()
    def model(self):
        return LatencyModel(GUILatencyConstants(), jitter=0.0)

    def test_vertex_time_is_t_node(self, model):
        assert model.vertex_time() == pytest.approx(3.0)

    def test_edge_time_default_bounds(self, model):
        assert model.edge_time(default_bounds=True) == pytest.approx(2.0)

    def test_edge_time_with_bounds_entry(self, model):
        assert model.edge_time(default_bounds=False) == pytest.approx(3.5)

    def test_action_time_dispatch(self, model):
        assert model.action_time(NewVertex(0, "A")) == pytest.approx(3.0)
        assert model.action_time(NewEdge(0, 1)) == pytest.approx(2.0)
        assert model.action_time(NewEdge(0, 1, 1, 3)) == pytest.approx(3.5)
        assert model.action_time(ModifyBounds(0, 1, 1, 2)) == pytest.approx(2.5)
        assert model.action_time(DeleteEdge(0, 1)) == pytest.approx(2.5)
        assert model.action_time(Run()) == pytest.approx(1.0)

    def test_unknown_action_rejected(self, model):
        with pytest.raises(TypeError):
            model.action_time(object())


class TestJitterAndSpeed:
    def test_jitter_reproducible(self):
        a = LatencyModel(jitter=0.2, seed=5)
        b = LatencyModel(jitter=0.2, seed=5)
        assert [a.vertex_time() for _ in range(5)] == [
            b.vertex_time() for _ in range(5)
        ]

    def test_jitter_produces_spread(self):
        model = LatencyModel(jitter=0.3, seed=1)
        samples = [model.edge_time(True) for _ in range(50)]
        assert max(samples) > min(samples)
        # mean should hover near 2.0
        assert 1.5 < sum(samples) / len(samples) < 2.6

    def test_speed_multiplier(self):
        slow = LatencyModel(jitter=0.0, speed=2.0)
        fast = LatencyModel(jitter=0.0, speed=0.5)
        assert slow.vertex_time() == pytest.approx(6.0)
        assert fast.vertex_time() == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyModel(jitter=-0.1)
        with pytest.raises(ValueError):
            LatencyModel(speed=0.0)

    def test_scaled_constants(self):
        model = LatencyModel(GUILatencyConstants().scaled(0.1), jitter=0.0)
        assert model.edge_time(True) == pytest.approx(0.2)
