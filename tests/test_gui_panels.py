"""Tests for the four-panel interface session (Section 3.2 protocol)."""

import pytest

from repro.errors import ActionError, SessionError
from repro.gui.latency import LatencyModel
from repro.gui.panels import InterfaceSession


@pytest.fixture()
def session(fig2_ctx):
    return InterfaceSession(fig2_ctx, LatencyModel(jitter=0.0))


def formulate_triangle(session):
    session.select_label("A")
    qa = session.drop_vertex()
    session.select_label("B")
    qb = session.drop_vertex()
    session.connect(qa, qb)
    session.select_label("C")
    qc = session.drop_vertex()
    session.connect(qb, qc)
    session.set_bounds(qb, qc, 1, 2)
    session.connect(qa, qc)
    session.set_bounds(qa, qc, 1, 3)
    return qa, qb, qc


class TestAttributePanel:
    def test_shows_graph_labels(self, session):
        assert session.attribute_panel == ["A", "B", "C", "X"]

    def test_unknown_label_rejected(self, session):
        with pytest.raises(ActionError):
            session.select_label("Z")

    def test_drop_without_select_rejected(self, session):
        with pytest.raises(ActionError):
            session.drop_vertex()

    def test_selection_consumed_by_drop(self, session):
        session.select_label("A")
        session.drop_vertex()
        with pytest.raises(ActionError):
            session.drop_vertex()


class TestFormulation:
    def test_vertex_ids_dense(self, session):
        session.select_label("A")
        assert session.drop_vertex() == 0
        session.select_label("B")
        assert session.drop_vertex() == 1

    def test_full_protocol_matches_paper_example(self, session):
        formulate_triangle(session)
        result = session.press_run()
        assert result.num_matches == 3  # the Figure-2 answer

    def test_connect_defaults_then_bounds(self, session):
        session.select_label("A")
        qa = session.drop_vertex()
        session.select_label("B")
        qb = session.drop_vertex()
        session.connect(qa, qb)
        assert session.boomer.query.edge_between(qa, qb).bounds.is_default
        session.set_bounds(qa, qb, 1, 2)
        assert session.boomer.query.edge_between(qa, qb).upper == 2

    def test_user_time_accumulates(self, session):
        before = session.user_time_seconds
        session.select_label("A")
        session.drop_vertex()
        after = session.user_time_seconds
        # t_move + t_select + t_drag = T_node = 3.0 (unscaled defaults)
        assert after - before == pytest.approx(3.0)

    def test_delete_edge(self, session):
        qa, qb, qc = formulate_triangle(session)
        session.delete_edge(qa, qc)
        assert not session.boomer.query.has_edge(qa, qc)
        result = session.press_run()
        assert result.num_matches >= 3


class TestResultsPanel:
    def test_requires_run(self, session):
        with pytest.raises(SessionError):
            session.next_result()

    def test_iterates_all_then_none(self, session):
        formulate_triangle(session)
        session.press_run()
        seen = []
        while True:
            result = session.next_result()
            if result is None:
                break
            seen.append(tuple(sorted(result.assignment.items())))
        assert len(seen) == 3
        assert len(set(seen)) == 3
        assert session.next_result() is None

    def test_reset_results(self, session):
        formulate_triangle(session)
        session.press_run()
        first = session.next_result()
        session.reset_results()
        again = session.next_result()
        assert first.assignment == again.assignment

    def test_skips_lower_bound_failures(self, fig2_ctx):
        session = InterfaceSession(fig2_ctx, LatencyModel(jitter=0.0))
        # A-C with lower=3: only matches with a genuine 3-hop simple path.
        session.select_label("A")
        qa = session.drop_vertex()
        session.select_label("C")
        qc = session.drop_vertex()
        session.connect(qa, qc)
        session.set_bounds(qa, qc, 3, 3)
        run = session.press_run()
        validated = []
        while True:
            result = session.next_result()
            if result is None:
                break
            validated.append(result)
        # every returned match really has a length-3 path
        for result in validated:
            assert result.path_length(qa, qc) == 3
        # and the panel skipped any V_P lacking one
        assert len(validated) <= run.num_matches
