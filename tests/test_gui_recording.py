"""Tests for session recording and replay."""

import pytest

from repro.core.actions import DeleteEdge, ModifyBounds, NewEdge, NewVertex, Run
from repro.errors import ActionError
from repro.gui.latency import LatencyModel
from repro.gui.recording import (
    action_from_dict,
    action_to_dict,
    load_actions,
    save_actions,
)
from repro.gui.simulator import SimulatedUser
from repro.workload.generator import instantiate
from tests.conftest import build_fig2_graph


ALL_ACTIONS = [
    NewVertex(0, "A", latency_after=1.5),
    NewVertex(1, "B"),
    NewEdge(0, 1, 1, 2, latency_after=0.8),
    ModifyBounds(0, 1, 2, 3, latency_after=0.1),
    DeleteEdge(0, 1, latency_after=0.2),
    Run(),
]


class TestSerialization:
    @pytest.mark.parametrize("action", ALL_ACTIONS, ids=lambda a: a.kind)
    def test_roundtrip_each_kind(self, action):
        assert action_from_dict(action_to_dict(action)) == action

    def test_non_json_label_rejected(self):
        with pytest.raises(ActionError):
            action_to_dict(NewVertex(0, ("tuple", "label")))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ActionError):
            action_from_dict({"kind": "Teleport"})

    def test_malformed_payload_rejected(self):
        with pytest.raises(ActionError):
            action_from_dict({"kind": "NewEdge", "u": 0})  # missing v

    def test_default_bounds_omittable(self):
        edge = action_from_dict({"kind": "NewEdge", "u": 0, "v": 1})
        assert edge.lower == 1 and edge.upper == 1


class TestFileRoundtrip:
    def test_save_load(self, tmp_path):
        path = tmp_path / "session.json"
        save_actions(ALL_ACTIONS, path)
        assert load_actions(path) == ALL_ACTIONS

    def test_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{broken")
        with pytest.raises(ActionError):
            load_actions(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ActionError):
            load_actions(tmp_path / "nope.json")

    def test_not_a_recording(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"something": "else"}')
        with pytest.raises(ActionError):
            load_actions(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "v99.json"
        path.write_text('{"version": 99, "actions": []}')
        with pytest.raises(ActionError):
            load_actions(path)


class TestReplayEquivalence:
    def test_recorded_simulated_session_replays_identically(self, tmp_path, fig2_pre):
        from repro.core.cost import GUILatencyConstants
        from repro.core.preprocessor import make_context
        from repro.gui.session import VisualSession

        instance = instantiate("Q1", build_fig2_graph(), seed=2)
        user = SimulatedUser(LatencyModel(jitter=0.2, seed=9))
        actions = user.formulate(instance)
        path = tmp_path / "rec.json"
        save_actions(actions, path)
        replayed = load_actions(path)
        assert replayed == actions

        latency = GUILatencyConstants().scaled(0.001)
        live = VisualSession(make_context(fig2_pre, latency=latency), latency).run_actions(
            actions, strategy="DI"
        )
        rerun = VisualSession(make_context(fig2_pre, latency=latency), latency).run_actions(
            replayed, strategy="DI"
        )
        key = lambda r: {tuple(sorted(m.items())) for m in r.run.matches}
        assert key(live) == key(rerun)
