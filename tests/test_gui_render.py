"""Tests for DOT / text rendering of result subgraphs."""

import pytest

from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.gui.render import to_dot, to_text


@pytest.fixture()
def match(fig2_ctx):
    boomer = Boomer(fig2_ctx, strategy="IC")
    boomer.apply(NewVertex(0, "A"))
    boomer.apply(NewVertex(1, "B"))
    boomer.apply(NewEdge(0, 1, 1, 1))
    boomer.apply(NewVertex(2, "C"))
    boomer.apply(NewEdge(1, 2, 1, 2))
    boomer.apply(NewEdge(0, 2, 1, 3))
    boomer.apply(Run())
    results = boomer.results()
    return boomer, results[0]


class TestDot:
    def test_valid_braces_and_graph_kind(self, match, fig2_graph):
        boomer, result = match
        dot = to_dot(result, fig2_graph, boomer.query)
        assert dot.startswith("graph match {")
        assert dot.rstrip().endswith("}")
        assert dot.count("{") == dot.count("}")

    def test_matched_vertices_highlighted(self, match, fig2_graph):
        boomer, result = match
        dot = to_dot(result, fig2_graph, boomer.query)
        assert dot.count("fillcolor=lightblue") == 3  # one per query vertex
        for q in (0, 1, 2):
            assert f"q{q}:" in dot

    def test_path_edges_bold(self, match, fig2_graph):
        boomer, result = match
        dot = to_dot(result, fig2_graph, boomer.query)
        assert "penwidth=2.5" in dot

    def test_halo_dimmed(self, match, fig2_graph):
        boomer, result = match
        dot = to_dot(result, fig2_graph, boomer.query, radius=1)
        assert "color=gray" in dot

    def test_radius_zero_no_halo_nodes(self, match, fig2_graph):
        boomer, result = match
        dot = to_dot(result, fig2_graph, boomer.query, radius=0)
        # every node is matched or on a path; no dimmed nodes
        assert "fontcolor=gray" not in dot


class TestText:
    def test_mentions_assignment_and_paths(self, match, fig2_graph):
        boomer, result = match
        text = to_text(result, fig2_graph, boomer.query)
        assert text.startswith("match:")
        for q, v in result.assignment.items():
            assert f"q{q}" in text
            assert f"v{v}" in text
        assert "length" in text

    def test_without_query_uses_graph_labels(self, match, fig2_graph):
        _, result = match
        text = to_text(result, fig2_graph)
        assert "(A)" in text or "(B)" in text
