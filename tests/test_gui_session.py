"""Tests for the end-to-end visual session (hybrid timeline)."""

import pytest

from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.cost import GUILatencyConstants
from repro.core.preprocessor import make_context
from repro.errors import SessionError
from repro.gui.session import VisualSession
from repro.workload.generator import instantiate
from tests.conftest import build_fig2_graph


@pytest.fixture()
def session(fig2_pre):
    latency = GUILatencyConstants().scaled(0.001)
    return VisualSession(make_context(fig2_pre, latency=latency), latency)


@pytest.fixture()
def q1_instance():
    return instantiate("Q1", build_fig2_graph(), seed=1)


class TestRun:
    def test_produces_metrics(self, session, q1_instance):
        result = session.run(q1_instance, strategy="DI")
        assert result.strategy == "DI"
        assert result.num_matches >= 0
        assert result.srt_seconds >= result.run.srt_seconds
        assert result.simulated_qft_seconds > 0
        assert result.cap_size > 0
        assert result.cap_peak_size >= result.cap_size

    def test_strategies_agree_on_matches(self, session, q1_instance):
        keys = []
        for strategy in ("IC", "DR", "DI"):
            result = session.run(q1_instance, strategy=strategy)
            keys.append(
                frozenset(
                    tuple(sorted(m.items())) for m in result.run.matches
                )
            )
        assert keys[0] == keys[1] == keys[2]

    def test_backlog_nonnegative(self, session, q1_instance):
        result = session.run(q1_instance, strategy="IC")
        assert result.backlog_seconds >= 0.0
        assert result.formulation_busy_seconds >= 0.0

    def test_edge_order_parameter(self, session, q1_instance):
        a = session.run(q1_instance, strategy="IC", edge_order=(1, 2, 3))
        b = session.run(q1_instance, strategy="IC", edge_order=(3, 2, 1))
        key = lambda r: {tuple(sorted(m.items())) for m in r.run.matches}
        assert key(a) == key(b)

    def test_counters_reset_between_runs(self, session, q1_instance):
        first = session.run(q1_instance, strategy="IC")
        second = session.run(q1_instance, strategy="IC")
        assert (
            first.run.counters["edges_processed"]
            == second.run.counters["edges_processed"]
        )

    def test_pruning_flag(self, session, q1_instance):
        pruned = session.run(q1_instance, strategy="IC", pruning=True)
        unpruned = session.run(q1_instance, strategy="IC", pruning=False)
        assert unpruned.cap_size >= pruned.cap_size
        key = lambda r: {tuple(sorted(m.items())) for m in r.run.matches}
        assert key(pruned) == key(unpruned)

    def test_max_results(self, session, q1_instance):
        result = session.run(q1_instance, strategy="IC", max_results=1)
        assert result.num_matches <= 1


class TestRunActions:
    def test_adhoc_actions(self, session):
        actions = [
            NewVertex(0, "A", latency_after=0.001),
            NewVertex(1, "B", latency_after=0.001),
            NewEdge(0, 1, 1, 1, latency_after=0.001),
            Run(),
        ]
        result = session.run_actions(actions, instance_name="adhoc")
        assert result.instance_name == "adhoc"
        assert result.num_matches > 0

    def test_missing_run_rejected(self, session):
        with pytest.raises(SessionError):
            session.run_actions([NewVertex(0, "A")])

    def test_empty_rejected(self, session):
        with pytest.raises(SessionError):
            session.run_actions([])


class TestTimelineModel:
    def test_backlog_when_compute_exceeds_latency(self, fig2_pre):
        # Engine compute (real ms) dwarfs the micro latencies -> backlog.
        latency = GUILatencyConstants().scaled(1e-7)
        session = VisualSession(make_context(fig2_pre, latency=latency), latency)
        instance = instantiate("Q1", build_fig2_graph(), seed=1)
        result = session.run(instance, strategy="IC")
        assert result.backlog_seconds > 0

    def test_no_backlog_with_huge_latency(self, fig2_pre):
        latency = GUILatencyConstants().scaled(100.0)
        session = VisualSession(make_context(fig2_pre, latency=latency), latency)
        instance = instantiate("Q1", build_fig2_graph(), seed=1)
        result = session.run(instance, strategy="IC")
        assert result.backlog_seconds == 0.0


class TestUserVariability:
    def test_same_seed_same_timeline(self, fig2_pre):
        from repro.workload.generator import instantiate
        from tests.conftest import build_fig2_graph

        latency = GUILatencyConstants().scaled(0.001)
        instance = instantiate("Q1", build_fig2_graph(), seed=1)

        def qft(seed):
            session = VisualSession(
                make_context(fig2_pre, latency=latency),
                latency,
                jitter=0.3,
                seed=seed,
            )
            return session.run(instance, strategy="DI").simulated_qft_seconds

        assert qft(5) == qft(5)
        assert qft(5) != qft(6)

    def test_speed_scales_qft(self, fig2_pre):
        from repro.workload.generator import instantiate
        from tests.conftest import build_fig2_graph

        latency = GUILatencyConstants().scaled(0.001)
        instance = instantiate("Q1", build_fig2_graph(), seed=1)

        def qft(speed):
            session = VisualSession(
                make_context(fig2_pre, latency=latency),
                latency,
                jitter=0.0,
                speed=speed,
            )
            return session.run(instance, strategy="DI").simulated_qft_seconds

        slow = qft(2.0)
        fast = qft(0.5)
        assert slow == pytest.approx(4 * fast)
