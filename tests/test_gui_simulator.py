"""Tests for the simulated user."""

import pytest

from repro.core.actions import NewEdge, NewVertex, Run
from repro.errors import ExperimentError
from repro.gui.latency import LatencyModel
from repro.gui.simulator import SimulatedUser
from repro.workload.generator import instantiate
from repro.workload.templates import get_template
from tests.conftest import build_fig2_graph


@pytest.fixture()
def user():
    return SimulatedUser(LatencyModel(jitter=0.0))


@pytest.fixture()
def q1_instance():
    return instantiate("Q1", build_fig2_graph(), seed=1)


class TestFormulate:
    def test_structure(self, user, q1_instance):
        actions = user.formulate(q1_instance)
        kinds = [a.kind for a in actions]
        # Q1 triangle with default edge order: v,v,e,v,e,e,Run
        assert kinds == [
            "NewVertex",
            "NewVertex",
            "NewEdge",
            "NewVertex",
            "NewEdge",
            "NewEdge",
            "Run",
        ]

    def test_vertex_before_first_use(self, user, q1_instance):
        actions = user.formulate(q1_instance)
        drawn = set()
        for action in actions:
            if isinstance(action, NewVertex):
                drawn.add(action.vertex_id)
            elif isinstance(action, NewEdge):
                assert action.u in drawn and action.v in drawn

    def test_labels_and_bounds_carried(self, user, q1_instance):
        actions = user.formulate(q1_instance)
        vertex_labels = {
            a.vertex_id: a.label for a in actions if isinstance(a, NewVertex)
        }
        template = q1_instance.template
        for qid, label in vertex_labels.items():
            assert label == q1_instance.labels[qid - 1]
        edges = [a for a in actions if isinstance(a, NewEdge)]
        for action in edges:
            index = template.edge_index(action.u, action.v)
            assert (action.lower, action.upper) == (
                q1_instance.bounds[index - 1].lower,
                q1_instance.bounds[index - 1].upper,
            )

    def test_latencies_attached(self, user, q1_instance):
        actions = user.formulate(q1_instance)
        for action in actions[:-1]:
            assert action.latency_after is not None
            assert action.latency_after > 0
        assert isinstance(actions[-1], Run)

    def test_latency_is_next_action_duration(self, q1_instance):
        model = LatencyModel(jitter=0.0)
        user = SimulatedUser(model)
        actions = user.formulate(q1_instance)
        for current, nxt in zip(actions, actions[1:]):
            if current.latency_after is None:
                continue
            assert current.latency_after == pytest.approx(model.action_time(nxt))


class TestEdgeOrder:
    def test_custom_order_respected(self, user, q1_instance):
        actions = user.formulate(q1_instance, edge_order=(3, 2, 1))
        edges = [
            (a.u, a.v) for a in actions if isinstance(a, NewEdge)
        ]
        template = q1_instance.template
        assert edges == [template.edges[2], template.edges[1], template.edges[0]]

    def test_order_changes_vertex_sequence(self, user, q1_instance):
        default = user.formulate(q1_instance)
        reordered = user.formulate(q1_instance, edge_order=(3, 2, 1))
        first_vertices = [
            a.vertex_id for a in default if isinstance(a, NewVertex)
        ]
        second_vertices = [
            a.vertex_id for a in reordered if isinstance(a, NewVertex)
        ]
        assert first_vertices != second_vertices

    def test_invalid_order_rejected(self, user, q1_instance):
        with pytest.raises(ExperimentError):
            user.formulate(q1_instance, edge_order=(1, 1, 2))
        with pytest.raises(ExperimentError):
            user.formulate(q1_instance, edge_order=(1, 2))


def test_all_templates_formulate(user):
    graph = build_fig2_graph()
    for name in ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6"):
        template = get_template(name)
        instance = instantiate(name, graph, seed=3)
        actions = user.formulate(instance)
        assert isinstance(actions[-1], Run)
        n_vertices = sum(1 for a in actions if isinstance(a, NewVertex))
        n_edges = sum(1 for a in actions if isinstance(a, NewEdge))
        assert n_vertices == template.num_vertices
        assert n_edges == template.num_edges
