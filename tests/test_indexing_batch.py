"""Oracle-conformance suite for the batched distance contract.

Every oracle implementation — native batch kernels (PML CSR merge,
BFSOracle vector slice) and the per-pair fallback shim that wraps
batch-incapable oracles like :class:`CountingOracle` — must give

* identical answers to the scalar ``distance``/``within`` path,
* identical validation errors for bad vertex ids, and
* batch results equal to a loop of scalar calls, in the same order.

The hypothesis section fuzzes these invariants over random graphs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VertexNotFoundError
from repro.graph.algorithms import bfs_distances
from repro.graph.builder import GraphBuilder
from repro.indexing.batch import (
    FULL_VECTOR_MIN_TARGETS,
    DistanceVectorCache,
    distances_from,
    scalar_distances,
    scalar_within_many,
    shared_distance_cache,
    supports_batch,
    within_many,
)
from repro.indexing.oracle import BatchDistanceOracle, BFSOracle, CountingOracle
from repro.indexing.pml import PrunedLandmarkLabeling
from tests.conftest import build_fig2_graph, build_path_graph


def make_oracle(kind: str, graph):
    if kind == "pml":
        return PrunedLandmarkLabeling.build(graph)
    if kind == "bfs":
        return BFSOracle(graph)
    if kind == "counting":
        return CountingOracle(BFSOracle(graph))
    raise ValueError(kind)


ORACLE_KINDS = ["pml", "bfs", "counting"]


@pytest.fixture(params=ORACLE_KINDS)
def fig2_oracle(request):
    return request.param, make_oracle(request.param, build_fig2_graph())


class TestConformance:
    """Batch == loop-of-scalar, for every oracle, on the fig2 graph."""

    def test_native_batch_support(self):
        g = build_path_graph(3)
        assert supports_batch(PrunedLandmarkLabeling.build(g))
        assert supports_batch(BFSOracle(g))
        assert not supports_batch(CountingOracle(BFSOracle(g)))

    def test_protocol_membership(self):
        g = build_path_graph(3)
        assert isinstance(PrunedLandmarkLabeling.build(g), BatchDistanceOracle)
        assert isinstance(BFSOracle(g), BatchDistanceOracle)
        assert not isinstance(CountingOracle(BFSOracle(g)), BatchDistanceOracle)

    def test_distances_from_matches_scalar(self, fig2_oracle):
        _, oracle = fig2_oracle
        graph = build_fig2_graph()
        targets = np.arange(graph.num_vertices)
        for source in range(graph.num_vertices):
            got = distances_from(oracle, source, targets)
            truth = bfs_distances(graph, source)
            np.testing.assert_array_equal(np.asarray(got), np.asarray(truth))

    @pytest.mark.parametrize("upper", [0, 1, 2, 4])
    @pytest.mark.parametrize("skip_equal", [False, True])
    def test_within_many_matches_scalar(self, fig2_oracle, upper, skip_equal):
        kind, oracle = fig2_oracle
        graph = build_fig2_graph()
        sources = list(range(0, graph.num_vertices, 2))
        targets = list(range(graph.num_vertices))
        reference = make_oracle(kind, graph)
        expected = scalar_within_many(reference, sources, targets, upper, skip_equal)
        got = within_many(oracle, sources, targets, upper, skip_equal=skip_equal)
        assert got == expected  # same pairs, same source-major order

    def test_empty_targets(self, fig2_oracle):
        _, oracle = fig2_oracle
        out = distances_from(oracle, 0, [])
        assert np.asarray(out).size == 0

    def test_invalid_source_raises(self, fig2_oracle):
        _, oracle = fig2_oracle
        for bad in (-1, 99):
            with pytest.raises(VertexNotFoundError):
                distances_from(oracle, bad, [0, 1])

    def test_invalid_target_raises(self, fig2_oracle):
        _, oracle = fig2_oracle
        for bad in (-1, 99):
            with pytest.raises(VertexNotFoundError):
                distances_from(oracle, 0, [1, bad, 2])

    def test_counting_shim_preserves_counts(self):
        graph = build_fig2_graph()
        oracle = CountingOracle(BFSOracle(graph))
        distances_from(oracle, 0, [1, 2, 3])
        assert oracle.query_count == 3  # one logical query per target
        within_many(oracle, [0, 1], [2, 3], upper=4)
        assert oracle.query_count == 3 + 4


class TestPMLKernel:
    """The dense-spread kernel and the small-target merge path agree."""

    def test_small_target_merge_path(self):
        # Below the crossover heuristic PML answers with per-target merges;
        # both code paths must match BFS ground truth.
        graph = build_fig2_graph()
        pml = PrunedLandmarkLabeling.build(graph)
        truth = bfs_distances(graph, 4)
        few = pml.distances_from(4, [0, 11])
        assert list(few) == [int(truth[0]), int(truth[11])]
        many = pml.distances_from(4, np.arange(graph.num_vertices))
        np.testing.assert_array_equal(np.asarray(many), np.asarray(truth))

    def test_self_distance_zero(self):
        pml = PrunedLandmarkLabeling.build(build_path_graph(5))
        out = pml.distances_from(2, [0, 1, 2, 3, 4])
        assert out[2] == 0

    def test_unreachable_is_minus_one(self):
        b = GraphBuilder()
        b.add_vertices("abc")
        b.add_edge(0, 1)
        pml = PrunedLandmarkLabeling.build(b.build())
        assert list(pml.distances_from(0, [0, 1, 2])) == [0, 1, -1]

    def test_query_count_counts_targets(self):
        pml = PrunedLandmarkLabeling.build(build_path_graph(4))
        before = pml.query_count
        pml.distances_from(0, [1, 2, 3])
        assert pml.query_count == before + 3

    def test_unpickled_instance_finalizes_lazily(self):
        # Disk-cached indexes skip __init__ (pickle restores __dict__);
        # the CSR arrays must be rebuilt on first batch query.
        import pickle

        graph = build_path_graph(6)
        pml = PrunedLandmarkLabeling.build(graph)
        clone = pickle.loads(pickle.dumps(pml))
        for attr in ("_label_offsets", "_label_ranks_arr"):
            clone.__dict__.pop(attr, None)  # simulate a pre-upgrade pickle
        clone.__dict__.pop("_avg_label", None)
        clone.__dict__.pop("_finalized", None)  # pre-flag pickles lack it too
        np.testing.assert_array_equal(
            np.asarray(clone.distances_from(0, np.arange(6))),
            np.asarray(bfs_distances(graph, 0)),
        )


class TestBFSOracleBatch:
    def test_distances_from_slices_cached_vector(self):
        graph = build_path_graph(8)
        oracle = BFSOracle(graph)
        out = oracle.distances_from(0, [7, 3, 0])
        assert list(out) == [7, 3, 0]
        assert len(oracle._cache) == 1  # one BFS vector serves all targets

    def test_query_count_counts_targets(self):
        oracle = BFSOracle(build_path_graph(5))
        oracle.distances_from(0, [1, 2])
        assert oracle.query_count == 2


class TestBFSOracleLRU:
    def test_eviction_is_least_recently_used(self):
        g = build_path_graph(10)
        oracle = BFSOracle(g, cache_size=2)
        oracle.distance(0, 9)  # cache: [0]
        oracle.distance(1, 9)  # cache: [0, 1]
        oracle.distance(0, 5)  # hit refreshes 0 -> cache: [1, 0]
        oracle.distance(2, 9)  # evicts 1 (least recently *used*), not 0
        assert set(oracle._cache) == {0, 2}

    def test_swapped_endpoint_hit_refreshes(self):
        g = build_path_graph(10)
        oracle = BFSOracle(g, cache_size=2)
        oracle.distance(0, 9)
        oracle.distance(1, 9)
        oracle.distance(9, 0)  # routes through cached source 0 -> refresh
        oracle.distance(2, 9)
        assert set(oracle._cache) == {0, 2}


class TestBFSOracleValidation:
    """Both endpoints are validated before any counting or caching."""

    @pytest.mark.parametrize("u,v", [(-1, 0), (0, -1), (99, 0), (0, 99), (-1, -1)])
    def test_distance_rejects_bad_ids(self, u, v):
        oracle = BFSOracle(build_path_graph(4))
        with pytest.raises(VertexNotFoundError):
            oracle.distance(u, v)
        assert oracle.query_count == 0  # rejected queries are not counted

    def test_negative_id_does_not_wrap(self):
        # Pre-fix, -1 silently indexed the last entry of the BFS vector.
        oracle = BFSOracle(build_path_graph(4))
        oracle.distance(0, 3)
        with pytest.raises(VertexNotFoundError):
            oracle.distance(0, -1)

    @pytest.mark.parametrize("kind", ORACLE_KINDS)
    def test_scalar_and_batch_raise_the_same_error(self, kind):
        graph = build_fig2_graph()
        scalar_arm = make_oracle(kind, graph)
        batch_arm = make_oracle(kind, graph)
        with pytest.raises(VertexNotFoundError):
            scalar_arm.distance(0, -3)
        with pytest.raises(VertexNotFoundError):
            distances_from(batch_arm, 0, [1, -3])


class TestDistanceVectorCache:
    def test_lru_eviction_order(self):
        cache = DistanceVectorCache(max_entries=2)
        o = object()
        va, vb, vc = (np.arange(3),) * 3
        cache.store(o, 0, va)
        cache.store(o, 1, vb)
        assert cache.lookup(o, 0) is not None  # refresh 0
        cache.store(o, 2, vc)  # evicts 1
        assert cache.lookup(o, 1) is None
        assert cache.lookup(o, 0) is not None
        assert cache.lookup(o, 2) is not None

    def test_identity_check_rejects_recycled_id(self):
        cache = DistanceVectorCache(max_entries=4)
        o1 = object()
        cache.store(o1, 0, np.arange(3))
        # Simulate id() reuse: same key, different live object.  Keys are
        # (id(oracle), epoch, source); epoch-less test doubles key at 0.
        key = (id(o1), 0, 0)
        cache._entries[key] = (object(), np.arange(3))
        assert cache.lookup(o1, 0) is None  # identity mismatch -> miss
        assert len(cache) == 0  # stale entry evicted on sight

    def test_hit_miss_counters_and_metrics(self):
        from repro.obs.metrics import metrics

        cache = DistanceVectorCache(max_entries=2)
        o = object()
        hits0 = metrics.counter("repro_distcache_hits_total").value
        misses0 = metrics.counter("repro_distcache_misses_total").value
        assert cache.lookup(o, 0) is None
        cache.store(o, 0, np.arange(2))
        assert cache.lookup(o, 0) is not None
        assert (cache.hits, cache.misses) == (1, 1)
        assert metrics.counter("repro_distcache_hits_total").value == hits0 + 1
        assert metrics.counter("repro_distcache_misses_total").value == misses0 + 1

    def test_clear(self):
        cache = DistanceVectorCache(max_entries=2)
        cache.store(object(), 0, np.arange(2))
        cache.clear()
        assert len(cache) == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            DistanceVectorCache(max_entries=0)

    def test_shared_cache_serves_repeat_large_queries(self):
        n = max(FULL_VECTOR_MIN_TARGETS * 2, 64)
        graph = build_path_graph(n)
        pml = PrunedLandmarkLabeling.build(graph)
        shared_distance_cache.clear()
        targets = np.arange(n)
        hits0 = shared_distance_cache.hits
        first = distances_from(pml, 0, targets)
        second = distances_from(pml, 0, targets)
        np.testing.assert_array_equal(first, second)
        assert shared_distance_cache.hits == hits0 + 1

    def test_cached_vector_path_still_validates_targets(self):
        n = FULL_VECTOR_MIN_TARGETS + 8
        graph = build_path_graph(n)
        pml = PrunedLandmarkLabeling.build(graph)
        shared_distance_cache.clear()
        distances_from(pml, 0, np.arange(n))  # warm the full vector
        bad = list(range(FULL_VECTOR_MIN_TARGETS)) + [-2]
        with pytest.raises(VertexNotFoundError):
            distances_from(pml, 0, bad)  # -2 must not wrap into the vector


# ----------------------------------------------------------------------
# Randomized conformance (hypothesis)
# ----------------------------------------------------------------------
@st.composite
def small_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ).filter(lambda e: e[0] != e[1]),
            max_size=2 * n,
        )
    )
    builder = GraphBuilder("hyp")
    builder.add_vertices(["L"] * n)
    for u, v in edges:
        builder.add_edge_if_absent(u, v)
    return builder.build()


class TestRandomizedConformance:
    @settings(max_examples=30, deadline=None)
    @given(graph=small_graphs(), source=st.integers(0, 9))
    def test_all_oracles_agree_with_bfs_truth(self, graph, source):
        source %= graph.num_vertices
        truth = np.asarray(bfs_distances(graph, source))
        targets = np.arange(graph.num_vertices)
        for kind in ORACLE_KINDS:
            oracle = make_oracle(kind, graph)
            got = np.asarray(distances_from(oracle, source, targets))
            np.testing.assert_array_equal(got, truth, err_msg=kind)

    @settings(max_examples=20, deadline=None)
    @given(graph=small_graphs(), upper=st.integers(0, 5), skip=st.booleans())
    def test_within_many_equals_scalar_loop(self, graph, upper, skip):
        sources = list(range(graph.num_vertices))
        targets = list(range(graph.num_vertices))
        reference = scalar_within_many(
            BFSOracle(graph), sources, targets, upper, skip
        )
        for kind in ORACLE_KINDS:
            oracle = make_oracle(kind, graph)
            got = within_many(oracle, sources, targets, upper, skip_equal=skip)
            assert got == reference, kind
