"""Tests for the SPath-style k-neighborhood index."""

import pytest

from repro.errors import IndexError_
from repro.graph.algorithms import bfs_distances
from repro.indexing.kneighborhood import KNeighborhoodIndex
from tests.conftest import build_fig2_graph, build_path_graph


@pytest.fixture(scope="module")
def fig2_k2():
    return KNeighborhoodIndex(build_fig2_graph(), k=2)


class TestSignatures:
    def test_signature_min_distances_exact(self, fig2_k2):
        graph = build_fig2_graph()
        for v in range(graph.num_vertices):
            truth = bfs_distances(graph, v)
            expected = {}
            for w in range(graph.num_vertices):
                d = int(truth[w])
                if w != v and 1 <= d <= 2:
                    label = graph.label(w)
                    expected[label] = min(expected.get(label, 99), d)
            assert fig2_k2.signature(v) == expected

    def test_signature_excludes_self_label_unless_neighbor(self):
        g = build_path_graph(3, label="P")
        index = KNeighborhoodIndex(g, k=1)
        assert index.signature(0) == {"P": 1}

    def test_k_validation(self):
        with pytest.raises(IndexError_):
            KNeighborhoodIndex(build_path_graph(3), k=0)


class TestQueries:
    def test_has_label_within(self, fig2_k2):
        # v2 (id 1) has B neighbor v5 (id 4)
        assert fig2_k2.has_label_within(1, "B", 1)
        # v1 (id 0) has no B within 1 hop but none within 2 either? v1-v9-v5? v9 (8) adj v5 (4): yes within 2
        assert not fig2_k2.has_label_within(0, "B", 1)
        assert fig2_k2.has_label_within(0, "B", 2)

    def test_bound_above_k_rejected(self, fig2_k2):
        with pytest.raises(IndexError_):
            fig2_k2.has_label_within(0, "B", 3)

    def test_vertices_with_label_within_matches_bfs(self, fig2_k2):
        graph = build_fig2_graph()
        got = set(fig2_k2.vertices_with_label_within("C", 2))
        want = set()
        for v in range(graph.num_vertices):
            truth = bfs_distances(graph, v)
            for w in range(graph.num_vertices):
                if w != v and graph.label(w) == "C" and 1 <= int(truth[w]) <= 2:
                    want.add(v)
                    break
        assert got == want


class TestFootprint:
    def test_entries_accounting(self, fig2_k2):
        total = sum(len(fig2_k2.signature(v)) for v in range(12))
        assert fig2_k2.total_entries() == total
        assert fig2_k2.average_signature_size() == pytest.approx(total / 12)

    def test_footprint_grows_with_k(self):
        graph = build_fig2_graph()
        sizes = [
            KNeighborhoodIndex(graph, k=k).total_entries() for k in (1, 2, 3)
        ]
        assert sizes == sorted(sizes)
        assert sizes[2] > sizes[0]

    def test_large_k_stores_most_of_graph(self):
        """The paper's Remark: for larger k the signatures approach storing
        (label-projections of) the whole graph from every vertex."""
        graph = build_fig2_graph()
        index = KNeighborhoodIndex(graph, k=8)
        # with diameter-scale k, nearly every vertex sees every label
        num_labels = len(graph.distinct_labels())
        assert index.average_signature_size() > 0.75 * num_labels
        # and strictly more than the 1-hop signatures store
        assert index.total_entries() > KNeighborhoodIndex(graph, k=1).total_entries()
