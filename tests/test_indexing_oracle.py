"""Tests for the distance-oracle abstraction."""

from repro.graph.algorithms import bfs_distances
from repro.graph.builder import GraphBuilder
from repro.indexing.oracle import BFSOracle, CountingOracle, DistanceOracle
from repro.indexing.pml import PrunedLandmarkLabeling
from tests.conftest import build_fig2_graph, build_path_graph


class TestBFSOracle:
    def test_matches_ground_truth(self):
        g = build_fig2_graph()
        oracle = BFSOracle(g)
        for u in range(g.num_vertices):
            truth = bfs_distances(g, u)
            for v in range(g.num_vertices):
                assert oracle.distance(u, v) == int(truth[v])

    def test_self_distance(self):
        oracle = BFSOracle(build_path_graph(3))
        assert oracle.distance(2, 2) == 0

    def test_within(self):
        oracle = BFSOracle(build_path_graph(5))
        assert oracle.within(0, 2, 2)
        assert not oracle.within(0, 3, 2)

    def test_unreachable_within_false(self):
        b = GraphBuilder()
        b.add_vertices("ab")
        oracle = BFSOracle(b.build())
        assert oracle.distance(0, 1) == -1
        assert not oracle.within(0, 1, 99)

    def test_query_count(self):
        oracle = BFSOracle(build_path_graph(3))
        oracle.distance(0, 1)
        oracle.within(0, 2, 5)
        assert oracle.query_count == 2

    def test_cache_reuse_swaps_endpoints(self):
        g = build_path_graph(6)
        oracle = BFSOracle(g)
        oracle.distance(0, 5)  # caches BFS from 0
        # Now query (3, 0): should reuse the cached source 0.
        assert oracle.distance(3, 0) == 3
        assert len(oracle._cache) == 1

    def test_cache_eviction(self):
        g = build_path_graph(10)
        oracle = BFSOracle(g, cache_size=2)
        for source in range(5):
            oracle.distance(source, 9)
        assert len(oracle._cache) <= 2


class TestCountingOracle:
    def test_delegates_and_counts(self):
        g = build_path_graph(4)
        inner = BFSOracle(g)
        counting = CountingOracle(inner)
        assert counting.distance(0, 3) == 3
        assert counting.within(0, 1, 1)
        assert counting.query_count == 2
        counting.reset()
        assert counting.query_count == 0


class TestProtocol:
    def test_implementations_satisfy_protocol(self):
        g = build_path_graph(3)
        assert isinstance(BFSOracle(g), DistanceOracle)
        assert isinstance(PrunedLandmarkLabeling.build(g), DistanceOracle)
        assert isinstance(CountingOracle(BFSOracle(g)), DistanceOracle)

    def test_pml_and_bfs_agree(self):
        g = build_fig2_graph()
        pml = PrunedLandmarkLabeling.build(g)
        bfs = BFSOracle(g)
        for u in range(g.num_vertices):
            for v in range(g.num_vertices):
                assert pml.distance(u, v) == bfs.distance(u, v)
