"""Tests for landmark orderings."""

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.indexing.order import degree_order, random_order
from tests.conftest import build_fig2_graph, build_path_graph


def test_degree_order_descending():
    g = build_fig2_graph()
    order = degree_order(g)
    degrees = [g.degree(int(v)) for v in order]
    assert degrees == sorted(degrees, reverse=True)


def test_degree_order_ties_by_id():
    g = build_path_graph(4)  # degrees [1,2,2,1]
    order = [int(v) for v in degree_order(g)]
    assert order == [1, 2, 0, 3]


def test_degree_order_is_permutation():
    g = build_fig2_graph()
    assert sorted(int(v) for v in degree_order(g)) == list(range(g.num_vertices))


def test_random_order_is_permutation_and_seeded():
    g = build_fig2_graph()
    a = random_order(g, seed=1)
    b = random_order(g, seed=1)
    c = random_order(g, seed=2)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)
    assert sorted(int(v) for v in a) == list(range(g.num_vertices))


def test_empty_graph():
    g = GraphBuilder().build()
    assert len(degree_order(g)) == 0
    assert len(random_order(g)) == 0
