"""Tests for the Pruned Landmark Labeling index."""

import random

import pytest

from repro.graph.algorithms import bfs_distances
from repro.graph.builder import GraphBuilder
from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.indexing.order import degree_order, random_order
from repro.indexing.pml import PrunedLandmarkLabeling
from tests.conftest import build_cycle_graph, build_fig2_graph, build_path_graph


def exhaustive_check(graph):
    """Assert PML == BFS on every pair."""
    pml = PrunedLandmarkLabeling.build(graph)
    for u in range(graph.num_vertices):
        truth = bfs_distances(graph, u)
        for v in range(graph.num_vertices):
            assert pml.distance(u, v) == int(truth[v]), (u, v)
    return pml


class TestCorrectness:
    def test_path(self):
        exhaustive_check(build_path_graph(8))

    def test_cycle(self):
        exhaustive_check(build_cycle_graph(9))

    def test_fig2(self):
        exhaustive_check(build_fig2_graph())

    def test_disconnected(self):
        b = GraphBuilder()
        b.add_vertices("abcd")
        b.add_edge(0, 1)
        b.add_edge(2, 3)
        pml = PrunedLandmarkLabeling.build(b.build())
        assert pml.distance(0, 1) == 1
        assert pml.distance(0, 2) == -1
        assert pml.distance(1, 3) == -1

    def test_single_vertex(self):
        b = GraphBuilder()
        b.add_vertex("A")
        pml = PrunedLandmarkLabeling.build(b.build())
        assert pml.distance(0, 0) == 0

    def test_random_er_graphs(self):
        for seed in range(3):
            exhaustive_check(erdos_renyi(40, 60, seed=seed))

    def test_random_ba_graph(self):
        exhaustive_check(barabasi_albert(80, 2, seed=1))

    def test_sampled_pairs_on_larger_graph(self):
        g = barabasi_albert(600, 2, seed=4)
        pml = PrunedLandmarkLabeling.build(g)
        rng = random.Random(0)
        for _ in range(200):
            u = rng.randrange(g.num_vertices)
            v = rng.randrange(g.num_vertices)
            assert pml.distance(u, v) == int(bfs_distances(g, u)[v])

    def test_custom_order_still_correct(self):
        g = erdos_renyi(40, 70, seed=2)
        order = random_order(g, seed=3)
        pml = PrunedLandmarkLabeling.build(g, order=order)
        for u in range(40):
            truth = bfs_distances(g, u)
            for v in range(40):
                assert pml.distance(u, v) == int(truth[v])


class TestWithin:
    def test_within_true_false(self):
        g = build_path_graph(6)
        pml = PrunedLandmarkLabeling.build(g)
        assert pml.within(0, 3, 3)
        assert not pml.within(0, 4, 3)

    def test_within_disconnected_false(self):
        b = GraphBuilder()
        b.add_vertices("ab")
        pml = PrunedLandmarkLabeling.build(b.build())
        assert not pml.within(0, 1, 10)

    def test_within_self(self):
        g = build_path_graph(3)
        pml = PrunedLandmarkLabeling.build(g)
        assert pml.within(1, 1, 0)


class TestIntrospection:
    def test_label_sizes_positive(self):
        g = build_fig2_graph()
        pml = PrunedLandmarkLabeling.build(g)
        assert all(pml.label_size(v) >= 1 for v in range(g.num_vertices))
        assert pml.total_label_entries() == sum(
            pml.label_size(v) for v in range(g.num_vertices)
        )
        assert pml.average_label_size() == pytest.approx(
            pml.total_label_entries() / g.num_vertices
        )

    def test_degree_order_shrinks_labels(self):
        # Degree order should never be (much) worse than random order.
        g = barabasi_albert(300, 2, seed=5)
        by_degree = PrunedLandmarkLabeling.build(g, order=degree_order(g))
        by_random = PrunedLandmarkLabeling.build(g, order=random_order(g, seed=1))
        assert by_degree.total_label_entries() <= by_random.total_label_entries()

    def test_landmark_rank(self):
        g = build_fig2_graph()
        order = degree_order(g)
        pml = PrunedLandmarkLabeling.build(g, order=order)
        for rank, v in enumerate(order):
            assert pml.landmark_rank(int(v)) == rank

    def test_query_count_increments(self):
        g = build_path_graph(4)
        pml = PrunedLandmarkLabeling.build(g)
        before = pml.query_count
        pml.distance(0, 3)
        assert pml.query_count == before + 1

    def test_repr(self):
        pml = PrunedLandmarkLabeling.build(build_path_graph(4))
        assert "PrunedLandmarkLabeling" in repr(pml)

    def test_graph_property(self):
        g = build_path_graph(4)
        assert PrunedLandmarkLabeling.build(g).graph is g

    def test_highest_degree_vertex_has_singleton_label(self):
        # The first landmark's own label is just itself.
        g = barabasi_albert(100, 2, seed=6)
        order = degree_order(g)
        pml = PrunedLandmarkLabeling.build(g, order=order)
        assert pml.label_size(int(order[0])) == 1
