"""Tests for two-hop neighborhood utilities."""

from repro.graph.algorithms import k_hop_neighborhood
from repro.graph.builder import GraphBuilder
from repro.indexing.twohop import two_hop_counts, two_hop_neighbors
from tests.conftest import build_cycle_graph, build_fig2_graph, build_path_graph


def test_counts_match_sets():
    g = build_fig2_graph()
    counts = two_hop_counts(g)
    for v in range(g.num_vertices):
        assert counts[v] == len(two_hop_neighbors(g, v))


def test_sets_match_bfs_two_hop():
    g = build_fig2_graph()
    for v in range(g.num_vertices):
        assert two_hop_neighbors(g, v) == k_hop_neighborhood(g, v, 2)


def test_path_counts():
    g = build_path_graph(5)
    # middle vertex sees 4 others within 2 hops
    assert two_hop_counts(g)[2] == 4
    assert two_hop_counts(g)[0] == 2


def test_cycle_counts():
    g = build_cycle_graph(6)
    assert all(c == 4 for c in two_hop_counts(g))


def test_excludes_self():
    g = build_cycle_graph(4)
    for v in range(4):
        assert v not in two_hop_neighbors(g, v)


def test_isolated_vertex():
    b = GraphBuilder()
    b.add_vertices("ab")
    g = b.build()
    assert list(two_hop_counts(g)) == [0, 0]
    assert two_hop_neighbors(g, 0) == set()
