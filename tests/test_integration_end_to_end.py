"""End-to-end correctness: the full pipeline vs brute force.

For a battery of random labeled graphs and random BPH queries, every
strategy (and BU) must return exactly the brute-force reference answer —
both the upper-bound V_Delta and the fully lower-bound-validated results.
"""

import random

import pytest

from repro.baseline.bu import BoomerUnaware
from repro.core.cost import GUILatencyConstants
from repro.core.preprocessor import make_context, preprocess
from repro.core.query import BPHQuery
from repro.gui.latency import LatencyModel
from repro.gui.simulator import SimulatedUser
from repro.gui.session import VisualSession
from repro.graph.generators import erdos_renyi
from repro.workload.generator import QueryInstance
from repro.workload.templates import get_template
from tests.conftest import brute_force_full_matches, brute_force_upper_matches


def random_setup(seed: int):
    """A random labeled graph + a random small BPH query on it."""
    rng = random.Random(seed)
    n = rng.randint(12, 22)
    m = rng.randint(n, 2 * n)
    labels = [rng.choice("XYZ") for _ in range(n)]
    graph = erdos_renyi(n, m, seed=seed, labels=labels)

    query = BPHQuery()
    num_q = rng.randint(2, 4)
    for i in range(num_q):
        query.add_vertex(rng.choice("XYZ"), vertex_id=i)
    # random connected structure: spanning path + extra edges
    edges = []
    for i in range(1, num_q):
        edges.append((rng.randrange(i), i))
    extra = rng.randint(0, num_q * (num_q - 1) // 2 - len(edges))
    candidates = [
        (a, b)
        for a in range(num_q)
        for b in range(a + 1, num_q)
        if (a, b) not in edges and (b, a) not in edges
    ]
    rng.shuffle(candidates)
    edges.extend(candidates[:extra])
    for u, v in edges:
        lower = rng.choice([1, 1, 1, 2])
        upper = lower + rng.randint(0, 2)
        query.add_edge(u, v, lower, upper)
    return graph, query


def keys(matches):
    return {tuple(sorted(m.items())) for m in matches}


def formulate_query(boomer_or_session, graph, query, strategy):
    """Drive the query through the visual pipeline action by action."""
    from repro.core.actions import NewEdge, NewVertex, Run
    from repro.core.blender import Boomer

    ctx = boomer_or_session
    boomer = Boomer(ctx, strategy=strategy)
    for qid in query.vertex_ids():
        boomer.apply(NewVertex(qid, query.label(qid)))
    for edge in query.edges():
        boomer.apply(NewEdge(edge.u, edge.v, edge.lower, edge.upper))
    boomer.apply(Run())
    return boomer


@pytest.mark.parametrize("seed", range(12))
def test_all_strategies_match_brute_force(seed):
    graph, query = random_setup(seed)
    pre = preprocess(graph, t_avg_samples=100)
    latency = GUILatencyConstants().scaled(0.0001)

    want_upper = brute_force_upper_matches(graph, query)
    want_full = brute_force_full_matches(graph, query)

    for strategy in ("IC", "DR", "DI"):
        ctx = make_context(pre, latency=latency)
        boomer = formulate_query(ctx, graph, query, strategy)
        got_upper = keys(boomer.run_result.matches.matches)
        assert got_upper == want_upper, (seed, strategy)

        got_full = {
            tuple(sorted(sub.assignment.items())) for sub in boomer.results()
        }
        assert got_full == want_full, (seed, strategy)

    bu = BoomerUnaware(make_context(pre, latency=latency))
    bu_result = bu.evaluate(query)
    assert keys(bu_result.matches) == want_upper, seed
    bu_full = {
        tuple(sorted(sub.assignment.items()))
        for sub in bu.results(bu_result, query)
    }
    assert bu_full == want_full, seed


@pytest.mark.parametrize("seed", range(6))
def test_pruning_disabled_same_answers(seed):
    graph, query = random_setup(seed + 100)
    pre = preprocess(graph, t_avg_samples=100)
    latency = GUILatencyConstants().scaled(0.0001)
    want = brute_force_upper_matches(graph, query)
    from repro.core.blender import Boomer
    from repro.core.actions import NewEdge, NewVertex, Run

    for pruning in (True, False):
        boomer = Boomer(make_context(pre, latency=latency), strategy="IC", pruning=pruning)
        for qid in query.vertex_ids():
            boomer.apply(NewVertex(qid, query.label(qid)))
        for edge in query.edges():
            boomer.apply(NewEdge(edge.u, edge.v, edge.lower, edge.upper))
        boomer.apply(Run())
        assert keys(boomer.run_result.matches.matches) == want, (seed, pruning)


@pytest.mark.parametrize("seed", range(4))
def test_forced_large_upper_same_answers(seed):
    graph, query = random_setup(seed + 200)
    pre = preprocess(graph, t_avg_samples=100)
    latency = GUILatencyConstants().scaled(0.0001)
    want = brute_force_upper_matches(graph, query)
    from repro.core.blender import Boomer
    from repro.core.actions import NewEdge, NewVertex, Run

    boomer = Boomer(
        make_context(pre, latency=latency), strategy="IC", force_large_upper=True
    )
    for qid in query.vertex_ids():
        boomer.apply(NewVertex(qid, query.label(qid)))
    for edge in query.edges():
        boomer.apply(NewEdge(edge.u, edge.v, edge.lower, edge.upper))
    boomer.apply(Run())
    assert keys(boomer.run_result.matches.matches) == want, seed


def test_subgraph_iso_special_case():
    """All bounds [1,1]: BPH matching reduces to subgraph isomorphism."""
    graph, _ = random_setup(1)
    pre = preprocess(graph, t_avg_samples=100)
    query = BPHQuery()
    query.add_vertex("X", vertex_id=0)
    query.add_vertex("Y", vertex_id=1)
    query.add_vertex("Z", vertex_id=2)
    query.add_edge(0, 1, 1, 1)
    query.add_edge(1, 2, 1, 1)
    assert query.is_subgraph_iso_query

    from repro.core.blender import Boomer
    from repro.core.actions import NewEdge, NewVertex, Run

    boomer = Boomer(make_context(pre), strategy="IC")
    for qid in query.vertex_ids():
        boomer.apply(NewVertex(qid, query.label(qid)))
    for edge in query.edges():
        boomer.apply(NewEdge(edge.u, edge.v, 1, 1))
    boomer.apply(Run())
    for match in boomer.run_result.matches:
        # every query edge maps to a real graph edge
        assert graph.has_edge(match[0], match[1])
        assert graph.has_edge(match[1], match[2])
        assert len(set(match.values())) == 3


def test_session_pipeline_on_template(dblp_tiny):
    """The GUI-simulated path agrees with direct BU evaluation."""
    from repro.workload.generator import instantiate

    instance = instantiate("Q3", dblp_tiny.graph, seed=3, dataset="dblp")
    session = VisualSession(dblp_tiny.make_context(), dblp_tiny.latency)
    result = session.run(instance, strategy="DI")
    bu = BoomerUnaware(dblp_tiny.make_context())
    bu_result = bu.evaluate(instance.build_query())
    assert keys(result.run.matches.matches) == keys(bu_result.matches)


def test_simulated_user_equivalent_to_direct_actions(dblp_tiny):
    """SimulatedUser streams produce the same matches as build_query + BU."""
    from repro.workload.generator import instantiate

    instance = instantiate("Q6", dblp_tiny.graph, seed=9, dataset="dblp")
    user = SimulatedUser(LatencyModel(dblp_tiny.latency, jitter=0.0))
    actions = user.formulate(instance)
    from repro.core.blender import Boomer

    boomer = Boomer(dblp_tiny.make_context(), strategy="DR")
    result = boomer.execute_stream(actions)
    bu = BoomerUnaware(dblp_tiny.make_context())
    assert keys(result.matches.matches) == keys(bu.evaluate(instance.build_query()).matches)
