"""Odds-and-ends coverage: small helpers and error paths."""

import pytest

from repro.core.cap import CAPIndex
from repro.errors import CAPStateError, IndexNotBuiltError
from repro.graph.algorithms import path_length_ok
from repro.indexing.pml import PrunedLandmarkLabeling, require_built
from tests.conftest import build_path_graph


class TestRequireBuilt:
    def test_passes_through_built_index(self):
        pml = PrunedLandmarkLabeling.build(build_path_graph(3))
        assert require_built(pml) is pml

    def test_raises_on_none(self):
        with pytest.raises(IndexNotBuiltError):
            require_built(None)


class TestPathLengthOk:
    def test_within(self):
        assert path_length_ok([1, 2, 3], 1, 2)
        assert path_length_ok([1, 2], 1, 1)

    def test_outside(self):
        assert not path_length_ok([1, 2, 3, 4], 1, 2)
        assert not path_length_ok([1], 1, 2)  # length 0 < lower


class TestCAPErrorPaths:
    def test_remove_missing_level(self):
        with pytest.raises(CAPStateError):
            CAPIndex().remove_level(5)

    def test_reset_missing_level(self):
        with pytest.raises(CAPStateError):
            CAPIndex().reset_level(5, [1])

    def test_prune_isolated_pruning_disabled(self):
        cap = CAPIndex(pruning_enabled=False)
        cap.add_level(0, [1])
        cap.add_level(1, [2])
        cap.begin_edge(0, 1)
        cap.finish_edge(0, 1)
        assert cap.prune_isolated(0, 1) == []
        assert cap.candidates(0) == {1}  # isolated but kept

    def test_processed_component_no_edges(self):
        cap = CAPIndex()
        cap.add_level(3, [1, 2])
        vertices, edges = cap.processed_component(3)
        assert vertices == {3}
        assert edges == set()


class TestExperimentsCLI:
    def test_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("exp1", "exp8"):
            assert exp_id in out

    def test_run_rejects_unknown_id(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["run", "exp99"])

    def test_requires_subcommand(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main([])


class TestDatasetOracleOverride:
    def test_bundle_context_with_bfs_oracle(self, dblp_tiny):
        from repro.indexing.oracle import BFSOracle

        oracle = BFSOracle(dblp_tiny.graph)
        ctx = dblp_tiny.make_context(oracle=oracle)
        assert ctx.oracle is oracle
        # Context distances still exact.
        from repro.graph.algorithms import distance

        assert ctx.distance(0, 1) == distance(dblp_tiny.graph, 0, 1)


class TestBoomerMisc:
    def test_probe_idle_zero_budget(self, fig2_ctx):
        from repro.core.blender import Boomer

        boomer = Boomer(fig2_ctx)
        assert boomer.probe_idle(0.0) == 0.0
        assert boomer.probe_idle(-1.0) == 0.0

    def test_execute_stream_with_action_stream_object(self, fig2_ctx):
        from repro.core.actions import ActionStream, NewVertex, Run
        from repro.core.blender import Boomer

        stream = ActionStream([NewVertex(0, "C"), Run()])
        result = Boomer(fig2_ctx).execute_stream(stream)
        assert result.num_matches == 1

    def test_visualize_returns_none_for_spurious_match(self, fig2_ctx):
        from repro.core.actions import NewEdge, NewVertex, Run
        from repro.core.blender import Boomer

        boomer = Boomer(fig2_ctx)
        boomer.apply(NewVertex(0, "X"))
        boomer.apply(NewVertex(1, "X"))
        boomer.apply(NewEdge(0, 1, 3, 3))  # X's are v9..v11
        boomer.apply(Run())
        spurious = [
            m for m in boomer.run_result.matches if boomer.visualize(m) is None
        ]
        validated = [
            m for m in boomer.run_result.matches if boomer.visualize(m) is not None
        ]
        # upper bound admits dist<=3 pairs; lower=3 requires an exact
        # 3-long simple path, which not every pair has
        assert len(validated) + len(spurious) == boomer.run_result.num_matches
