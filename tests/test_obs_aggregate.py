"""Cross-process metrics merging (the pool's ``metrics`` verb backend)."""

from __future__ import annotations

from repro.obs.aggregate import merge_snapshots, render_merged_text
from repro.obs.metrics import MetricsRegistry


class TestMergeSnapshots:
    def test_counters_and_gauges_sum(self):
        merged = merge_snapshots(
            [
                {"repro_runs_total": 3, "repro_sessions_open": 2},
                {"repro_runs_total": 4, "repro_sessions_open": 1},
                {"repro_runs_total": 1},
            ]
        )
        assert merged["repro_runs_total"] == 8
        assert merged["repro_sessions_open"] == 3

    def test_labeled_series_stay_distinct(self):
        merged = merge_snapshots(
            [
                {'repro_requests_total{op="run"}': 2},
                {'repro_requests_total{op="run"}': 3},
                {'repro_requests_total{op="matches"}': 5},
            ]
        )
        assert merged['repro_requests_total{op="run"}'] == 5
        assert merged['repro_requests_total{op="matches"}'] == 5

    def test_histograms_merge_element_wise(self):
        h1 = {"count": 2, "sum": 0.3, "buckets": {"0.1": 1, "1.0": 2, "+Inf": 2}}
        h2 = {"count": 1, "sum": 0.05, "buckets": {"0.1": 1, "1.0": 1, "+Inf": 1}}
        merged = merge_snapshots(
            [{"repro_latency_seconds": h1}, {"repro_latency_seconds": h2}]
        )
        out = merged["repro_latency_seconds"]
        assert out["count"] == 3
        assert out["sum"] == 0.35
        assert out["buckets"] == {"0.1": 2, "1.0": 3, "+Inf": 3}

    def test_merge_of_real_registries(self):
        """Two live registries merge exactly as their snapshots suggest."""
        regs = [MetricsRegistry(), MetricsRegistry()]
        for i, reg in enumerate(regs):
            reg.counter("repro_ticks_total", "ticks").inc(i + 1)
            reg.histogram("repro_wait_seconds", "waits").observe(0.01 * (i + 1))
        merged = merge_snapshots(reg.snapshot() for reg in regs)
        assert merged["repro_ticks_total"] == 3
        assert merged["repro_wait_seconds"]["count"] == 2

    def test_keys_sorted(self):
        merged = merge_snapshots([{"b_total": 1, "a_total": 2}])
        assert list(merged) == ["a_total", "b_total"]


class TestRenderMergedText:
    def test_kind_inference(self):
        text = render_merged_text(
            {
                "repro_runs_total": 7,
                "repro_sessions_open": 2,
                "repro_lat_seconds": {
                    "count": 1,
                    "sum": 0.5,
                    "buckets": {"1.0": 1, "+Inf": 1},
                },
            }
        )
        assert "# TYPE repro_runs_total counter" in text
        assert "# TYPE repro_sessions_open gauge" in text
        assert "# TYPE repro_lat_seconds histogram" in text
        assert 'repro_lat_seconds_bucket{le="1.0"} 1' in text
        assert "repro_lat_seconds_sum 0.5" in text
        assert "repro_lat_seconds_count 1" in text

    def test_labels_splice_into_bucket_lines(self):
        text = render_merged_text(
            {
                'repro_req_seconds{op="run"}': {
                    "count": 2,
                    "sum": 1.0,
                    "buckets": {"+Inf": 2},
                }
            }
        )
        assert 'repro_req_seconds_bucket{op="run",le="+Inf"} 2' in text
        assert 'repro_req_seconds_sum{op="run"} 1' in text

    def test_empty_snapshot_renders_empty(self):
        assert render_merged_text({}) == ""
