"""Span correctness for full blended sessions — healthy and faulted.

The acceptance criteria this file pins (ISSUE 3):

* a full blended session produces a span tree whose root duration is the
  sum of its phase children within tolerance, and the SRT / CAP-build
  time are recoverable from the spans alone;
* a session driven with an active :class:`~repro.faults.FaultPlan` still
  emits a *balanced* span tree (no orphaned open spans), including after
  a degradation-ladder fallback.
"""

import pytest

from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.core.preprocessor import make_context, preprocess
from repro.faults import FaultPlan, OracleFaultSpec
from repro.gui.session import VisualSession
from repro.obs import export
from repro.obs.trace import Tracer
from repro.resilience import ResilienceConfig
from tests.conftest import build_fig2_graph


@pytest.fixture(scope="module")
def pre():
    return preprocess(build_fig2_graph(), t_avg_samples=100)


def triangle_actions():
    return [
        NewVertex(0, "A", latency_after=0.002),
        NewVertex(1, "B", latency_after=0.002),
        NewEdge(0, 1, 1, 1, latency_after=0.002),
        NewVertex(2, "C", latency_after=0.002),
        NewEdge(1, 2, 1, 2, latency_after=0.002),
        NewEdge(0, 2, 1, 3, latency_after=0.002),
        Run(),
    ]


def run_traced(pre, *, strategy="DI", resilience=None, fault_plan=None):
    tracer = Tracer()
    session = VisualSession(
        make_context(pre),
        resilience=resilience,
        fault_plan=fault_plan,
        tracer=tracer,
    )
    result = session.run_actions(triangle_actions(), strategy=strategy)
    return result, tracer.export()


def span_names(records):
    return [r["name"] for r in records]


class TestHealthySessionSpans:
    def test_root_duration_equals_sum_of_phase_children(self, pre):
        result, records = run_traced(pre)
        decomp = export.srt_decomposition(records)
        assert decomp["runs"] == 1
        # The phases tile the session root within 5% tolerance: the only
        # uncovered time is the bookkeeping between span open/close calls.
        assert decomp["phase_coverage"] == pytest.approx(1.0, abs=0.05)
        assert decomp["session"] == pytest.approx(
            decomp["formulation"] + decomp["srt"], rel=0.05
        )

    def test_srt_and_cap_time_recoverable_from_spans_alone(self, pre):
        result, records = run_traced(pre)
        decomp = export.srt_decomposition(records)
        # Span-derived totals agree with the engine's own accounting.
        # Spans add per-span clock-read overhead to the engine-internal
        # numbers, so the match is loose but the magnitude must be right.
        assert decomp["srt"] == pytest.approx(
            result.run.srt_seconds, rel=0.5, abs=2e-3
        )
        assert decomp["cap_construction"] == pytest.approx(
            result.cap_construction_seconds, rel=0.5, abs=2e-3
        )
        assert decomp["cap_construction"] > 0.0
        assert decomp["edges_processed"] == 3

    def test_tree_shape_and_balance(self, pre):
        result, records = run_traced(pre)
        summary = export.summarize(records)
        assert summary["balanced"] is True
        assert summary["errors"] == 0
        roots = export.spans_to_tree(records)
        assert roots[0]["name"] == export.SESSION
        phases = [c["name"] for c in roots[0]["children"]]
        assert phases == [export.PHASE_FORMULATION, export.PHASE_RUN]
        # Every formulation child is an action span.
        form = roots[0]["children"][0]
        assert form["children"]
        assert all(
            c["name"].startswith(export.ACTION_PREFIX) for c in form["children"]
        )

    def test_visualize_spans_follow_the_root(self, pre):
        result, records = run_traced(pre)
        assert export.RESULT_VISUALIZE not in span_names(records)
        result.boomer.visualize(result.run.matches.matches[0])
        records = result.boomer.tracer.export()
        assert export.RESULT_VISUALIZE in span_names(records)
        (viz,) = [r for r in records if r["name"] == export.RESULT_VISUALIZE]
        assert viz["parent_id"] is None  # post-root top-level span

    def test_every_strategy_emits_the_same_taxonomy(self, pre):
        for strategy in ("IC", "DR", "DI"):
            result, records = run_traced(pre, strategy=strategy)
            names = set(span_names(records))
            assert export.SESSION in names
            assert export.PHASE_FORMULATION in names
            assert export.PHASE_RUN in names
            assert export.RUN_ENUMERATE in names
            assert export.summarize(records)["balanced"] is True


class TestFaultedSessionSpans:
    def test_degraded_session_tree_is_balanced(self, pre):
        """Permanent oracle death mid-stream -> BU fallback; the trace
        must still be a balanced forest with the degrade span present."""
        result, records = run_traced(
            pre,
            resilience=ResilienceConfig.default(),
            fault_plan=FaultPlan(seed=3, oracle=OracleFaultSpec(fail_after=0)),
        )
        assert result.degraded
        summary = export.summarize(records)
        assert summary["balanced"] is True
        assert summary["open"] == 0
        names = span_names(records)
        assert export.RUN_DEGRADE in names
        (degrade,) = [r for r in records if r["name"] == export.RUN_DEGRADE]
        assert degrade["attrs"]["rung"] == result.fallback

    def test_transient_faults_leave_no_orphans(self, pre):
        result, records = run_traced(
            pre,
            resilience=ResilienceConfig.default(),
            fault_plan=FaultPlan(
                seed=3, oracle=OracleFaultSpec(transient_rate=0.5, transient_burst=1)
            ),
        )
        assert not result.degraded
        assert export.summarize(records)["balanced"] is True

    def test_failed_action_span_carries_the_failure_status(self, pre):
        result, records = run_traced(
            pre,
            resilience=ResilienceConfig.default(),
            fault_plan=FaultPlan(seed=3, oracle=OracleFaultSpec(fail_after=0)),
        )
        statuses = {
            r["attrs"].get("status")
            for r in records
            if r["name"].startswith(export.ACTION_PREFIX)
        }
        assert "failed-deferred" in statuses

    def test_terminal_failure_closes_spans_with_the_error(self, pre):
        """No resilience: the oracle dies and the failing action raises.
        The action span records the error; the session root stays open
        (formulation may legitimately continue after a bad action) until
        ``finish`` — after which the forest is balanced."""
        tracer = Tracer()
        plan = FaultPlan(seed=3, oracle=OracleFaultSpec(fail_after=0))
        boomer = Boomer(
            plan.wrap_context(make_context(pre)), strategy="DR", tracer=tracer
        )
        with pytest.raises(Exception):
            for action in triangle_actions():
                boomer.apply(action)
        tracer.finish(error="session abandoned")
        records = tracer.export()
        summary = export.summarize(records)
        assert summary["balanced"] is True
        action_errors = [
            r["error"]
            for r in records
            if r["name"].startswith(export.ACTION_PREFIX) and r.get("error")
        ]
        assert action_errors  # the failing action carries its exception
        (root,) = [r for r in records if r["name"] == export.SESSION]
        assert root["error"] == "session abandoned"


class TestServiceTraceUnderFaults:
    def test_managed_session_trace_is_balanced_after_close(self, pre):
        from repro.service.manager import SessionManager

        manager = SessionManager(make_context(pre))
        session = manager.create_session(strategy="DI")
        for action in triangle_actions()[:-1]:
            manager.apply_action(session.id, action)
        manager.run(session.id)
        payload = manager.trace(session.id)
        assert payload["enabled"] is True
        assert payload["summary"]["balanced"] is True
        assert payload["decomposition"]["runs"] == 1
        manager.close_session(session.id)
