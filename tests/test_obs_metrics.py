"""Tests for :mod:`repro.obs.metrics`: instruments, registry, exposition.

The registry is process-wide state, so every test here builds its own
:class:`MetricsRegistry` — the shared module-level ``metrics`` object is
only touched to assert it exists and is separate.
"""

import json
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics,
    record_run_counters,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("hits_total")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total") is reg.counter("x_total")
        assert reg.counter("x_total", op="a") is not reg.counter("x_total", op="b")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(TypeError):
            reg.gauge("thing")
        with pytest.raises(TypeError):
            reg.histogram("thing")


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("open_sessions")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4.0


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        h = MetricsRegistry().histogram("lat_seconds", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        snap = h._snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(5.555)
        # Prometheus semantics: each bucket counts everything <= its bound.
        assert snap["buckets"]["0.01"] == 1
        assert snap["buckets"]["0.1"] == 2
        assert snap["buckets"]["1"] == 3
        assert snap["buckets"]["+Inf"] == 4

    def test_inf_bucket_appended_when_missing(self):
        h = MetricsRegistry().histogram("h_seconds", buckets=(1.0,))
        assert h.buckets[-1] == float("inf")

    def test_default_buckets_cover_service_latencies(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] == float("inf")


class TestRegistryExport:
    def test_snapshot_is_flat_and_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("a_total", op="run").inc(2)
        reg.gauge("b").set(7)
        reg.histogram("c_seconds").observe(0.3)
        snap = reg.snapshot()
        assert snap['a_total{op="run"}'] == 2
        assert snap["b"] == 7
        assert snap["c_seconds"]["count"] == 1
        json.dumps(snap)  # must not raise

    def test_delta_diffs_counters_and_histogram_counts(self):
        reg = MetricsRegistry()
        c = reg.counter("a_total")
        h = reg.histogram("c_seconds")
        c.inc(3)
        h.observe(0.1)
        before = reg.snapshot()
        c.inc(4)
        h.observe(0.2)
        d = MetricsRegistry.delta(before, reg.snapshot())
        assert d["a_total"] == 4
        assert d["c_seconds"]["count"] == 1
        assert d["c_seconds"]["sum"] == pytest.approx(0.2)

    def test_delta_counts_new_series_from_zero(self):
        reg = MetricsRegistry()
        before = reg.snapshot()
        reg.counter("fresh_total").inc(9)
        assert MetricsRegistry.delta(before, reg.snapshot())["fresh_total"] == 9

    def test_render_text_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "requests served", op="ping").inc(2)
        reg.histogram("lat_seconds", "latency", buckets=(1.0,), op="ping").observe(0.5)
        text = reg.render_text()
        assert "# HELP req_total requests served" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{op="ping"} 2' in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="1",op="ping"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf",op="ping"} 1' in text
        assert 'lat_seconds_count{op="ping"} 1' in text
        assert text.endswith("\n")

    def test_render_text_empty_registry(self):
        assert MetricsRegistry().render_text() == ""

    def test_reset_forgets_everything(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        reg.reset()
        assert reg.snapshot() == {}

    def test_concurrent_increments_do_not_lose_updates(self):
        reg = MetricsRegistry()
        c = reg.counter("races_total")

        def hammer():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestRecordRunCounters:
    COUNTERS = {
        "distance_queries": 40,
        "edges_processed": 3,
        "edges_deferred": 1,
        "pool_probes": 2,
        "pairs_added": 12,
    }

    def test_folds_engine_counters_into_registry(self):
        reg = MetricsRegistry()
        record_run_counters(
            self.COUNTERS,
            srt_seconds=0.25,
            cap_construction_seconds=0.1,
            outcome="ok",
            registry=reg,
        )
        snap = reg.snapshot()
        assert snap["repro_oracle_calls_total"] == 40
        assert snap["repro_cap_edges_processed_total"] == 3
        assert snap["repro_cap_edges_deferred_total"] == 1
        assert snap["repro_pool_probes_total"] == 2
        assert snap["repro_cap_pairs_added_total"] == 12
        assert snap['repro_runs_total{outcome="ok"}'] == 1
        assert snap["repro_run_srt_seconds"]["count"] == 1
        assert snap["repro_cap_construction_seconds"]["count"] == 1
        assert "repro_degradation_drops_total" not in "".join(snap)

    def test_degraded_run_records_the_rung(self):
        reg = MetricsRegistry()
        record_run_counters(
            self.COUNTERS,
            srt_seconds=1.0,
            cap_construction_seconds=0.0,
            outcome="degraded",
            fallback="bu-bfs",
            registry=reg,
        )
        snap = reg.snapshot()
        assert snap['repro_runs_total{outcome="degraded"}'] == 1
        assert snap['repro_degradation_drops_total{rung="bu-bfs"}'] == 1

    def test_defaults_to_the_process_registry(self):
        before = metrics.snapshot()
        record_run_counters(
            {}, srt_seconds=0.0, cap_construction_seconds=0.0, outcome="ok"
        )
        d = MetricsRegistry.delta(before, metrics.snapshot())
        assert d['repro_runs_total{outcome="ok"}'] == 1


class TestInstrumentClasses:
    def test_kinds(self):
        assert Counter.kind == "counter"
        assert Gauge.kind == "gauge"
        assert Histogram.kind == "histogram"

    def test_module_registry_is_a_registry(self):
        assert isinstance(metrics, MetricsRegistry)
