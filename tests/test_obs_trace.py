"""Tests for :mod:`repro.obs.trace` and :mod:`repro.obs.export`.

The tracer's contract is structural: spans nest under whatever is open,
every exit path closes them (balanced forest), the ring buffer bounds
memory, and all timing comes off the shared :mod:`repro.obs.clock` so a
single monkeypatch makes durations deterministic.
"""

import pytest

from repro.obs import clock, export
from repro.obs.trace import (
    DEFAULT_CAPACITY,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
)


@pytest.fixture()
def fake_clock(monkeypatch):
    """A controllable clock: ``tick(dt)`` advances every obs timestamp."""

    class FakeClock:
        def __init__(self):
            self.t = 100.0

        def tick(self, dt=1.0):
            self.t += dt

        def __call__(self):
            return self.t

    fake = FakeClock()
    monkeypatch.setattr(clock, "monotonic", fake)
    return fake


class TestSpanNesting:
    def test_children_nest_under_open_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
            with tracer.span("sibling") as sibling:
                pass
        assert parent.parent_id is None
        assert child.parent_id == parent.span_id
        assert grandchild.parent_id == child.span_id
        assert sibling.parent_id == parent.span_id

    def test_sequential_roots_form_a_forest(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        roots = [s for s in tracer.spans() if s.parent_id is None]
        assert [s.name for s in roots] == ["first", "second"]

    def test_start_allows_manual_multi_call_phases(self):
        tracer = Tracer()
        phase = tracer.start("phase")
        with tracer.span("step"):
            pass
        assert tracer.open_depth == 1
        phase.close()
        assert tracer.open_depth == 0
        assert not phase.open

    def test_attrs_set_and_chainable(self):
        tracer = Tracer()
        span = tracer.start("s", a=1).set(b=2).set(a=3)
        span.close()
        record = span.to_dict()
        assert record["attrs"] == {"a": 3, "b": 2}


class TestBalancedClose:
    def test_with_block_closes_on_exception_and_records_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        (span,) = tracer.spans()
        assert not span.open
        assert span.error == "RuntimeError: boom"

    def test_parent_close_truncates_open_descendants(self):
        tracer = Tracer()
        parent = tracer.start("parent")
        child = tracer.start("child")
        inner = tracer.start("inner")
        parent.close()
        assert tracer.open_depth == 0
        assert not child.open and not inner.open
        assert child.attrs["truncated"] is True
        assert inner.attrs["truncated"] is True
        assert "truncated" not in parent.attrs

    def test_close_is_idempotent(self, fake_clock):
        tracer = Tracer()
        span = tracer.start("s")
        fake_clock.tick(1.0)
        span.close()
        end = span.end
        fake_clock.tick(5.0)
        span.close(error="late")
        assert span.end == end
        assert span.error is None  # close-after-close changes nothing

    def test_finish_closes_everything_and_reports_count(self):
        tracer = Tracer()
        tracer.start("a")
        tracer.start("b")
        tracer.start("c")
        assert tracer.finish(error="teardown") == 3
        assert tracer.open_depth == 0
        assert all(s.error == "teardown" for s in tracer.spans())
        assert tracer.finish() == 0  # idempotent


class TestTiming:
    def test_durations_come_from_the_shared_clock(self, fake_clock):
        tracer = Tracer()
        span = tracer.start("timed")
        fake_clock.tick(2.5)
        span.close()
        assert span.duration == pytest.approx(2.5)
        assert span.start == pytest.approx(0.0)  # relative to tracer epoch

    def test_open_span_duration_reads_now(self, fake_clock):
        tracer = Tracer()
        span = tracer.start("open")
        fake_clock.tick(1.5)
        assert span.open
        assert span.duration == pytest.approx(1.5)


class TestRingBuffer:
    def test_oldest_closed_spans_are_dropped(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        names = [s.name for s in tracer.spans()]
        assert names == ["s2", "s3", "s4"]
        assert tracer.dropped == 2
        assert tracer.started == 5

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestExport:
    def test_export_is_sorted_and_json_ready(self, fake_clock):
        import json

        tracer = Tracer()
        with tracer.span("a"):
            fake_clock.tick()
            with tracer.span("b"):
                fake_clock.tick()
        records = tracer.export()
        assert [r["name"] for r in records] == ["a", "b"]
        assert all(r["duration"] is not None for r in records)
        json.dumps(records)  # must not raise

    def test_export_can_exclude_open_spans(self):
        tracer = Tracer()
        tracer.start("open")
        with tracer.span("closed"):
            pass
        assert [r["name"] for r in tracer.export(include_open=False)] == ["closed"]
        full = tracer.export(include_open=True)
        assert {r["name"] for r in full} == {"open", "closed"}
        (open_rec,) = [r for r in full if r["name"] == "open"]
        assert open_rec["open"] is True and open_rec["end"] is None

    def test_clear_forgets_everything(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.clear()
        assert tracer.export() == []


class TestNullTracer:
    def test_is_the_default_and_disabled(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert NULL_TRACER.enabled is False
        assert Tracer.enabled is True

    def test_all_operations_are_noops(self):
        span = NULL_TRACER.span("anything", x=1)
        assert span.set(y=2) is span
        assert span.close() is span
        with NULL_TRACER.span("ctx"):
            pass
        assert NULL_TRACER.finish() == 0
        assert list(NULL_TRACER.spans()) == []
        assert NULL_TRACER.export() == []
        NULL_TRACER.clear()

    def test_span_object_is_shared(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


def _session_like_records(fake_clock):
    """A miniature blended-session trace with known durations."""
    tracer = Tracer()
    root = tracer.start("session", strategy="DI")
    form = tracer.start("phase.formulation")
    with tracer.span("action.new_vertex", vertex=0):
        with tracer.span("cap.add_level", vertex=0):
            fake_clock.tick(1.0)
    with tracer.span("action.new_edge", edge="(0, 1)"):
        with tracer.span("cap.process_edge", edge="(0, 1)"):
            fake_clock.tick(2.0)
    form.close()
    run = tracer.start("phase.run")
    with tracer.span("run.drain"):
        fake_clock.tick(0.5)
    with tracer.span("run.enumerate"):
        fake_clock.tick(1.5)
    run.close()
    root.close()
    with tracer.span("result.visualize"):
        fake_clock.tick(0.25)
    return tracer.export()


class TestExportHelpers:
    def test_spans_to_tree_nests_by_parent(self, fake_clock):
        records = _session_like_records(fake_clock)
        roots = export.spans_to_tree(records)
        assert [r["name"] for r in roots] == ["session", "result.visualize"]
        session = roots[0]
        assert [c["name"] for c in session["children"]] == [
            "phase.formulation",
            "phase.run",
        ]

    def test_orphaned_spans_become_roots(self):
        records = [
            {"span_id": 7, "parent_id": 99, "name": "orphan", "start": 0.0, "end": 1.0}
        ]
        roots = export.spans_to_tree(records)
        assert [r["name"] for r in roots] == ["orphan"]

    def test_summarize_counts_and_balance(self, fake_clock):
        records = _session_like_records(fake_clock)
        summary = export.summarize(records)
        assert summary["spans"] == len(records) == 10
        assert summary["open"] == 0
        assert summary["errors"] == 0
        assert summary["balanced"] is True
        assert summary["by_name"]["cap.process_edge"]["count"] == 1

    def test_srt_decomposition_recovers_phase_times(self, fake_clock):
        records = _session_like_records(fake_clock)
        decomp = export.srt_decomposition(records)
        assert decomp["srt"] == pytest.approx(2.0)  # drain + enumerate
        assert decomp["cap_construction"] == pytest.approx(3.0)  # edge + level
        assert decomp["formulation"] == pytest.approx(3.0)
        assert decomp["visualize"] == pytest.approx(0.25)
        assert decomp["session"] == pytest.approx(5.0)
        # Phases tile the root: formulation + run == session duration.
        assert decomp["phase_coverage"] == pytest.approx(1.0)

    def test_render_tree_shows_nesting_and_durations(self, fake_clock):
        records = _session_like_records(fake_clock)
        text = export.render_tree(records)
        lines = text.splitlines()
        assert lines[0].startswith("session")
        assert any(line.startswith("  phase.run") for line in lines)
        assert any("run.enumerate" in line for line in lines)

    def test_render_tree_elides_excess_siblings(self):
        records = [
            {"span_id": 1, "parent_id": None, "name": "root", "start": 0.0, "end": 9.0}
        ]
        records += [
            {
                "span_id": i + 2,
                "parent_id": 1,
                "name": f"child{i}",
                "start": float(i),
                "end": float(i) + 0.5,
            }
            for i in range(50)
        ]
        text = export.render_tree(records, max_children=5)
        assert "more" in text  # elision marker
        assert "child49" not in text


class TestSharedClock:
    def test_default_capacity_constant(self):
        assert Tracer().capacity == DEFAULT_CAPACITY

    def test_timing_module_shares_the_clock(self, fake_clock):
        """One monkeypatch moves spans AND Stopwatch: the satellite fix."""
        from repro.utils.timing import Stopwatch

        tracer = Tracer()
        span = tracer.start("work")
        watch = Stopwatch().start()
        fake_clock.tick(4.0)
        span.close()
        assert watch.stop() == pytest.approx(span.duration) == pytest.approx(4.0)

    def test_utils_timing_now_is_deprecated(self):
        import warnings

        from repro.utils import timing

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            value = timing.now()
        assert isinstance(value, float)
        assert any(w.category is DeprecationWarning for w in caught)

    def test_span_is_only_created_by_tracer(self):
        tracer = Tracer()
        span = tracer.start("s")
        assert isinstance(span, Span)
        span.close()
