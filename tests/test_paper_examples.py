"""The paper's worked examples, step by step.

Encodes every concrete intermediate state the paper narrates for the
Figure 2/3 running example, so the reproduction is pinned to the text and
not only to final answers.  Vertex ids: paper's v1..v12 are 0..11.
"""

import pytest

from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.core.lowerbound import detect_path


V = lambda k: k - 1  # paper vertex number -> 0-based id


@pytest.fixture()
def boomer(fig2_ctx):
    return Boomer(fig2_ctx, strategy="IC")


class TestExample57CapConstruction:
    """Example 5.7 / Figure 3: the CAP index after each formulation step."""

    def test_steps_1_2_initial_levels(self, boomer):
        boomer.apply(NewVertex(0, "A"))
        boomer.apply(NewVertex(1, "B"))
        # Steps 1-2: V_q1 = {v1..v4}, V_q2 = {v5..v8}
        assert boomer.cap.candidates(0) == {V(1), V(2), V(3), V(4)}
        assert boomer.cap.candidates(1) == {V(5), V(6), V(7), V(8)}

    def test_steps_3_4_edge1_prunes_v1(self, boomer):
        boomer.apply(NewVertex(0, "A"))
        boomer.apply(NewVertex(1, "B"))
        boomer.apply(NewEdge(0, 1, 1, 1))  # e1.upper = 1, neighbor search
        # Step 4: v1 is isolated (no B within 1 hop) and pruned.
        assert boomer.cap.candidates(0) == {V(2), V(3), V(4)}
        assert boomer.cap.candidates(1) == {V(5), V(6), V(7), V(8)}

    def test_steps_5_7_edge2_prunes_v4_v7(self, boomer):
        boomer.apply(NewVertex(0, "A"))
        boomer.apply(NewVertex(1, "B"))
        boomer.apply(NewEdge(0, 1, 1, 1))
        boomer.apply(NewVertex(2, "C"))  # Step 5: V_q3 = {v12}
        assert boomer.cap.candidates(2) == {V(12)}
        boomer.apply(NewEdge(1, 2, 1, 2))  # Step 6: e2.upper = 2, two-hop
        # Step 7: v7 pruned from V_q2 (no path <= 2 to v12); its A-support
        # v4 cascades out of V_q1.
        assert boomer.cap.candidates(1) == {V(5), V(6), V(8)}
        assert boomer.cap.candidates(0) == {V(2), V(3)}

    def test_steps_8_10_edge3_no_pruning(self, boomer):
        boomer.apply(NewVertex(0, "A"))
        boomer.apply(NewVertex(1, "B"))
        boomer.apply(NewEdge(0, 1, 1, 1))
        boomer.apply(NewVertex(2, "C"))
        boomer.apply(NewEdge(1, 2, 1, 2))
        before_prunes = boomer.cap.prune_steps
        boomer.apply(NewEdge(0, 2, 1, 3))  # Step 9: large-upper search
        # Step 10: no isolated vertices identified; nothing pruned.
        assert boomer.cap.prune_steps == before_prunes
        assert boomer.cap.candidates(0) == {V(2), V(3)}
        assert boomer.cap.candidates(1) == {V(5), V(6), V(8)}
        assert boomer.cap.candidates(2) == {V(12)}


class TestSection51AIVSExamples:
    """Section 5.1's concrete AIVS values for the completed index."""

    @pytest.fixture()
    def completed(self, boomer):
        boomer.apply(NewVertex(0, "A"))
        boomer.apply(NewVertex(1, "B"))
        boomer.apply(NewEdge(0, 1, 1, 1))
        boomer.apply(NewVertex(2, "C"))
        boomer.apply(NewEdge(1, 2, 1, 2))
        boomer.apply(NewEdge(0, 2, 1, 3))
        return boomer

    def test_aivs_of_v2(self, completed):
        # "V_q1^q3(v2) = {v12} and V_q1^q2(v2) = {v5}"
        assert completed.cap.aivs(0, 2, V(2)) == {V(12)}
        assert completed.cap.aivs(0, 1, V(2)) == {V(5)}

    def test_v6_v12_connected(self, completed):
        # "(v6, v12) are connected in the index" (via edge (q2, q3))
        assert V(12) in completed.cap.aivs(1, 2, V(6))

    def test_v_delta_from_section_51(self, completed):
        completed.apply(Run())
        got = {
            tuple(sorted(m.items())) for m in completed.run_result.matches
        }
        want = {
            ((0, V(2)), (1, V(5)), (2, V(12))),
            ((0, V(3)), (1, V(6)), (2, V(12))),
            ((0, V(3)), (1, V(8)), (2, V(12))),
        }
        assert got == want


class TestSection54LowerBoundNarrative:
    """Section 5.4's shortest-path / detour walkthrough for V_P = {v3, v8, v12}."""

    def test_shortest_paths_selected_with_default_lowers(self, fig2_ctx):
        # dist(v3, v8) = 1 >= lower 1: the direct edge is selected.
        path = detect_path(fig2_ctx, V(3), V(8), 1, 1)
        assert path == [V(3), V(8)]
        # dist(v8, v12) = 1, dist(v12, v3) = 2 similarly qualify.
        assert detect_path(fig2_ctx, V(8), V(12), 1, 2) == [V(8), V(12)]
        assert len(detect_path(fig2_ctx, V(12), V(3), 1, 3)) - 1 == 2

    def test_bounds_3_3_forces_detour(self, fig2_ctx):
        # "if the edge bound of (q1, q3) is modified to [3,3], then BOOMER
        # needs to take a 'detour' ... instead of taking the shortest path"
        path = detect_path(fig2_ctx, V(3), V(12), 3, 3)
        assert path is not None
        assert len(path) - 1 == 3
        assert path[0] == V(3) and path[-1] == V(12)
        # the length-2 shortest route (v3 -> v8 -> v12) was not acceptable
        assert path != [V(3), V(8), V(12)]


class TestGeneralityExactSubgraphSearch:
    """Section 4: all-default bounds reduce BPH to exact subgraph search."""

    def test_default_bounds_give_subgraph_isomorphism(self, fig2_ctx, fig2_graph):
        boomer = Boomer(fig2_ctx, strategy="IC")
        boomer.apply(NewVertex(0, "B"))
        boomer.apply(NewVertex(1, "X"))
        boomer.apply(NewEdge(0, 1))  # default [1,1]
        assert boomer.query.is_subgraph_iso_query
        boomer.apply(Run())
        for match in boomer.run_result.matches:
            assert fig2_graph.has_edge(match[0], match[1])
