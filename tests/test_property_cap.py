"""Property-based tests on CAP construction and enumeration.

The big invariant: for any random graph, any random connected BPH query,
and any strategy, the blended pipeline's V_Delta equals the brute-force
reference, and the CAP index passes its internal consistency check.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.core.cost import GUILatencyConstants
from repro.core.preprocessor import make_context, preprocess
from repro.core.query import BPHQuery
from tests.conftest import brute_force_upper_matches
from tests.test_property_graph import labeled_graphs


@st.composite
def connected_queries(draw):
    num_q = draw(st.integers(min_value=1, max_value=4))
    labels = draw(st.lists(st.sampled_from("ABC"), min_size=num_q, max_size=num_q))
    query = BPHQuery()
    for i, label in enumerate(labels):
        query.add_vertex(label, vertex_id=i)
    edges = set()
    for i in range(1, num_q):
        parent = draw(st.integers(0, i - 1))
        edges.add((parent, i))
    possible = [
        (a, b)
        for a in range(num_q)
        for b in range(a + 1, num_q)
        if (a, b) not in edges
    ]
    if possible:
        extra = draw(st.lists(st.sampled_from(possible), unique=True, max_size=3))
        edges.update(extra)
    for u, v in sorted(edges):
        lower = draw(st.integers(1, 2))
        upper = lower + draw(st.integers(0, 2))
        query.add_edge(u, v, lower, upper)
    return query


def run_blended(graph, query, strategy, pruning=True):
    pre = preprocess(graph, t_avg_samples=50)
    ctx = make_context(pre, latency=GUILatencyConstants().scaled(1e-4))
    boomer = Boomer(ctx, strategy=strategy, pruning=pruning)
    for qid in query.vertex_ids():
        boomer.apply(NewVertex(qid, query.label(qid)))
    for edge in query.edges():
        boomer.apply(NewEdge(edge.u, edge.v, edge.lower, edge.upper))
    boomer.apply(Run())
    return boomer


@given(labeled_graphs(max_n=10), connected_queries(), st.sampled_from(["IC", "DR", "DI"]))
@settings(max_examples=40, deadline=None)
def test_v_delta_equals_brute_force(graph, query, strategy):
    boomer = run_blended(graph, query, strategy)
    got = {tuple(sorted(m.items())) for m in boomer.run_result.matches}
    want = brute_force_upper_matches(graph, query)
    assert got == want


@given(labeled_graphs(max_n=10), connected_queries())
@settings(max_examples=30, deadline=None)
def test_cap_consistency_after_construction(graph, query):
    boomer = run_blended(graph, query, "DI")
    boomer.cap.check_consistency(boomer.query)


@given(labeled_graphs(max_n=10), connected_queries())
@settings(max_examples=25, deadline=None)
def test_pruning_never_changes_answers(graph, query):
    with_pruning = run_blended(graph, query, "IC", pruning=True)
    without = run_blended(graph, query, "IC", pruning=False)
    key = lambda b: {tuple(sorted(m.items())) for m in b.run_result.matches}
    assert key(with_pruning) == key(without)
    # and pruning can only shrink the final index
    assert (
        with_pruning.cap.size_report().total <= without.cap.size_report().total
    )


@given(labeled_graphs(max_n=10), connected_queries())
@settings(max_examples=25, deadline=None)
def test_peak_at_least_final(graph, query):
    boomer = run_blended(graph, query, "IC")
    assert boomer.cap.peak_total >= boomer.cap.size_report().total


@given(labeled_graphs(max_n=9), connected_queries())
@settings(max_examples=25, deadline=None)
def test_every_match_satisfies_upper_bounds(graph, query):
    """Soundness proven directly from graph distances, not the reference."""
    from repro.graph.algorithms import bfs_distances

    boomer = run_blended(graph, query, "DR")
    for match in boomer.run_result.matches:
        assert len(set(match.values())) == len(match)
        for edge in query.edges():
            d = int(bfs_distances(graph, match[edge.u])[match[edge.v]])
            assert 0 < d <= edge.upper, (match, edge.key, d)
