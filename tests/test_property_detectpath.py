"""Property-based tests for DetectPath (just-in-time lower-bound search)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.context import EngineContext
from repro.core.cost import CostModel
from repro.core.lowerbound import detect_path
from repro.graph.algorithms import has_path_within
from repro.indexing.pml import PrunedLandmarkLabeling
from repro.indexing.twohop import two_hop_counts
from tests.test_property_graph import labeled_graphs


def make_ctx(graph):
    return EngineContext(
        graph=graph,
        oracle=PrunedLandmarkLabeling.build(graph),
        two_hop=two_hop_counts(graph),
        cost_model=CostModel(t_avg=1e-6, t_lat=1.0),
    )


@given(labeled_graphs(max_n=10), st.data())
@settings(max_examples=60, deadline=None)
def test_detect_path_complete_and_sound(graph, data):
    """detect_path finds a qualifying simple path iff one exists."""
    n = graph.num_vertices
    u = data.draw(st.integers(0, n - 1))
    v = data.draw(st.integers(0, n - 1))
    lower = data.draw(st.integers(1, 3))
    upper = lower + data.draw(st.integers(0, 2))
    ctx = make_ctx(graph)
    path = detect_path(ctx, u, v, lower, upper)
    exists = u != v and has_path_within(graph, u, v, lower, upper)
    if exists:
        assert path is not None
        assert path[0] == u and path[-1] == v
        assert lower <= len(path) - 1 <= upper
        assert len(set(path)) == len(path)
        for a, b in zip(path, path[1:]):
            assert graph.has_edge(a, b)
    else:
        assert path is None


@given(labeled_graphs(max_n=10), st.data())
@settings(max_examples=40, deadline=None)
def test_lower_one_finds_shortest(graph, data):
    """With lower=1 the distance-guided search returns a shortest path."""
    from repro.graph.algorithms import distance

    n = graph.num_vertices
    u = data.draw(st.integers(0, n - 1))
    v = data.draw(st.integers(0, n - 1))
    if u == v:
        return
    d = distance(graph, u, v)
    ctx = make_ctx(graph)
    path = detect_path(ctx, u, v, 1, max(d, 1) + 2 if d > 0 else 3)
    if d < 0:
        assert path is None
    else:
        assert path is not None
        assert len(path) - 1 == d
