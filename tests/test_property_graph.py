"""Property-based tests on the graph substrate (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.graph.algorithms import (
    bfs_distances,
    connected_components,
    distance,
    shortest_path,
)
from repro.graph.builder import GraphBuilder


@st.composite
def labeled_graphs(draw, max_n=14):
    n = draw(st.integers(min_value=1, max_value=max_n))
    labels = draw(
        st.lists(st.sampled_from("ABC"), min_size=n, max_size=n)
    )
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=3 * n)) if possible else []
    builder = GraphBuilder("hyp")
    builder.add_vertices(labels)
    for u, v in edges:
        builder.add_edge(u, v)
    return builder.build()


@given(labeled_graphs())
@settings(max_examples=60, deadline=None)
def test_handshake_lemma(graph):
    assert int(graph.degree_array().sum()) == 2 * graph.num_edges


@given(labeled_graphs())
@settings(max_examples=60, deadline=None)
def test_neighbors_symmetric(graph):
    for u, v in graph.iter_edges():
        assert graph.has_edge(u, v) and graph.has_edge(v, u)
        assert v in set(int(x) for x in graph.neighbors(u))
        assert u in set(int(x) for x in graph.neighbors(v))


@given(labeled_graphs())
@settings(max_examples=40, deadline=None)
def test_label_index_partition(graph):
    total = 0
    for label in graph.distinct_labels():
        ids = graph.vertices_with_label(label)
        total += len(ids)
        assert all(graph.label(int(v)) == label for v in ids)
    assert total == graph.num_vertices


@given(labeled_graphs(), st.data())
@settings(max_examples=50, deadline=None)
def test_distance_triangle_inequality(graph, data):
    n = graph.num_vertices
    u = data.draw(st.integers(0, n - 1))
    v = data.draw(st.integers(0, n - 1))
    w = data.draw(st.integers(0, n - 1))
    duv = distance(graph, u, v)
    dvw = distance(graph, v, w)
    duw = distance(graph, u, w)
    if duv >= 0 and dvw >= 0:
        assert duw >= 0
        assert duw <= duv + dvw


@given(labeled_graphs(), st.data())
@settings(max_examples=50, deadline=None)
def test_distance_symmetry(graph, data):
    n = graph.num_vertices
    u = data.draw(st.integers(0, n - 1))
    v = data.draw(st.integers(0, n - 1))
    assert distance(graph, u, v) == distance(graph, v, u)


@given(labeled_graphs())
@settings(max_examples=40, deadline=None)
def test_components_partition_vertices(graph):
    comps = connected_components(graph)
    flat = sorted(v for comp in comps for v in comp)
    assert flat == list(range(graph.num_vertices))
    # intra-component reachability, inter-component separation
    comp_of = {}
    for i, comp in enumerate(comps):
        for v in comp:
            comp_of[v] = i
    for u, v in graph.iter_edges():
        assert comp_of[u] == comp_of[v]


@given(labeled_graphs(), st.data())
@settings(max_examples=50, deadline=None)
def test_shortest_path_is_shortest_and_valid(graph, data):
    n = graph.num_vertices
    u = data.draw(st.integers(0, n - 1))
    v = data.draw(st.integers(0, n - 1))
    path = shortest_path(graph, u, v)
    d = int(bfs_distances(graph, u)[v])
    if d < 0:
        assert path is None
    else:
        assert path is not None
        assert len(path) - 1 == d
        assert path[0] == u and path[-1] == v
        for a, b in zip(path, path[1:]):
            assert graph.has_edge(a, b)


@given(labeled_graphs())
@settings(max_examples=30, deadline=None)
def test_induced_subgraph_of_all_vertices_is_isomorphic(graph):
    sub = graph.induced_subgraph(list(range(graph.num_vertices)))
    assert sub.num_vertices == graph.num_vertices
    assert sub.num_edges == graph.num_edges
