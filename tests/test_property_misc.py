"""Cheap property tests on value objects and formatting."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.actions import DeleteEdge, ModifyBounds, NewEdge, NewVertex, Run
from repro.core.query import Bounds, canonical_edge
from repro.errors import BoundsError
from repro.gui.recording import action_from_dict, action_to_dict
from repro.utils.fmt import ascii_table, format_count, format_duration


@given(st.integers(1, 100), st.integers(0, 100))
def test_bounds_valid_iff_lower_le_upper(lower, delta):
    bounds = Bounds(lower, lower + delta)
    assert bounds.contains(lower)
    assert bounds.contains(lower + delta)
    assert not bounds.contains(lower - 1)
    assert not bounds.contains(lower + delta + 1)


@given(st.integers(-5, 100), st.integers(-100, 100))
def test_bounds_rejects_invalid(lower, upper):
    valid = lower >= 1 and lower <= upper
    try:
        Bounds(lower, upper)
        created = True
    except BoundsError:
        created = False
    assert created == valid


@given(st.integers(0, 1000), st.integers(0, 1000))
def test_canonical_edge_properties(u, v):
    a, b = canonical_edge(u, v)
    assert a <= b
    assert {a, b} == {u, v}
    assert canonical_edge(v, u) == (a, b)


_actions = st.one_of(
    st.builds(
        NewVertex,
        vertex_id=st.integers(0, 50),
        label=st.one_of(st.text(max_size=8), st.integers(-5, 5)),
        latency_after=st.one_of(st.none(), st.floats(0, 10, allow_nan=False)),
    ),
    st.builds(
        NewEdge,
        u=st.integers(0, 50),
        v=st.integers(0, 50),
        lower=st.integers(1, 5),
        upper=st.integers(5, 10),
        latency_after=st.one_of(st.none(), st.floats(0, 10, allow_nan=False)),
    ),
    st.builds(
        ModifyBounds,
        u=st.integers(0, 50),
        v=st.integers(0, 50),
        lower=st.integers(1, 5),
        upper=st.integers(5, 10),
    ),
    st.builds(DeleteEdge, u=st.integers(0, 50), v=st.integers(0, 50)),
    st.builds(Run),
)


@given(_actions)
@settings(max_examples=100, deadline=None)
def test_action_recording_roundtrip(action):
    assert action_from_dict(action_to_dict(action)) == action


@given(st.floats(min_value=0, max_value=1e5, allow_nan=False))
def test_format_duration_total(seconds):
    text = format_duration(seconds)
    assert any(text.endswith(unit) for unit in ("us", "ms", "s", "min"))


@given(st.integers(0, 10**12))
def test_format_count_roundtrip(n):
    assert int(format_count(n).replace(",", "")) == n


@given(
    st.lists(
        st.lists(
            st.one_of(st.integers(-1000, 1000), st.text(max_size=6)),
            min_size=2,
            max_size=2,
        ),
        max_size=8,
    )
)
@settings(max_examples=50, deadline=None)
def test_ascii_table_rows_aligned(rows):
    out = ascii_table(["a", "b"], rows)
    body = [line for line in out.splitlines() if line.startswith(("|", "+"))]
    widths = {len(line) for line in body}
    assert len(widths) == 1  # every border/row line has the same width
