"""Property test: query modification is equivalent to re-formulation.

For random graphs, random connected queries, and a random sequence of
bound modifications, a session that formulates then *edits* must produce
exactly the matches of a fresh session formulating the final query.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.actions import ModifyBounds, NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.core.cost import GUILatencyConstants
from repro.core.preprocessor import make_context, preprocess
from tests.test_property_cap import connected_queries
from tests.test_property_graph import labeled_graphs


def formulate(boomer, query):
    for qid in query.vertex_ids():
        boomer.apply(NewVertex(qid, query.label(qid)))
    for edge in query.edges():
        boomer.apply(NewEdge(edge.u, edge.v, edge.lower, edge.upper))


def keys(run_result):
    return {tuple(sorted(m.items())) for m in run_result.matches}


@given(
    labeled_graphs(max_n=10),
    connected_queries(),
    st.data(),
)
@settings(max_examples=30, deadline=None)
def test_bound_edits_equal_fresh_formulation(graph, query, data):
    if query.num_edges == 0:
        return
    pre = preprocess(graph, t_avg_samples=50)
    latency = GUILatencyConstants().scaled(1e-4)

    # Draw a random sequence of 1-3 bound edits on random edges.
    edits = []
    num_edits = data.draw(st.integers(1, 3))
    edge_list = query.edges()
    for _ in range(num_edits):
        edge = edge_list[data.draw(st.integers(0, len(edge_list) - 1))]
        lower = data.draw(st.integers(1, 3))
        upper = lower + data.draw(st.integers(0, 2))
        edits.append((edge.u, edge.v, lower, upper))

    strategy = data.draw(st.sampled_from(["IC", "DR", "DI"]))
    edited = Boomer(make_context(pre, latency=latency), strategy=strategy)
    formulate(edited, query)
    for u, v, lower, upper in edits:
        edited.apply(ModifyBounds(u, v, lower, upper))
    edited.apply(Run())

    final_query = query.copy()
    for u, v, lower, upper in edits:
        final_query.set_bounds(u, v, lower, upper)
    fresh = Boomer(make_context(pre, latency=latency), strategy="IC")
    formulate(fresh, final_query)
    fresh.apply(Run())

    assert keys(edited.run_result) == keys(fresh.run_result)
    edited.cap.check_consistency(edited.query)


@given(
    labeled_graphs(max_n=10),
    connected_queries(),
    st.data(),
)
@settings(max_examples=25, deadline=None)
def test_deletion_equals_fresh_formulation(graph, query, data):
    # Find an edge whose removal keeps the query connected (cycle edge).
    removable = []
    for edge in query.edges():
        probe = query.copy()
        probe.remove_edge(edge.u, edge.v)
        if probe.is_connected():
            removable.append(edge)
    if not removable:
        return  # tree query: every deletion disconnects; nothing to test
    target = removable[data.draw(st.integers(0, len(removable) - 1))]
    strategy = data.draw(st.sampled_from(["IC", "DR", "DI"]))

    from repro.core.actions import DeleteEdge

    pre = preprocess(graph, t_avg_samples=50)
    latency = GUILatencyConstants().scaled(1e-4)
    edited = Boomer(make_context(pre, latency=latency), strategy=strategy)
    formulate(edited, query)
    edited.apply(DeleteEdge(target.u, target.v))
    edited.apply(Run())

    final_query = query.copy()
    final_query.remove_edge(target.u, target.v)
    fresh = Boomer(make_context(pre, latency=latency), strategy="IC")
    formulate(fresh, final_query)
    fresh.apply(Run())

    assert keys(edited.run_result) == keys(fresh.run_result)
    edited.cap.check_consistency(edited.query)
