"""Property-based tests on the PML index: exactness against BFS."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.graph.algorithms import bfs_distances
from repro.indexing.pml import PrunedLandmarkLabeling
from repro.indexing.order import random_order
from tests.test_property_graph import labeled_graphs


@given(labeled_graphs())
@settings(max_examples=40, deadline=None)
def test_pml_exact_on_all_pairs(graph):
    pml = PrunedLandmarkLabeling.build(graph)
    for u in range(graph.num_vertices):
        truth = bfs_distances(graph, u)
        for v in range(graph.num_vertices):
            assert pml.distance(u, v) == int(truth[v])


@given(labeled_graphs(), st.integers(0, 10))
@settings(max_examples=25, deadline=None)
def test_pml_order_invariance(graph, seed):
    """Any landmark order gives exact answers (sizes differ, not results)."""
    pml = PrunedLandmarkLabeling.build(graph, order=random_order(graph, seed=seed))
    for u in range(graph.num_vertices):
        truth = bfs_distances(graph, u)
        for v in range(graph.num_vertices):
            assert pml.distance(u, v) == int(truth[v])


@given(labeled_graphs(), st.data())
@settings(max_examples=40, deadline=None)
def test_within_consistent_with_distance(graph, data):
    pml = PrunedLandmarkLabeling.build(graph)
    n = graph.num_vertices
    u = data.draw(st.integers(0, n - 1))
    v = data.draw(st.integers(0, n - 1))
    upper = data.draw(st.integers(0, 6))
    d = pml.distance(u, v)
    assert pml.within(u, v, upper) == (0 <= d <= upper)


@given(labeled_graphs())
@settings(max_examples=30, deadline=None)
def test_every_vertex_labeled_at_least_once(graph):
    """Each vertex's label list covers itself (its own pruned BFS visit)."""
    pml = PrunedLandmarkLabeling.build(graph)
    for v in range(graph.num_vertices):
        assert pml.label_size(v) >= 1
