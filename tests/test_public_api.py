"""The frozen public API surface of the :mod:`repro` package.

``repro.__all__`` is a contract: programs written against the facade
(``from repro import Boomer, Graph, ServiceClient, metrics``) must not
break because a refactor re-exported something by accident or dropped a
name.  This test pins the exact list — growing or shrinking the public
surface requires editing EXPECTED here, deliberately, in the same PR.
"""

import pytest

import repro

#: The one and only list of public names.  Keep sorted per section to
#: match ``repro/__init__.py``.
EXPECTED = [
    # engine
    "Boomer",
    "BlenderEngine",
    "BPHQuery",
    "Bounds",
    "CAPIndex",
    "Graph",
    "GUILatencyConstants",
    "NewEdge",
    "NewVertex",
    "ModifyBounds",
    "DeleteEdge",
    "Run",
    "RunResult",
    "make_context",
    "preprocess",
    "BoomerUnaware",
    # harness
    "VisualSession",
    "SessionResult",
    # service
    "QueryServer",
    "ServiceClient",
    "SessionManager",
    # observability
    "obs",
    "Tracer",
    "NullTracer",
    "MetricsRegistry",
    "metrics",
    # errors & resilience
    "ReproError",
    "ResilienceError",
    "DeadlineExceededError",
    "RetryExhaustedError",
    "CAPCorruptionError",
    "DegradedModeError",
    "FaultPlan",
    "Deadline",
    "ResilienceConfig",
    "RetryPolicy",
    "__version__",
]


def test_public_surface_is_exactly_the_frozen_list():
    added = set(repro.__all__) - set(EXPECTED)
    removed = set(EXPECTED) - set(repro.__all__)
    assert not added, (
        f"names added to repro.__all__ without updating the API freeze: "
        f"{sorted(added)}"
    )
    assert not removed, (
        f"names removed from repro.__all__ — breaking change: {sorted(removed)}"
    )


def test_no_duplicates_in_all():
    assert len(repro.__all__) == len(set(repro.__all__))


@pytest.mark.parametrize("name", EXPECTED)
def test_every_public_name_is_importable(name):
    assert hasattr(repro, name), f"repro.{name} listed in __all__ but missing"
    assert getattr(repro, name) is not None


def test_star_import_exports_only_the_public_surface():
    namespace: dict = {}
    exec("from repro import *", namespace)
    imported = {k for k in namespace if not k.startswith("__")}
    assert imported == {n for n in EXPECTED if not n.startswith("__")}


def test_version_is_a_semver_string():
    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)


def test_facade_names_are_the_canonical_objects():
    """The facade re-exports, never wraps: identity with the home module."""
    from repro.core.blender import Boomer
    from repro.graph.graph import Graph
    from repro.gui.session import VisualSession
    from repro.obs.metrics import MetricsRegistry, metrics
    from repro.obs.trace import Tracer
    from repro.service.client import ServiceClient
    from repro.service.server import QueryServer

    assert repro.Boomer is Boomer
    assert repro.Graph is Graph
    assert repro.VisualSession is VisualSession
    assert repro.QueryServer is QueryServer
    assert repro.ServiceClient is ServiceClient
    assert repro.Tracer is Tracer
    assert repro.MetricsRegistry is MetricsRegistry
    assert repro.metrics is metrics
    assert isinstance(repro.metrics, MetricsRegistry)


def test_obs_submodule_is_publicly_reachable():
    assert repro.obs.Tracer is repro.Tracer
    assert repro.obs.metrics is repro.metrics
    assert callable(repro.obs.clock.now)
