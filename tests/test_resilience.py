"""Tests for the resilience layer: retry, deadline, checker, degradation.

Includes the acceptance scenarios of the resilience work: a permanent
oracle failure mid-stream leaves a *degraded* session whose match set
equals a clean BU run, and a transient failure is retried away so the
CAP-path result equals the fault-free result.
"""

import pytest

from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.core.modification import quarantine_edge
from repro.core.preprocessor import make_context, preprocess
from repro.errors import (
    ActionError,
    CAPCorruptionError,
    CAPStateError,
    DeadlineExceededError,
    DegradedModeError,
    ReproError,
    RetryExhaustedError,
)
from repro.faults import CAPCorruptionSpec, CAPCorruptor, FaultPlan, OracleFaultSpec
from repro.gui.session import VisualSession
from repro.resilience import (
    CAPInvariantChecker,
    Deadline,
    ResilienceConfig,
    RetryPolicy,
)
from tests.conftest import build_fig2_graph


@pytest.fixture(scope="module")
def pre():
    return preprocess(build_fig2_graph(), t_avg_samples=100)


def triangle_actions():
    return [
        NewVertex(0, "A", latency_after=0.002),
        NewVertex(1, "B", latency_after=0.002),
        NewEdge(0, 1, 1, 1, latency_after=0.002),
        NewVertex(2, "C", latency_after=0.002),
        NewEdge(1, 2, 1, 2, latency_after=0.002),
        NewEdge(0, 2, 1, 3, latency_after=0.002),
        Run(),
    ]


def match_set(matches):
    return sorted(tuple(sorted(m.items())) for m in matches)


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_recovers_after_transient_failures(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("blip")
            return "ok"

        assert RetryPolicy(max_attempts=3, base_delay=0.0).call(flaky) == "ok"
        assert len(attempts) == 3

    def test_exhaustion_wraps_and_chains(self):
        def dead():
            raise RuntimeError("down")

        policy = RetryPolicy(max_attempts=2, base_delay=0.0)
        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.call(dead, label="oracle probe")
        err = excinfo.value
        assert err.operation == "oracle probe"
        assert err.attempts == 2
        assert isinstance(err.last_error, RuntimeError)
        assert err.__cause__ is err.last_error

    def test_repro_errors_never_retried(self):
        attempts = []

        def broken():
            attempts.append(1)
            raise CAPStateError("logic bug")

        with pytest.raises(CAPStateError):
            RetryPolicy(max_attempts=5, base_delay=0.0).call(broken)
        assert len(attempts) == 1

    def test_backoff_schedule_clamped(self):
        policy = RetryPolicy(base_delay=0.01, backoff=10.0, max_delay=0.05)
        assert policy.delay_for(1) == pytest.approx(0.01)
        assert policy.delay_for(2) == pytest.approx(0.05)  # clamped
        assert policy.delay_for(5) == pytest.approx(0.05)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)

    def test_on_retry_hook_sees_each_failure(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise RuntimeError("blip")
            return 1

        RetryPolicy(max_attempts=3, base_delay=0.0).call(
            flaky, on_retry=lambda attempt, exc: seen.append((attempt, str(exc)))
        )
        assert seen == [(1, "blip"), (2, "blip")]

    def test_refuses_to_sleep_past_deadline(self):
        deadline = Deadline(10.0)

        def dead():
            raise RuntimeError("down")

        # backoff far beyond the remaining budget: fail fast instead.
        policy = RetryPolicy(max_attempts=3, base_delay=99.0, max_delay=99.0)
        with pytest.raises(DeadlineExceededError, match="backing off"):
            policy.call(dead, deadline=deadline)


# ---------------------------------------------------------------------------
# Deadline
# ---------------------------------------------------------------------------
class TestDeadline:
    def test_unlimited_checkpoints_are_noops(self):
        deadline = Deadline.unlimited()
        for _ in range(100):
            deadline.checkpoint("loop")
        assert deadline.checkpoints == 0  # not even counted

    def test_zero_budget_fires_immediately(self):
        deadline = Deadline(0.0, label="drain")
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.checkpoint()
        assert "drain" in str(excinfo.value)
        assert excinfo.value.limit == 0.0

    def test_generous_budget_passes(self):
        deadline = Deadline(60.0)
        deadline.checkpoint("fast op")
        assert deadline.checkpoints == 1

    def test_subbudget_never_exceeds_remaining(self):
        assert Deadline(None).subbudget(0.5).limit == pytest.approx(0.5)
        assert Deadline(60.0).subbudget(0.5).limit == pytest.approx(0.5)
        assert Deadline(0.0).subbudget(0.5).limit <= 0.0

    def test_is_timeout_error(self):
        # Callers with generic timeout handling catch it without imports.
        with pytest.raises(TimeoutError):
            Deadline(0.0).checkpoint()


# ---------------------------------------------------------------------------
# CAPInvariantChecker
# ---------------------------------------------------------------------------
class TestChecker:
    def _session(self, pre, resilience=None):
        boomer = Boomer(
            make_context(pre), strategy="IC", resilience=resilience
        )
        for action in triangle_actions()[:-1]:
            boomer.apply(action)
        return boomer

    def test_clean_index_audits_clean(self, pre):
        boomer = self._session(pre)
        report = CAPInvariantChecker().audit(boomer.cap, boomer.query, boomer.engine.ctx)
        assert report.clean
        assert report.edges_checked == 3
        assert report.pairs_sampled > 0

    def test_audit_finds_every_corruption_mode(self, pre):
        for spec in (
            CAPCorruptionSpec(drop_pair_count=1),
            CAPCorruptionSpec(bogus_pair_count=1),
            CAPCorruptionSpec(drop_candidate_count=1),
        ):
            boomer = self._session(pre)
            CAPCorruptor(spec, seed=2).corrupt(boomer.cap)
            report = CAPInvariantChecker().audit(
                boomer.cap, boomer.query, boomer.engine.ctx
            )
            assert not report.clean, f"{spec} escaped the audit"
            assert report.corrupt_edges

    def test_repair_restores_clean_state_and_answers(self, pre):
        clean = self._session(pre)
        clean.apply(Run())
        expected = match_set(clean.run_result.matches)

        boomer = self._session(pre, resilience=ResilienceConfig.default())
        CAPCorruptor(
            CAPCorruptionSpec(drop_pair_count=2, bogus_pair_count=1), seed=2
        ).corrupt(boomer.cap)
        checker = CAPInvariantChecker()
        report = checker.audit(boomer.cap, boomer.query, boomer.engine.ctx)
        assert not report.clean
        repair = checker.repair(boomer.engine, report)
        assert repair.quarantined
        assert repair.rebuilt_edges > 0
        post = checker.audit(boomer.cap, boomer.query, boomer.engine.ctx)
        assert post.clean
        boomer.apply(Run())
        assert match_set(boomer.run_result.matches) == expected

    def test_unrepairable_raises_corruption_error(self, pre):
        boomer = self._session(pre, resilience=ResilienceConfig.default())
        CAPCorruptor(CAPCorruptionSpec(drop_pair_count=1), seed=2).corrupt(boomer.cap)
        # Kill the oracle so the rebuild fails: repair cannot converge.
        dead = FaultPlan(seed=1, oracle=OracleFaultSpec(fail_after=0))
        boomer.engine.ctx = dead.wrap_context(boomer.engine.ctx)
        with pytest.raises((CAPCorruptionError, RetryExhaustedError)):
            CAPInvariantChecker().repair(boomer.engine)


# ---------------------------------------------------------------------------
# quarantine_edge (modification-layer repair primitive)
# ---------------------------------------------------------------------------
class TestQuarantine:
    def test_quarantine_repools_without_reprocessing(self, pre):
        boomer = Boomer(make_context(pre), strategy="IC")
        for action in triangle_actions()[:-1]:
            boomer.apply(action)
        assert boomer.cap.is_processed(0, 1)
        report = quarantine_edge(boomer.engine, 0, 1)
        assert report.kind == "quarantine"
        # The whole processed component is rolled back and re-pooled,
        # but NOT eagerly re-processed (even under IC).
        assert not boomer.cap.is_processed(0, 1)
        assert boomer.engine.pool.contains(0, 1)
        assert (0, 1) in report.repooled_edges

    def test_quarantine_unprocessed_edge_rejected(self, pre):
        boomer = Boomer(make_context(pre), strategy="DR")
        boomer.apply(NewVertex(0, "A"))
        boomer.apply(NewVertex(1, "B"))
        boomer.apply(NewEdge(0, 1, 1, 2))
        quarantine_edge(boomer.engine, 0, 1)  # now pooled, not processed
        with pytest.raises(CAPStateError, match="not processed"):
            quarantine_edge(boomer.engine, 0, 1)


# ---------------------------------------------------------------------------
# Degradation ladder + terminal states (acceptance scenarios)
# ---------------------------------------------------------------------------
class TestDegradation:
    def test_acceptance_permanent_failure_degrades_to_bu_matches(self, pre):
        """Seeded e2e: permanent oracle death mid-stream -> session
        completes degraded, match set equal to a clean BU run."""
        from repro.baseline.bu import BoomerUnaware

        session = VisualSession(
            make_context(pre),
            resilience=ResilienceConfig.default(),
            fault_plan=FaultPlan(seed=3, oracle=OracleFaultSpec(fail_after=0)),
        )
        result = session.run_actions(triangle_actions(), strategy="DI")
        assert result.degraded
        assert result.fallback in ("bu-oracle", "bu-bfs")
        assert any(r.status == "failed-deferred" for r in result.boomer.action_reports)

        clean_bu = BoomerUnaware(make_context(pre)).evaluate(result.boomer.query)
        assert match_set(result.run.matches) == match_set(clean_bu.matches)

    def test_acceptance_transient_failure_recovers_on_cap_path(self, pre):
        clean = VisualSession(make_context(pre)).run_actions(
            triangle_actions(), strategy="DI"
        )
        faulty = VisualSession(
            make_context(pre),
            resilience=ResilienceConfig.default(),
            fault_plan=FaultPlan(
                seed=3, oracle=OracleFaultSpec(transient_rate=0.5, transient_burst=1)
            ),
        ).run_actions(triangle_actions(), strategy="DI")
        assert not faulty.degraded
        assert match_set(faulty.run.matches) == match_set(clean.run.matches)

    def test_degradation_reports_on_run_result(self, pre):
        plan = FaultPlan(seed=3, oracle=OracleFaultSpec(fail_after=0))
        boomer = Boomer(
            plan.wrap_context(make_context(pre)),
            strategy="DR",
            resilience=ResilienceConfig.default(),
        )
        for action in triangle_actions():
            boomer.apply(action)
        run = boomer.run_result
        assert run.degraded
        assert run.fallback == "bu-bfs"  # session oracle is dead: rung 2 skipped
        assert "RetryExhaustedError" in run.degradation_reason
        assert run.matches.extras["fallback"] == "bu-bfs"

    def test_degradation_disabled_raises(self, pre):
        plan = FaultPlan(seed=3, oracle=OracleFaultSpec(fail_after=0))
        config = ResilienceConfig(degrade_to_bu=False, retry=RetryPolicy(max_attempts=2))
        boomer = Boomer(
            plan.wrap_context(make_context(pre)), strategy="DR", resilience=config
        )
        with pytest.raises(RetryExhaustedError):
            for action in triangle_actions():
                boomer.apply(action)

    def test_all_rungs_failing_raises_degraded_mode_error(self, pre, monkeypatch):
        from repro.baseline import bu as bu_module

        def exploding_evaluate(self, query):
            raise RuntimeError("BU exploded too")

        monkeypatch.setattr(bu_module.BoomerUnaware, "evaluate", exploding_evaluate)
        plan = FaultPlan(seed=3, oracle=OracleFaultSpec(fail_after=0))
        boomer = Boomer(
            plan.wrap_context(make_context(pre)),
            strategy="DR",
            resilience=ResilienceConfig.default(),
        )
        with pytest.raises(DegradedModeError, match="every degradation rung failed"):
            for action in triangle_actions():
                boomer.apply(action)

    def test_deadline_exceeded_never_degrades(self, pre):
        boomer = Boomer(
            make_context(pre),
            strategy="DR",
            resilience=ResilienceConfig(deadline_seconds=0.0),
        )
        with pytest.raises(DeadlineExceededError):
            for action in triangle_actions():
                boomer.apply(action)
        assert boomer.run_result is None

    def test_failed_run_is_terminal(self, pre):
        boomer = Boomer(
            make_context(pre),
            strategy="DR",
            resilience=ResilienceConfig(deadline_seconds=0.0),
        )
        with pytest.raises(DeadlineExceededError):
            for action in triangle_actions():
                boomer.apply(action)
        with pytest.raises(CAPStateError, match="terminal failed-Run state"):
            boomer.apply(NewVertex(9, "A"))

    def test_successful_run_still_raises_action_error(self, pre):
        # Regression: the terminal-state guard must not change the
        # long-standing contract for *successful* runs.
        boomer = Boomer(make_context(pre), strategy="IC")
        for action in triangle_actions():
            boomer.apply(action)
        with pytest.raises(ActionError, match="already executed"):
            boomer.apply(NewVertex(9, "A"))

    def test_verify_on_run_repairs_corruption(self, pre):
        session = VisualSession(
            make_context(pre),
            resilience=ResilienceConfig.default(),  # audit auto-forced on
            fault_plan=FaultPlan(
                seed=5, cap=CAPCorruptionSpec(drop_pair_count=1, bogus_pair_count=1)
            ),
        )
        clean = VisualSession(make_context(pre)).run_actions(
            triangle_actions(), strategy="DI"
        )
        result = session.run_actions(triangle_actions(), strategy="DI")
        assert not result.degraded  # repaired in place, CAP path kept
        assert result.run.cap_repaired_edges > 0
        assert match_set(result.run.matches) == match_set(clean.run.matches)


# ---------------------------------------------------------------------------
# ResilienceConfig postures
# ---------------------------------------------------------------------------
class TestConfig:
    def test_postures(self):
        default = ResilienceConfig.default()
        assert default.degrade_to_bu and not default.verify_cap_on_run
        strict = ResilienceConfig.strict()
        assert strict.retry.max_attempts == 1
        assert not strict.degrade_to_bu and not strict.absorb_action_failures
        paranoid = ResilienceConfig.paranoid(deadline_seconds=5.0)
        assert paranoid.verify_cap_on_run
        assert paranoid.deadline_seconds == 5.0

    def test_config_is_immutable(self):
        with pytest.raises(Exception):
            ResilienceConfig.default().degrade_to_bu = False

    def test_exported_from_repro_root(self):
        import repro

        for name in ("ResilienceConfig", "RetryPolicy", "Deadline", "FaultPlan"):
            assert hasattr(repro, name)
