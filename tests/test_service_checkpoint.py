"""Session checkpoint/restore: evict → capture → resume, byte-identical.

Deferral neutrality is what makes this sound: CAP work deferred across
the eviction gap is rebuilt warm by the idle scheduler, and the restored
session's subsequent matches must equal the uninterrupted session's
exactly (``canonical_matches`` comparison — the same acceptance bar the
service throughput benchmark enforces).
"""

from __future__ import annotations

import json

import pytest

from repro.core.actions import ModifyBounds, NewEdge, NewVertex, Run
from repro.errors import CheckpointError, SessionEvictedError, SessionNotFoundError
from repro.service import (
    CheckpointStore,
    QueryServer,
    ServiceClient,
    SessionManager,
    canonical_matches,
)
from repro.service.checkpoint import checkpoint_session, restore_session
from repro.service.client import RemoteServiceError
from repro.resilience import RetryPolicy

FIG2_ACTIONS = [
    NewVertex(0, "A", latency_after=0.002),
    NewVertex(1, "B", latency_after=0.002),
    NewEdge(0, 1, 1, 1, latency_after=0.002),
    NewVertex(2, "C", latency_after=0.002),
    NewEdge(1, 2, 1, 2, latency_after=0.002),
    NewEdge(0, 2, 1, 3, latency_after=0.002),
]

POSTURES = ("off", "default", "strict", "paranoid")


def formulate(manager, posture, actions=FIG2_ACTIONS):
    session = manager.create_session(resilience=posture)
    for action in actions:
        manager.apply_action(session.id, action)
    return session


class TestSerialization:
    def test_json_round_trip(self, fig2_ctx):
        manager = SessionManager(fig2_ctx)
        session = formulate(manager, "default")
        checkpoint = checkpoint_session(session, "test")
        clone = type(checkpoint).from_json(checkpoint.to_json())
        assert clone == checkpoint
        assert clone.actions == checkpoint.actions
        assert clone.session_id == session.id

    def test_malformed_json_is_typed(self):
        from repro.service.checkpoint import SessionCheckpoint

        with pytest.raises(CheckpointError):
            SessionCheckpoint.from_json("not json at all")
        with pytest.raises(CheckpointError):
            SessionCheckpoint.from_json(json.dumps({"format": 999}))
        with pytest.raises(CheckpointError):
            SessionCheckpoint.from_json(json.dumps([1, 2, 3]))

    def test_terminal_sessions_cannot_checkpoint(self, fig2_ctx):
        manager = SessionManager(fig2_ctx)
        session = manager.create_session()
        session.close()
        with pytest.raises(CheckpointError):
            checkpoint_session(session, "test")

    def test_run_actions_not_replayed_twice(self, fig2_ctx):
        """Run is excluded from the action log; restore re-runs once."""
        manager = SessionManager(fig2_ctx)
        session = formulate(manager, "default")
        manager.run(session.id)
        checkpoint = checkpoint_session(session, "test")
        kinds = [a["kind"] for a in checkpoint.actions]
        assert "Run" not in kinds
        assert checkpoint.state == "ran"


class TestCheckpointStore:
    def _checkpoint(self, fig2_ctx, manager=None):
        manager = manager or SessionManager(fig2_ctx)
        return checkpoint_session(formulate(manager, "off"), "test")

    def test_capacity_drops_oldest(self, fig2_ctx):
        manager = SessionManager(fig2_ctx, max_sessions=8)
        store = CheckpointStore(capacity=2)
        checkpoints = [
            checkpoint_session(formulate(manager, "off"), "test")
            for _ in range(3)
        ]
        for checkpoint in checkpoints:
            store.put(checkpoint)
        assert len(store) == 2
        assert store.get(checkpoints[0].session_id) is None  # oldest gone
        stats = store.stats()
        assert stats["stored_total"] == 3
        assert stats["dropped_total"] == 1

    def test_pop_removes(self, fig2_ctx):
        store = CheckpointStore(capacity=4)
        checkpoint = self._checkpoint(fig2_ctx)
        store.put(checkpoint)
        assert store.pop(checkpoint.session_id) is checkpoint
        assert store.pop(checkpoint.session_id) is None


class TestRoundTrip:
    @pytest.mark.parametrize("posture", POSTURES)
    def test_evict_restore_matches_uninterrupted(self, fig2_ctx, posture):
        # Reference: the same formulation, never interrupted.
        serial = SessionManager(fig2_ctx)
        reference = formulate(serial, posture)
        serial.run(reference.id)
        expected = canonical_matches(serial.matches(reference.id))
        assert expected  # fig2 Q has matches; identity must be non-vacuous

        manager = SessionManager(fig2_ctx, max_sessions=1)
        victim = formulate(manager, posture)
        manager.create_session()  # LRU-evicts (and checkpoints) the victim
        assert victim.id not in manager.session_ids()

        restored = manager.restore_session(victim.id)
        assert restored.id == victim.id
        assert restored.restored is True
        manager.run(victim.id)
        assert canonical_matches(manager.matches(victim.id)) == expected

    @pytest.mark.parametrize("posture", ("off", "strict"))
    def test_evict_after_run_preserves_matches(self, fig2_ctx, posture):
        serial = SessionManager(fig2_ctx)
        reference = formulate(serial, posture)
        serial.run(reference.id)
        expected = canonical_matches(serial.matches(reference.id))

        manager = SessionManager(fig2_ctx, max_sessions=1)
        victim = formulate(manager, posture)
        manager.run(victim.id)
        manager.create_session()  # evict a completed session
        restored = manager.restore_session(victim.id)
        assert restored.state == "ran"
        assert canonical_matches(manager.matches(victim.id)) == expected

    def test_restore_mid_formulation_then_continue(self, fig2_ctx):
        serial = SessionManager(fig2_ctx)
        reference = formulate(serial, "default")
        serial.apply_action(reference.id, ModifyBounds(0, 2, 1, 4))
        serial.run(reference.id)
        expected = canonical_matches(serial.matches(reference.id))

        manager = SessionManager(fig2_ctx, max_sessions=1)
        victim = formulate(manager, "default")  # formulated, not yet run
        manager.create_session()
        manager.restore_session(victim.id)
        manager.apply_action(victim.id, ModifyBounds(0, 2, 1, 4))
        manager.run(victim.id)
        assert canonical_matches(manager.matches(victim.id)) == expected

    def test_restore_is_idempotent_for_live_sessions(self, fig2_ctx):
        manager = SessionManager(fig2_ctx)
        session = formulate(manager, "default")
        assert manager.restore_session(session.id) is session

    def test_unknown_session_restore_is_typed(self, fig2_ctx):
        manager = SessionManager(fig2_ctx)
        with pytest.raises(SessionNotFoundError):
            manager.restore_session("s999")

    def test_expired_checkpoint_restore_is_typed(self, fig2_ctx):
        manager = SessionManager(fig2_ctx, max_sessions=1, checkpoint_capacity=1)
        victim = formulate(manager, "off")
        manager.create_session()  # evicts + checkpoints victim
        # A second eviction overflows the single-slot store: victim expires.
        second = formulate(manager, "off")
        assert second.id not in (victim.id,)
        manager.create_session()
        with pytest.raises(SessionEvictedError, match="checkpoint expired"):
            manager.restore_session(victim.id)

    def test_eviction_error_advertises_restorability(self, fig2_ctx):
        manager = SessionManager(fig2_ctx, max_sessions=1)
        victim = formulate(manager, "off")
        manager.create_session()
        with pytest.raises(SessionEvictedError) as info:
            manager.apply_action(victim.id, NewVertex(9, "A"))
        assert info.value.restorable is True


class TestRestoreOverTheWire:
    @pytest.fixture()
    def served(self, fig2_ctx):
        manager = SessionManager(fig2_ctx, max_sessions=1)
        server = QueryServer(manager, host="127.0.0.1", port=0).start()
        yield server, manager
        server.stop()

    def test_restore_op(self, served):
        server, manager = served
        with ServiceClient(*server.address) as client:
            sid = client.create_session()
            for action in FIG2_ACTIONS:
                client.action(sid, action)
            client.run(sid)
            expected = client.matches(sid)
            assert expected  # identity check below must be non-vacuous
            client.create_session()  # evicts sid
            result = client.restore_session(sid)
            assert result["restored"] is True
            assert result["session"] == sid
            assert client.matches(sid) == expected

    def test_auto_restore_is_transparent(self, served):
        server, manager = served
        with ServiceClient(
            *server.address,
            retry_policy=RetryPolicy(max_attempts=4, base_delay=0.001),
            auto_restore=True,
        ) as client:
            sid = client.create_session()
            for action in FIG2_ACTIONS:
                client.action(sid, action)
            client.run(sid)
            expected = client.matches(sid)
            client.create_session()  # evicts sid
            # The evicted-session read restores and retries on its own.
            assert client.matches(sid) == expected
        assert manager.stats_counters.sessions_restored >= 1

    def test_evicted_error_carries_restorable_hint(self, served):
        server, _ = served
        with ServiceClient(*server.address) as client:
            sid = client.create_session()
            client.action(sid, FIG2_ACTIONS[0])
            client.create_session()
            with pytest.raises(RemoteServiceError) as info:
                client.action(sid, FIG2_ACTIONS[1])
            assert info.value.code == "session_evicted"
            assert info.value.payload["details"]["restorable"] is True


class TestDiskTier:
    """Write-through persistence: restore survives a process restart."""

    def _checkpoint(self, fig2_ctx):
        manager = SessionManager(fig2_ctx)
        return checkpoint_session(formulate(manager, "off"), "test")

    def test_put_writes_through_and_new_store_reads_back(self, fig2_ctx, tmp_path):
        first = CheckpointStore(capacity=4, directory=str(tmp_path))
        checkpoint = self._checkpoint(fig2_ctx)
        first.put(checkpoint)
        assert (tmp_path / f"{checkpoint.session_id}.ckpt.json").exists()

        # A fresh store over the same directory — the respawned worker.
        second = CheckpointStore(capacity=4, directory=str(tmp_path))
        assert len(second) == 0  # nothing in memory...
        loaded = second.get(checkpoint.session_id)  # ...but disk delivers
        assert loaded == checkpoint
        assert second.stats()["disk_hits_total"] == 1
        assert checkpoint.session_id in second.ids()

    def test_pop_deletes_the_file(self, fig2_ctx, tmp_path):
        store = CheckpointStore(capacity=4, directory=str(tmp_path))
        checkpoint = self._checkpoint(fig2_ctx)
        store.put(checkpoint)
        path = tmp_path / f"{checkpoint.session_id}.ckpt.json"
        assert path.exists()
        assert store.pop(checkpoint.session_id) == checkpoint
        assert not path.exists()
        assert store.pop(checkpoint.session_id) is None

    def test_memory_eviction_keeps_disk_copy(self, fig2_ctx, tmp_path):
        manager = SessionManager(fig2_ctx, max_sessions=8)
        store = CheckpointStore(capacity=1, directory=str(tmp_path))
        older = checkpoint_session(formulate(manager, "off"), "test")
        newer = checkpoint_session(formulate(manager, "off"), "test")
        store.put(older)
        store.put(newer)  # bumps `older` out of the memory tier
        assert len(store) == 1
        assert store.get(older.session_id) == older  # disk fallback
        assert store.stats()["on_disk"] == 2

    def test_corrupt_file_reads_as_miss(self, fig2_ctx, tmp_path):
        store = CheckpointStore(capacity=4, directory=str(tmp_path))
        (tmp_path / "s77.ckpt.json").write_text("{not json", encoding="utf-8")
        assert store.get("s77") is None
        assert store.stats()["disk_hits_total"] == 0

    def test_unsafe_ids_skip_the_disk_tier(self, fig2_ctx, tmp_path):
        from dataclasses import replace

        store = CheckpointStore(capacity=4, directory=str(tmp_path))
        hostile = replace(self._checkpoint(fig2_ctx), session_id="../escape")
        store.put(hostile)
        # Held in memory, but no file anywhere — least of all outside.
        assert store.get("../escape") == hostile
        assert list(tmp_path.iterdir()) == []
        assert not (tmp_path.parent / "escape.ckpt.json").exists()

    def test_manager_restart_restores_byte_identical(self, fig2_ctx, tmp_path):
        """The worker-pool contract, minus the pool: survive a restart."""
        before = SessionManager(
            fig2_ctx,
            checkpoint_dir=str(tmp_path),
            checkpoint_on_mutate=True,
        )
        session = formulate(before, "default")
        before.run(session.id)
        expected = canonical_matches(before.matches(session.id))
        assert expected

        # "Restart": a brand-new manager over the same directory; the old
        # one is simply dropped, exactly like a SIGKILLed worker.
        after = SessionManager(fig2_ctx, checkpoint_dir=str(tmp_path))
        with pytest.raises(SessionEvictedError) as info:
            after.get(session.id)
        assert info.value.restorable is True
        restored = after.restore_session(session.id)
        assert restored.state == "ran"
        assert canonical_matches(after.matches(session.id)) == expected
