"""Concurrency determinism: interleaved sessions == serial sessions.

The acceptance property of the multi-session service is that concurrency
moves only *timing*, never answers: N sessions driven from N threads over
one shared graph/oracle must produce byte-identical canonical match sets
to the same N scripts replayed serially.  Deferral neutrality covers the
cross-session idle scheduling; these tests cover the locking.
"""

from __future__ import annotations

import json
import threading

from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.indexing.oracle import CountingOracle
from repro.service import SessionManager, canonical_matches

LAT = 0.01

#: Distinct fig2 formulation scripts so concurrent sessions do different
#: work (upper-3 bounds keep the pool busy under ``pooled_ctx``).
SCRIPTS = [
    [  # triangle A-B-C
        NewVertex(0, "A", latency_after=LAT),
        NewVertex(1, "B", latency_after=LAT),
        NewEdge(0, 1, 1, 3, latency_after=LAT),
        NewVertex(2, "C", latency_after=LAT),
        NewEdge(1, 2, 1, 3, latency_after=LAT),
        NewEdge(0, 2, 1, 3, latency_after=LAT),
    ],
    [  # adjacent A-B pair
        NewVertex(0, "A", latency_after=LAT),
        NewVertex(1, "B", latency_after=LAT),
        NewEdge(0, 1, 1, 1, latency_after=LAT),
    ],
    [  # A-B-C path, looser hops
        NewVertex(0, "A", latency_after=LAT),
        NewVertex(1, "B", latency_after=LAT),
        NewVertex(2, "C", latency_after=LAT),
        NewEdge(0, 1, 1, 2, latency_after=LAT),
        NewEdge(1, 2, 1, 2, latency_after=LAT),
    ],
    [  # B near C
        NewVertex(0, "B", latency_after=LAT),
        NewVertex(1, "C", latency_after=LAT),
        NewEdge(0, 1, 1, 2, latency_after=LAT),
    ],
]

STRATEGIES = ["DI", "DR", "IC"]

N_SESSIONS = 8


def session_plan(i: int) -> tuple[list, str]:
    return SCRIPTS[i % len(SCRIPTS)], STRATEGIES[i % len(STRATEGIES)]


def canonical_bytes(matches) -> bytes:
    """The byte-identity the acceptance criterion compares."""
    return json.dumps(canonical_matches(matches), separators=(",", ":")).encode()


def serial_reference(ctx) -> list[bytes]:
    out = []
    for i in range(N_SESSIONS):
        script, strategy = session_plan(i)
        boomer = Boomer(ctx, strategy=strategy, auto_idle=False)
        for action in script:
            boomer.apply(action)
        boomer.apply(Run())
        out.append(canonical_bytes(boomer.run_result.matches))
    return out


def drive_interleaved(manager: SessionManager) -> list[bytes]:
    """N threads, one session each, barrier-released for max interleaving."""
    results: list[bytes | None] = [None] * N_SESSIONS
    errors: list[BaseException] = []
    barrier = threading.Barrier(N_SESSIONS)

    def worker(i: int) -> None:
        try:
            script, strategy = session_plan(i)
            session = manager.create_session(strategy=strategy)
            barrier.wait()
            for action in script:
                manager.apply_action(session.id, action)
            result = manager.run(session.id)
            results[i] = canonical_bytes(result.matches)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"sess-{i}")
        for i in range(N_SESSIONS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors, errors
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


def test_interleaved_sessions_byte_identical_to_serial(pooled_ctx):
    reference = serial_reference(pooled_ctx)
    assert any(reference)  # at least one script has matches

    manager = SessionManager(pooled_ctx, max_sessions=N_SESSIONS)
    interleaved = drive_interleaved(manager)
    assert interleaved == reference

    stats = manager.stats()
    assert stats["sessions_created"] == N_SESSIONS
    assert stats["sessions_evicted"] == 0


def test_interleaved_runs_are_repeatable(pooled_ctx):
    """Two concurrent rounds agree with each other, not just with serial."""
    first = drive_interleaved(SessionManager(pooled_ctx, max_sessions=N_SESSIONS))
    second = drive_interleaved(SessionManager(pooled_ctx, max_sessions=N_SESSIONS))
    assert first == second


def test_counting_oracle_thread_safe(fig2_ctx):
    """Hammered from 8 threads, no increment is lost and answers agree."""
    oracle = CountingOracle(fig2_ctx.oracle)
    pairs = [(u, v) for u in range(12) for v in range(12)]
    expected = {pair: fig2_ctx.oracle.distance(*pair) for pair in pairs}
    errors: list[BaseException] = []
    rounds = 4

    def hammer() -> None:
        try:
            for _ in range(rounds):
                for (u, v), want in expected.items():
                    assert oracle.distance(u, v) == want
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors, errors
    assert oracle.query_count == 8 * rounds * len(pairs)
