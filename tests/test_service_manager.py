"""SessionManager unit tests: lifecycle, parity, admission, eviction."""

from __future__ import annotations

import pytest

from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.errors import (
    ActionError,
    AdmissionError,
    SessionError,
    SessionEvictedError,
    SessionNotFoundError,
)
from repro.indexing.oracle import shared_bfs_oracle
from repro.service import SessionManager, canonical_matches
from repro.service.session import SessionLimits

FIG2_ACTIONS = [
    NewVertex(0, "A", latency_after=0.002),
    NewVertex(1, "B", latency_after=0.002),
    NewEdge(0, 1, 1, 1, latency_after=0.002),
    NewVertex(2, "C", latency_after=0.002),
    NewEdge(1, 2, 1, 2, latency_after=0.002),
    NewEdge(0, 2, 1, 3, latency_after=0.002),
]


def drive(manager: SessionManager, actions=FIG2_ACTIONS, **session_kwargs):
    session = manager.create_session(**session_kwargs)
    for action in actions:
        manager.apply_action(session.id, action)
    result = manager.run(session.id)
    return session, result


class TestLifecycle:
    def test_hosted_session_matches_direct_boomer(self, fig2_ctx):
        manager = SessionManager(fig2_ctx)
        _, result = drive(manager)

        boomer = Boomer(fig2_ctx, strategy="DI", auto_idle=False)
        for action in FIG2_ACTIONS:
            boomer.apply(action)
        boomer.apply(Run())
        assert canonical_matches(result.matches) == canonical_matches(
            boomer.run_result.matches
        )
        assert len(result.matches) > 0

    def test_session_states(self, fig2_ctx):
        manager = SessionManager(fig2_ctx)
        session = manager.create_session()
        assert session.state == "formulating"
        for action in FIG2_ACTIONS:
            manager.apply_action(session.id, action)
        manager.run(session.id)
        assert session.state == "ran"
        # Run is terminal for formulation: more actions are a caller bug.
        with pytest.raises(ActionError):
            manager.apply_action(session.id, NewVertex(9, "A"))
        manager.close_session(session.id)
        with pytest.raises(SessionNotFoundError):
            manager.get(session.id)

    def test_results_validated_via_manager(self, fig2_ctx):
        manager = SessionManager(fig2_ctx)
        session, result = drive(manager)
        subgraphs = manager.results(session.id, limit=5)
        assert 0 < len(subgraphs) <= 5
        for sub in subgraphs:
            assert set(sub.assignment) == {0, 1, 2}

    def test_unknown_session_is_typed(self, fig2_ctx):
        manager = SessionManager(fig2_ctx)
        with pytest.raises(SessionNotFoundError):
            manager.apply_action("nope", NewVertex(0, "A"))

    def test_run_without_actions_is_loud(self, fig2_ctx):
        manager = SessionManager(fig2_ctx)
        session = manager.create_session()
        with pytest.raises(Exception):  # empty query fails validation
            manager.run(session.id)

    def test_matches_before_run_raises(self, fig2_ctx):
        manager = SessionManager(fig2_ctx)
        session = manager.create_session()
        with pytest.raises(SessionError):
            manager.matches(session.id)

    def test_per_session_counters_are_private(self, fig2_ctx):
        manager = SessionManager(fig2_ctx)
        a = manager.create_session()
        b = manager.create_session()
        manager.apply_action(a.id, NewVertex(0, "A"))
        assert b.ctx.counters.distance_queries == 0
        assert a.ctx is not b.ctx
        assert a.ctx.graph is b.ctx.graph  # immutable parts shared
        assert a.ctx.oracle is b.ctx.oracle


class TestAdmissionAndEviction:
    def test_session_budget_evicts_idle_lru(self, fig2_ctx):
        manager = SessionManager(fig2_ctx, max_sessions=2)
        a = manager.create_session()
        b = manager.create_session()
        manager.apply_action(b.id, NewVertex(0, "A"))  # b now more recent
        c = manager.create_session()  # must evict a (LRU idle)
        assert manager.session_ids() == [b.id, c.id]
        with pytest.raises(SessionEvictedError) as excinfo:
            manager.get(a.id)
        assert excinfo.value.session_id == a.id
        assert manager.stats()["sessions_evicted"] == 1

    def test_admission_refused_when_nothing_evictable(self, fig2_ctx):
        manager = SessionManager(fig2_ctx, max_sessions=1)
        session = manager.create_session()
        with session.lock:  # actively in use: not evictable
            with pytest.raises(AdmissionError):
                manager.create_session()
        assert manager.stats()["admission_rejections"] == 1
        assert manager.get(session.id) is session  # survivor intact

    def test_cap_budget_evicts_largest_idle_history(self, fig2_ctx):
        manager = SessionManager(fig2_ctx, cap_entry_budget=1)
        a = manager.create_session()
        for action in FIG2_ACTIONS:
            manager.apply_action(a.id, action)
        assert a.cap_entries() > 1  # a alone busts the budget but survives
        assert manager.session_ids() == [a.id]

        b = manager.create_session()
        manager.apply_action(b.id, NewVertex(0, "A"))
        # Enforcement after b's action reclaims idle a, never the actor b.
        assert manager.session_ids() == [b.id]
        with pytest.raises(SessionEvictedError):
            manager.matches(a.id)
        stats = manager.stats()
        assert stats["sessions_evicted"] == 1
        assert any("CAP budget" in entry for entry in stats["recent_evictions"])

    def test_eviction_observable_in_stats(self, fig2_ctx):
        manager = SessionManager(fig2_ctx, max_sessions=1)
        a = manager.create_session()
        manager.create_session()
        stats = manager.stats()
        assert stats["sessions_evicted"] == 1
        assert stats["open_sessions"] == 1
        assert f"{a.id}: session budget" in stats["recent_evictions"]

    def test_evicted_vs_unknown_are_distinct(self, fig2_ctx):
        manager = SessionManager(fig2_ctx, max_sessions=1)
        a = manager.create_session()
        manager.create_session()  # evicts a
        with pytest.raises(SessionEvictedError):
            manager.get(a.id)
        with pytest.raises(SessionNotFoundError):
            manager.get("s999")


class TestSharedOracle:
    def test_bfs_fallback_cached_per_graph(self, fig2_graph):
        first = shared_bfs_oracle(fig2_graph)
        second = shared_bfs_oracle(fig2_graph)
        assert first is second

    def test_degraded_runs_share_one_bfs_fallback(self, fig2_ctx):
        """Two failed Runs in one process reuse the same BFS oracle."""
        from dataclasses import replace

        from repro.resilience import ResilienceConfig

        class DeadOracle:
            def distance(self, u, v):
                raise RuntimeError("oracle down")

            def within(self, u, v, upper):
                raise RuntimeError("oracle down")

        ctx = replace(fig2_ctx, oracle=DeadOracle())
        fallback = shared_bfs_oracle(ctx.graph)
        queries_before = fallback.query_count
        observed = []
        for _ in range(2):
            boomer = Boomer(
                ctx,
                strategy="DI",
                auto_idle=False,
                resilience=ResilienceConfig.default(),
            )
            for action in FIG2_ACTIONS:
                boomer.apply(action)
            boomer.apply(Run())
            assert boomer.run_result.degraded
            assert boomer.run_result.fallback == "bu-bfs"
            observed.append(canonical_matches(boomer.run_result.matches))
        assert observed[0] == observed[1]
        # The shared fallback did the work (its counter moved) and is the
        # same instance both runs used — no per-run reconstruction.
        assert fallback.query_count > queries_before
        assert shared_bfs_oracle(ctx.graph) is fallback
