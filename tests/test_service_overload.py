"""Backpressure: watermark shedding, queue depth, drain refusal, timeouts.

The overload layer's contract (docs/SERVICE.md): a *hard* budget refusal
stays :class:`AdmissionError`; everything transient — watermark pressure,
queue depth, draining — sheds with the retryable
:class:`ServiceOverloadedError` carrying a ``retry_after_ms`` hint that
:class:`ServiceClient` honors under a :class:`RetryPolicy`.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.core.actions import NewVertex
from repro.errors import (
    AdmissionError,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
)
from repro.resilience import RetryPolicy
from repro.service import OverloadPolicy, QueryServer, ServiceClient, SessionManager
from repro.service.client import RemoteServiceError


class TestOverloadPolicy:
    def test_session_threshold_rounds_up(self):
        policy = OverloadPolicy(session_watermark=0.85)
        assert policy.session_threshold(4) == 4  # ceil(3.4)
        assert policy.session_threshold(100) == 85
        assert policy.session_threshold(1) == 1  # never below one slot

    def test_cap_threshold_off_without_budget(self):
        assert OverloadPolicy().cap_threshold(None) is None
        assert OverloadPolicy(cap_watermark=0.5).cap_threshold(1000) == 500

    def test_shed_is_typed_and_retryable(self):
        error = OverloadPolicy(retry_after_ms=75).shed("sessions", "full")
        assert isinstance(error, ServiceOverloadedError)
        assert error.retryable is True
        assert error.retry_after_ms == 75
        assert error.reason == "sessions"

    def test_draining_shed_uses_slower_hint(self):
        policy = OverloadPolicy(retry_after_ms=50, retry_after_draining_ms=400)
        assert policy.shed("draining", "drain in progress").retry_after_ms == 400

    def test_validation(self):
        with pytest.raises(ValueError):
            OverloadPolicy(session_watermark=0.0)
        with pytest.raises(ValueError):
            OverloadPolicy(cap_watermark=1.5)
        with pytest.raises(ValueError):
            OverloadPolicy(retry_after_ms=-1)


@pytest.fixture()
def tight_manager(fig2_ctx):
    """Two slots, watermark at one: the second busy session sheds."""
    return SessionManager(
        fig2_ctx,
        max_sessions=2,
        overload=OverloadPolicy(session_watermark=0.5, retry_after_ms=20),
    )


class TestManagerShedding:
    def test_watermark_shed_when_nothing_evictable(self, tight_manager):
        first = tight_manager.create_session()
        assert first.lock.acquire(blocking=False)  # pin: not evictable
        try:
            with pytest.raises(ServiceOverloadedError) as info:
                tight_manager.create_session()
            assert info.value.reason == "sessions"
            assert info.value.retry_after_ms == 20
            assert tight_manager.stats_counters.requests_shed == 1
        finally:
            first.lock.release()

    def test_watermark_evicts_idle_instead_of_shedding(self, tight_manager):
        first = tight_manager.create_session()
        second = tight_manager.create_session()  # evicts idle `first`
        assert second.id != first.id
        assert tight_manager.session_ids() == [second.id]
        # The reclaimed session was checkpointed, not dropped.
        assert tight_manager.checkpoints.get(first.id) is not None

    def test_hard_budget_still_admission_error(self, fig2_ctx):
        manager = SessionManager(
            fig2_ctx,
            max_sessions=1,
            overload=OverloadPolicy(session_watermark=1.0),
        )
        session = manager.create_session()
        assert session.lock.acquire(blocking=False)
        try:
            with pytest.raises(AdmissionError):
                manager.create_session()
        finally:
            session.lock.release()

    def test_queue_depth_sheds_mutating_work(self, fig2_ctx):
        manager = SessionManager(
            fig2_ctx, overload=OverloadPolicy(max_inflight=1)
        )
        session = manager.create_session()
        with manager._track_request():  # occupy the only in-flight slot
            with pytest.raises(ServiceOverloadedError) as info:
                manager.create_session()
            assert info.value.reason == "queue"
            # Read-only verbs are never shed by queue depth.
            assert manager.stats()["open_sessions"] == 1
        manager.apply_action(session.id, NewVertex(0, "A"))  # slot free again

    def test_draining_sheds_mutating_but_serves_reads(self, fig2_ctx):
        manager = SessionManager(fig2_ctx, overload=OverloadPolicy())
        session = manager.create_session()
        manager.apply_action(session.id, NewVertex(0, "A"))
        manager.begin_drain()
        try:
            with pytest.raises(ServiceOverloadedError) as info:
                manager.create_session()
            assert info.value.reason == "draining"
            with pytest.raises(ServiceOverloadedError):
                manager.apply_action(session.id, NewVertex(1, "B"))
            # Reads still pass while draining.
            assert manager.stats()["draining"] is True
            assert session.id in manager.session_ids()
        finally:
            manager.end_drain()
        manager.apply_action(session.id, NewVertex(1, "B"))

    def test_shed_without_policy_never_fires(self, fig2_ctx):
        manager = SessionManager(fig2_ctx, max_sessions=1, overload=None)
        session = manager.create_session()
        assert session.lock.acquire(blocking=False)
        try:
            with pytest.raises(AdmissionError):
                manager.create_session()
        finally:
            session.lock.release()


class TestOverloadOnTheWire:
    @pytest.fixture()
    def overloaded(self, fig2_ctx):
        manager = SessionManager(
            fig2_ctx,
            max_sessions=2,
            overload=OverloadPolicy(session_watermark=0.5, retry_after_ms=10),
        )
        server = QueryServer(manager, host="127.0.0.1", port=0).start()
        yield server, manager
        server.stop()

    def test_shed_carries_code_and_hint(self, overloaded):
        server, manager = overloaded
        pinned = manager.create_session()
        assert pinned.lock.acquire(blocking=False)
        try:
            with ServiceClient(*server.address) as client:
                with pytest.raises(RemoteServiceError) as info:
                    client.create_session()
            assert info.value.code == "overloaded"
            assert info.value.retryable is True
            details = info.value.payload["details"]
            assert details["retry_after_ms"] == 10
            assert details["reason"] == "sessions"
        finally:
            pinned.lock.release()

    def test_client_retries_shed_to_success(self, overloaded):
        server, manager = overloaded
        pinned = manager.create_session()
        assert pinned.lock.acquire(blocking=False)
        release = threading.Timer(0.05, pinned.lock.release)
        release.start()
        try:
            policy = RetryPolicy(max_attempts=10, base_delay=0.01)
            with ServiceClient(*server.address, retry_policy=policy) as client:
                session_id = client.create_session()
            assert session_id  # shed at first, admitted once the pin lifted
            assert manager.stats_counters.requests_shed >= 1
        finally:
            release.join()

    def test_exhausted_retries_surface_the_typed_error(self, overloaded):
        server, manager = overloaded
        pinned = manager.create_session()
        assert pinned.lock.acquire(blocking=False)
        try:
            policy = RetryPolicy(max_attempts=2, base_delay=0.001)
            with ServiceClient(*server.address, retry_policy=policy) as client:
                with pytest.raises(RemoteServiceError) as info:
                    client.create_session()
            # The policy wrapper is unwrapped: callers switch on the code.
            assert info.value.code == "overloaded"
        finally:
            pinned.lock.release()


class TestClientTimeout:
    @pytest.fixture()
    def hung_server(self):
        """Accepts connections, reads requests, never answers."""
        listener = socket.create_server(("127.0.0.1", 0))
        stop = threading.Event()

        def serve():
            conns = []
            listener.settimeout(0.05)
            while not stop.is_set():
                try:
                    conn, _ = listener.accept()
                except TimeoutError:
                    continue
                conn.settimeout(0.05)
                conns.append(conn)
            for conn in conns:
                conn.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        yield listener.getsockname()
        stop.set()
        thread.join()
        listener.close()

    def test_hung_read_is_typed_and_retryable(self, hung_server):
        client = ServiceClient(*hung_server, timeout=0.2)
        begin = time.monotonic()
        with pytest.raises(ServiceTimeoutError) as info:
            client.ping()
        assert time.monotonic() - begin < 5.0  # bounded, not hung
        assert info.value.retryable is True
        assert isinstance(info.value, TimeoutError)
        client.close()

    def test_connection_is_dirty_after_timeout(self, hung_server):
        client = ServiceClient(*hung_server, timeout=0.2)
        with pytest.raises(ServiceTimeoutError):
            client.ping()
        # The stream is undefined now: fail fast, don't guess.
        with pytest.raises(ServiceError, match="reconnect"):
            client.ping()
        client.close()

    def test_shutdown_read_is_bounded(self, hung_server):
        client = ServiceClient(*hung_server, timeout=0.2)
        with pytest.raises(ServiceTimeoutError):
            client.shutdown()
        client.close()
