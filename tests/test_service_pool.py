"""Worker pool: sticky routing, zero-copy sharing, death/requeue, parity.

The pool's acceptance bar is the threaded path's, verbatim: identical
matches, identical error codes, identical restore semantics — plus the
process-level guarantees only it makes (respawn after SIGKILL, requeue
from disk checkpoints, no leaked shared-memory segments).
"""

from __future__ import annotations

import os
import signal
import time
from multiprocessing import shared_memory

import pytest

from repro.errors import RelayedError, WorkerPoolError
from repro.service import LocalDispatcher, PoolDispatcher, SessionManager
from repro.service import protocol
from repro.service.pool import attach_context, publish_context, unlink_segments

FIG2_WIRE_ACTIONS = [
    {"kind": "NewVertex", "vertex_id": 0, "label": "A"},
    {"kind": "NewVertex", "vertex_id": 1, "label": "B"},
    {"kind": "NewEdge", "u": 0, "v": 1, "lower": 1, "upper": 1},
    {"kind": "NewVertex", "vertex_id": 2, "label": "C"},
    {"kind": "NewEdge", "u": 1, "v": 2, "lower": 1, "upper": 2},
    {"kind": "NewEdge", "u": 0, "v": 2, "lower": 1, "upper": 3},
]


def formulate_and_run(backend, sid):
    for action in FIG2_WIRE_ACTIONS:
        backend.dispatch({"op": "action", "session": sid, "action": action})
    backend.dispatch({"op": "run", "session": sid})
    return backend.dispatch({"op": "matches", "session": sid})["matches"]


@pytest.fixture()
def pool(fig2_ctx):
    dispatcher = PoolDispatcher(fig2_ctx, workers=2, max_sessions=8)
    yield dispatcher
    dispatcher.close()


class TestSharedContext:
    def test_publish_attach_round_trip(self, fig2_ctx):
        """An attached context answers exactly like the original."""
        spec, segments = publish_context(fig2_ctx)
        try:
            shared_ctx, attached = attach_context(spec)
            try:
                graph = shared_ctx.graph
                assert graph.num_vertices == fig2_ctx.graph.num_vertices
                assert graph.num_edges == fig2_ctx.graph.num_edges
                assert list(graph.labels()) == list(fig2_ctx.graph.labels())
                for u in range(graph.num_vertices):
                    for v in range(graph.num_vertices):
                        assert shared_ctx.oracle.distance(
                            u, v
                        ) == fig2_ctx.oracle.distance(u, v)
                assert (
                    shared_ctx.oracle.total_label_entries()
                    == fig2_ctx.oracle.total_label_entries()
                )
            finally:
                for handle in attached:
                    handle.close()
        finally:
            unlink_segments(segments)

    def test_publish_requires_pml(self, fig2_ctx):
        from dataclasses import replace

        class NotPML:
            pass

        with pytest.raises(WorkerPoolError):
            publish_context(replace(fig2_ctx, oracle=NotPML()))

    def test_no_segments_leak_after_close(self, fig2_ctx):
        dispatcher = PoolDispatcher(fig2_ctx, workers=2, max_sessions=8)
        names = dispatcher.segment_names()
        assert names
        dispatcher.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


class TestStickyRouting:
    def test_create_alternates_least_loaded(self, pool):
        sids = [
            pool.dispatch({"op": "create_session"})["session"]
            for _ in range(4)
        ]
        assert [pool.session_worker(sid) for sid in sids] == [0, 1, 0, 1]
        # The session id itself names its home worker.
        assert sids[0].startswith("w0s") and sids[1].startswith("w1s")

    def test_routing_is_sticky_across_ops(self, pool):
        sid = pool.dispatch({"op": "create_session"})["session"]
        home = pool.session_worker(sid)
        formulate_and_run(pool, sid)
        assert pool.session_worker(sid) == home
        pool.dispatch({"op": "close_session", "session": sid})
        assert pool.session_worker(sid) is None

    def test_close_frees_the_slot(self, pool):
        first = pool.dispatch({"op": "create_session"})["session"]
        pool.dispatch({"op": "close_session", "session": first})
        # Worker 0 is empty again, so the next create lands there.
        again = pool.dispatch({"op": "create_session"})["session"]
        assert pool.session_worker(again) == 0


class TestParity:
    def test_pool_matches_threaded_byte_identical(self, pool, fig2_ctx):
        threaded = LocalDispatcher(SessionManager(fig2_ctx, max_sessions=8))
        reference_sid = threaded.dispatch({"op": "create_session"})["session"]
        reference = formulate_and_run(threaded, reference_sid)
        assert reference  # non-vacuous: fig2 Q1 has matches

        # Several sessions, spread across both workers — all identical.
        for _ in range(3):
            sid = pool.dispatch({"op": "create_session"})["session"]
            assert formulate_and_run(pool, sid) == reference

    def test_stats_aggregate_across_workers(self, pool):
        for _ in range(4):
            sid = pool.dispatch({"op": "create_session"})["session"]
            formulate_and_run(pool, sid)
        stats = pool.dispatch({"op": "stats"})
        assert stats["sessions_created"] == 4
        assert stats["runs_completed"] == 4
        assert stats["open_sessions"] == 4
        assert stats["pool"]["workers"] == 2
        assert stats["pool"]["alive"] == 2
        assert stats["pool"]["routed_sessions"] == 4

    def test_metrics_merge_across_workers(self, pool):
        sid = pool.dispatch({"op": "create_session"})["session"]
        formulate_and_run(pool, sid)
        snapshot = pool.dispatch({"op": "metrics"})["metrics"]
        assert any(key.startswith("repro_") for key in snapshot)
        text = pool.dispatch({"op": "metrics", "format": "text"})["text"]
        assert "# TYPE" in text

    def test_relayed_errors_keep_code_and_retryable(self, pool):
        """A worker-side typed failure surfaces with its original verdict."""
        with pytest.raises(RelayedError) as excinfo:
            pool.dispatch({"op": "matches", "session": "w0s999"})
        assert excinfo.value.code == "session_not_found"
        assert protocol.error_code(excinfo.value) == "session_not_found"

    def test_error_response_respects_relayed_retryable(self):
        relayed = RelayedError(
            "overloaded",
            {
                "type": "ServiceOverloadedError",
                "message": "shed",
                "retryable": True,
                "retry_after_ms": 50,
            },
            retryable=True,
        )
        assert protocol.error_retryable(relayed) is True
        response = protocol.error_response(2, "r1", relayed)
        assert response["error"]["code"] == "overloaded"
        assert response["error"]["retryable"] is True


class TestWorkerDeath:
    def _await_repair(self, pool, min_requeued=0, deadline_seconds=30.0):
        deadline = time.monotonic() + deadline_seconds
        while time.monotonic() < deadline:
            stats = pool.dispatch({"op": "stats"})["pool"]
            if (
                stats["workers_respawned"] >= 1
                and stats["alive"] == 2
                and stats["sessions_requeued"] + stats["requeue_failures"]
                >= min_requeued
            ):
                return stats
            time.sleep(0.05)
        raise AssertionError("pool did not repair within the deadline")

    def test_sigkill_requeues_byte_identical(self, pool):
        sid = pool.dispatch({"op": "create_session"})["session"]
        before = formulate_and_run(pool, sid)
        victim = pool.session_worker(sid)
        os.kill(pool.worker_pids()[victim], signal.SIGKILL)

        stats = self._await_repair(pool, min_requeued=1)
        assert stats["worker_deaths"] == 1
        assert stats["requeue_failures"] == 0
        assert stats["sessions_requeued"] >= 1

        # The session lives on — requeued from its disk checkpoint onto a
        # healthy worker, answers unchanged (deferral neutrality across a
        # process death).
        after = pool.dispatch({"op": "matches", "session": sid})["matches"]
        assert after == before
        assert pool.session_worker(sid) is not None

    def test_respawned_worker_ids_never_collide(self, pool):
        first = pool.dispatch({"op": "create_session"})["session"]
        formulate_and_run(pool, first)
        victim = pool.session_worker(first)
        os.kill(pool.worker_pids()[victim], signal.SIGKILL)
        self._await_repair(pool)

        # Fill both workers with fresh sessions: the respawned worker's
        # generation tag keeps its fresh ids distinct from every id the
        # dead predecessor handed out (which the requeue preserved).
        seen = {first}
        for _ in range(4):
            sid = pool.dispatch({"op": "create_session"})["session"]
            assert sid not in seen
            seen.add(sid)


class TestDrain:
    def test_drain_checkpoints_fleet_wide(self, pool):
        sids = [
            pool.dispatch({"op": "create_session"})["session"]
            for _ in range(3)
        ]
        for sid in sids:
            formulate_and_run(pool, sid)
        summary = pool.drain(timeout=10.0)
        assert sorted(summary["checkpointed"]) == sorted(sids)
        assert summary["busy"] == []
