"""Protocol v2 envelope + v1 backward compatibility.

The redesigned wire protocol (docs/SERVICE.md) puts ``v`` and ``req_id``
on every frame and reports every failure through one typed error
envelope.  The deprecated v1 dialect must keep round-tripping against
the v2 server byte-compatibly — that is the negotiation contract this
file pins, both at the codec level and over a real socket.
"""

import json
import socket

import pytest

from repro.core.preprocessor import make_context
from repro.errors import (
    ActionError,
    AdmissionError,
    DeadlineExceededError,
    ProtocolError,
    ReproError,
    SessionEvictedError,
    SessionNotFoundError,
)
from repro.service import QueryServer, ServiceClient, SessionManager, protocol


# ---------------------------------------------------------------------------
# Codec level
# ---------------------------------------------------------------------------
class TestEnvelopeCodec:
    def test_current_version_and_supported_set(self):
        assert protocol.PROTOCOL_VERSION == 2
        assert protocol.SUPPORTED_VERSIONS == (1, 2)

    def test_trace_and_metrics_are_ops(self):
        assert "trace" in protocol.OPS
        assert "metrics" in protocol.OPS

    def test_v2_request_decodes_with_version_and_req_id(self):
        line = b'{"v": 2, "req_id": 5, "op": "ping"}'
        request = protocol.decode_request(line)
        assert protocol.request_version(request) == 2
        assert protocol.request_id(request) == 5

    def test_v1_request_decodes_as_version_1(self):
        request = protocol.decode_request(b'{"id": 9, "op": "ping"}')
        assert protocol.request_version(request) == 1
        assert protocol.request_id(request) == 9

    def test_unsupported_version_rejected(self):
        with pytest.raises(ProtocolError, match="unsupported protocol version"):
            protocol.decode_request(b'{"v": 3, "op": "ping"}')

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            protocol.decode_request(b'{"v": 2, "req_id": 1, "op": "frobnicate"}')

    def test_ok_response_dialects(self):
        v2 = protocol.ok_response(2, 7, {"x": 1})
        assert v2 == {"v": 2, "req_id": 7, "ok": True, "result": {"x": 1}}
        v1 = protocol.ok_response(1, 7, {"x": 1})
        assert v1 == {"id": 7, "ok": True, "result": {"x": 1}}
        assert "v" not in v1

    def test_error_response_v2_typed_envelope(self):
        exc = SessionEvictedError("s1", "cap pressure")
        response = protocol.error_response(2, 3, exc)
        error = response["error"]
        assert response["v"] == 2 and response["req_id"] == 3
        assert response["ok"] is False
        assert error["code"] == "session_evicted"
        assert error["retryable"] is True
        assert error["details"]["type"] == "SessionEvictedError"
        assert error["details"]["session"] == "s1"

    def test_error_response_v1_keeps_legacy_shape(self):
        exc = SessionNotFoundError("nope")
        response = protocol.error_response(1, 4, exc)
        error = response["error"]
        assert response == {"id": 4, "ok": False, "error": error}
        assert error["type"] == "SessionNotFoundError"
        assert "code" not in error  # v1 never grew the v2 fields

    def test_error_codes_are_stable(self):
        cases = {
            ProtocolError("x"): "bad_request",
            SessionNotFoundError("s"): "session_not_found",
            SessionEvictedError("s", "r"): "session_evicted",
            AdmissionError("full"): "admission_refused",
            ActionError("bad"): "bad_action",
            ReproError("generic"): "engine_error",
            RuntimeError("bug"): "internal_error",
        }
        for exc, code in cases.items():
            assert protocol.error_code(exc) == code

    def test_deadline_details_carry_context(self):
        exc = DeadlineExceededError(context="enumeration")
        error = protocol.error_response(2, 1, exc)["error"]
        assert error["code"] == "deadline_exceeded"
        assert error["details"]["deadline_context"] == "enumeration"

    def test_best_effort_id_defaults_junk_to_v1(self):
        assert protocol.best_effort_id(b"{not json") == (None, 1)
        assert protocol.best_effort_id(b"[1, 2]") == (None, 1)
        assert protocol.best_effort_id(b'{"id": 3, "op": "nope"}') == (3, 1)
        assert protocol.best_effort_id(b'{"v": 2, "req_id": 8, "op": "nope"}') == (8, 2)


# ---------------------------------------------------------------------------
# Over a real socket
# ---------------------------------------------------------------------------
@pytest.fixture()
def server(fig2_ctx):
    srv = QueryServer(SessionManager(fig2_ctx), host="127.0.0.1", port=0).start()
    yield srv
    srv.stop()


def raw_roundtrip(address, frame: dict) -> dict:
    with socket.create_connection(address, timeout=10) as sock:
        handle = sock.makefile("rwb")
        handle.write(json.dumps(frame).encode() + b"\n")
        handle.flush()
        return json.loads(handle.readline())


class TestWireNegotiation:
    def test_v2_frame_gets_v2_envelope(self, server):
        response = raw_roundtrip(
            server.address, {"v": 2, "req_id": 11, "op": "ping"}
        )
        assert response["v"] == 2
        assert response["req_id"] == 11
        assert response["ok"] is True
        assert response["result"]["protocol"] == protocol.PROTOCOL_VERSION
        assert response["result"]["supported_protocols"] == [1, 2]

    def test_v1_frame_still_roundtrips(self, server):
        """The acceptance check: pre-envelope clients keep working."""
        response = raw_roundtrip(server.address, {"id": 21, "op": "ping"})
        assert response["id"] == 21
        assert response["ok"] is True
        assert "v" not in response and "req_id" not in response

    def test_v1_error_keeps_legacy_shape_on_the_wire(self, server):
        response = raw_roundtrip(
            server.address,
            {
                "id": 1,
                "op": "action",
                "session": "ghost",
                "action": {"kind": "NewVertex", "vertex_id": 0, "label": "A"},
            },
        )
        assert response["ok"] is False
        assert response["error"]["type"] == "SessionNotFoundError"
        assert "code" not in response["error"]

    def test_v2_error_envelope_on_the_wire(self, server):
        response = raw_roundtrip(
            server.address,
            {"v": 2, "req_id": 2, "op": "run", "session": "ghost"},
        )
        assert response["req_id"] == 2
        assert response["error"]["code"] == "session_not_found"
        assert response["error"]["details"]["type"] == "SessionNotFoundError"

    def test_unsupported_version_answered_in_v2(self, server):
        response = raw_roundtrip(
            server.address, {"v": 99, "req_id": 5, "op": "ping"}
        )
        assert response["error"]["code"] == "bad_request"
        assert response["req_id"] == 5

    def test_v1_session_lifecycle_end_to_end(self, server):
        """A whole pre-envelope conversation: create, act, run, matches."""
        with socket.create_connection(server.address, timeout=10) as sock:
            handle = sock.makefile("rwb")

            def call(frame):
                handle.write(json.dumps(frame).encode() + b"\n")
                handle.flush()
                response = json.loads(handle.readline())
                assert response["ok"], response
                assert "v" not in response
                return response["result"]

            sid = call({"id": 1, "op": "create_session", "strategy": "DI"})["session"]
            for i, action in enumerate(
                [
                    {"kind": "NewVertex", "vertex_id": 0, "label": "A"},
                    {"kind": "NewVertex", "vertex_id": 1, "label": "B"},
                    {
                        "kind": "NewEdge",
                        "u": 0,
                        "v": 1,
                        "lower": 1,
                        "upper": 1,
                    },
                ]
            ):
                call({"id": 2 + i, "op": "action", "session": sid, "action": action})
            summary = call({"id": 10, "op": "run", "session": sid})
            assert summary["num_matches"] > 0
            matches = call({"id": 11, "op": "matches", "session": sid})["matches"]
            assert matches


class TestClientSpeaksV2:
    def test_client_requests_carry_the_envelope(self, server):
        with ServiceClient(*server.address) as client:
            pong = client.ping()
            assert pong["protocol"] == 2
            trace_payload = client.metrics()
            assert "metrics" in trace_payload

    def test_remote_error_exposes_code_and_type(self, server):
        from repro.service.client import RemoteServiceError

        with ServiceClient(*server.address) as client:
            with pytest.raises(RemoteServiceError) as info:
                client.run("ghost")
        assert info.value.code == "session_not_found"
        assert info.value.remote_type == "SessionNotFoundError"
        assert info.value.retryable is False

    def test_remote_error_parses_v1_payloads_too(self):
        from repro.service.client import RemoteServiceError

        legacy = RemoteServiceError(
            {"type": "AdmissionError", "message": "full", "retryable": True}
        )
        assert legacy.code is None
        assert legacy.remote_type == "AdmissionError"
        assert legacy.retryable is True
