"""IdleScheduler tests: cross-session donation, fairness, neutrality."""

from __future__ import annotations

from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.service import SessionManager, canonical_matches

#: Generous virtual latency so every step leaves a real idle window for
#: the scheduler to distribute (engine compute on fig2 is microseconds).
LAT = 0.05

DONOR_ACTIONS = [
    NewVertex(0, "A", latency_after=LAT),
    NewVertex(1, "B", latency_after=LAT),
    NewEdge(0, 1, 1, 1, latency_after=LAT),
    NewVertex(2, "C", latency_after=LAT),
    NewEdge(1, 2, 1, 2, latency_after=LAT),
    NewEdge(0, 2, 1, 3, latency_after=LAT),
]

#: Defer-to-Run beneficiary: its own strategy never touches the pool
#: before Run, so any pre-Run processing is the scheduler's doing.  Every
#: edge carries upper bound 3 — Definition 5.8 only ever defers
#: large-upper edges, so smaller bounds would process inline regardless
#: of strategy.
POOLED_ACTIONS = [
    NewVertex(0, "A", latency_after=0.0),
    NewVertex(1, "B", latency_after=0.0),
    NewEdge(0, 1, 1, 3, latency_after=0.0),
    NewVertex(2, "C", latency_after=0.0),
    NewEdge(1, 2, 1, 3, latency_after=0.0),
    NewEdge(0, 2, 1, 3, latency_after=0.0),
]


def fill_pool(manager, session):
    for action in POOLED_ACTIONS:
        manager.apply_action(session.id, action)


def test_donated_idle_serves_other_sessions_pool(pooled_ctx):
    manager = SessionManager(pooled_ctx)
    beneficiary = manager.create_session(strategy="DR")
    fill_pool(manager, beneficiary)
    assert len(beneficiary.boomer.engine.pool) > 0

    donor = manager.create_session(strategy="DI")
    for action in DONOR_ACTIONS:
        manager.apply_action(donor.id, action)

    # The donor's idle windows drained the beneficiary's pool before its
    # own Run click ever arrived.
    assert beneficiary.serviced_edges > 0
    assert beneficiary.serviced_seconds > 0.0
    assert len(beneficiary.boomer.engine.pool) == 0
    sched = manager.scheduler.stats()
    assert sched["cross_session_edges"] >= beneficiary.serviced_edges
    assert donor.donated_idle_seconds > 0.0


def test_cross_session_scheduling_preserves_matches(pooled_ctx):
    """Deferral neutrality across sessions: scheduler moves work, not answers."""
    manager = SessionManager(pooled_ctx)
    beneficiary = manager.create_session(strategy="DR")
    fill_pool(manager, beneficiary)
    donor = manager.create_session(strategy="DI")
    for action in DONOR_ACTIONS:
        manager.apply_action(donor.id, action)
    assert beneficiary.serviced_edges > 0  # scheduling actually happened
    result = manager.run(beneficiary.id)

    reference = Boomer(pooled_ctx, strategy="DR", auto_idle=False)
    for action in POOLED_ACTIONS:
        reference.apply(action)
    reference.apply(Run())

    assert canonical_matches(result.matches) == canonical_matches(
        reference.run_result.matches
    )


def test_fair_share_across_beneficiaries(pooled_ctx):
    manager = SessionManager(pooled_ctx)
    first = manager.create_session(strategy="DR")
    second = manager.create_session(strategy="DR")
    fill_pool(manager, first)
    fill_pool(manager, second)

    donor = manager.create_session(strategy="DI")
    for action in DONOR_ACTIONS:
        manager.apply_action(donor.id, action)

    # One chatty donor window is plenty for both pools on fig2; the
    # fairness key must not let one beneficiary monopolize the windows.
    assert first.serviced_edges > 0
    assert second.serviced_edges > 0


def test_single_session_behaves_like_plain_di(pooled_ctx):
    """With one session, scheduler DI == standalone DI (donor-first rule)."""
    manager = SessionManager(pooled_ctx)
    session = manager.create_session(strategy="DI")
    for action in DONOR_ACTIONS:
        manager.apply_action(session.id, action)
    result = manager.run(session.id)

    reference = Boomer(pooled_ctx, strategy="DI", auto_idle=False)
    for action in DONOR_ACTIONS:
        reference.apply(action)
        reference.probe_idle(LAT)
    reference.apply(Run())

    assert canonical_matches(result.matches) == canonical_matches(
        reference.run_result.matches
    )


def test_unregistered_sessions_receive_nothing(pooled_ctx):
    manager = SessionManager(pooled_ctx)
    beneficiary = manager.create_session(strategy="DR")
    fill_pool(manager, beneficiary)
    pooled_before = len(beneficiary.boomer.engine.pool)
    manager.scheduler.unregister(beneficiary.id)

    donor = manager.create_session(strategy="DI")
    for action in DONOR_ACTIONS:
        manager.apply_action(donor.id, action)
    assert len(beneficiary.boomer.engine.pool) == pooled_before
    assert beneficiary.serviced_edges == 0
