"""Wire-level tests: QueryServer + ServiceClient over a real socket.

Everything here exercises the actual TCP path (bind to an ephemeral
127.0.0.1 port), because the framing, error mapping, and shutdown
handshake are exactly the parts a manager-only test cannot see.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.graph.io import save_edge_list
from repro.service import (
    PROTOCOL_VERSION,
    QueryServer,
    ServiceClient,
    SessionManager,
    canonical_matches,
)
from repro.service.client import RemoteServiceError
from tests.conftest import build_fig2_graph

FIG2_ACTIONS = [
    NewVertex(0, "A", latency_after=0.002),
    NewVertex(1, "B", latency_after=0.002),
    NewEdge(0, 1, 1, 1, latency_after=0.002),
    NewVertex(2, "C", latency_after=0.002),
    NewEdge(1, 2, 1, 2, latency_after=0.002),
    NewEdge(0, 2, 1, 3, latency_after=0.002),
]


@pytest.fixture()
def server(fig2_ctx):
    srv = QueryServer(SessionManager(fig2_ctx), host="127.0.0.1", port=0).start()
    yield srv
    srv.stop()


@pytest.fixture()
def client(server):
    with ServiceClient(*server.address) as c:
        yield c


def test_ping(client, fig2_ctx):
    pong = client.ping()
    assert pong["pong"] is True
    assert pong["protocol"] == PROTOCOL_VERSION
    assert pong["graph"] == fig2_ctx.graph.name


def test_scripted_session_matches_direct_boomer(client, fig2_ctx):
    outcome = client.scripted_session(FIG2_ACTIONS, strategy="DI")
    assert outcome["run"]["num_matches"] > 0

    boomer = Boomer(fig2_ctx, strategy="DI", auto_idle=False)
    for action in FIG2_ACTIONS:
        boomer.apply(action)
    boomer.apply(Run())
    assert outcome["matches"] == canonical_matches(boomer.run_result.matches)


def test_results_travel_validated(client):
    outcome = client.scripted_session(FIG2_ACTIONS)
    subgraphs = client.results(outcome["session"], limit=3)
    assert 0 < len(subgraphs) <= 3
    for sub in subgraphs:
        assert [pair[0] for pair in sub["assignment"]] == [0, 1, 2]
        assert sub["paths"]


def test_bad_json_is_answered_not_fatal(server):
    with socket.create_connection(server.address, timeout=10) as sock:
        f = sock.makefile("rwb")
        f.write(b"this is not json\n")
        f.flush()
        response = json.loads(f.readline())
        assert response["ok"] is False
        assert response["error"]["type"] == "ProtocolError"
        # Same connection still serves valid requests afterwards.
        f.write(b'{"id": 1, "op": "ping"}\n')
        f.flush()
        response = json.loads(f.readline())
        assert response["ok"] is True and response["id"] == 1


def test_unknown_op_is_protocol_error(client):
    with pytest.raises(RemoteServiceError) as excinfo:
        client.request("frobnicate")
    assert excinfo.value.remote_type == "ProtocolError"
    assert not excinfo.value.retryable


def test_unknown_session_vs_evicted_retryability(fig2_ctx):
    srv = QueryServer(
        SessionManager(fig2_ctx, max_sessions=1), host="127.0.0.1", port=0
    ).start()
    try:
        with ServiceClient(*srv.address) as client:
            first = client.create_session()
            client.create_session()  # evicts `first` (LRU, max_sessions=1)
            with pytest.raises(RemoteServiceError) as evicted:
                client.action(first, FIG2_ACTIONS[0])
            assert evicted.value.remote_type == "SessionEvictedError"
            assert evicted.value.retryable  # recreate-and-replay
            with pytest.raises(RemoteServiceError) as unknown:
                client.action("s999", FIG2_ACTIONS[0])
            assert unknown.value.remote_type == "SessionNotFoundError"
            assert not unknown.value.retryable
    finally:
        srv.stop()


def test_stats_over_the_wire(client):
    outcome = client.scripted_session(FIG2_ACTIONS)
    service = client.stats()
    assert service["open_sessions"] == 1
    assert service["sessions_created"] == 1
    session = client.stats(outcome["session"])
    assert session["state"] == "ran"
    assert session["run"]["num_matches"] == outcome["run"]["num_matches"]


def test_close_session_frees_the_slot(client):
    outcome = client.scripted_session(FIG2_ACTIONS)
    client.close_session(outcome["session"])
    assert client.stats()["open_sessions"] == 0
    with pytest.raises(RemoteServiceError) as excinfo:
        client.matches(outcome["session"])
    assert excinfo.value.remote_type == "SessionNotFoundError"


def test_shutdown_op_stops_the_server(fig2_ctx):
    srv = QueryServer(SessionManager(fig2_ctx), host="127.0.0.1", port=0).start()
    with ServiceClient(*srv.address) as client:
        assert client.shutdown() == {"stopping": True}
    assert srv.shutdown_requested
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        try:
            socket.create_connection(srv.address, timeout=0.2).close()
        except OSError:
            break  # accept loop is gone
        time.sleep(0.05)
    else:
        pytest.fail("server still accepting after shutdown op")
    srv.stop()  # idempotent


def test_stop_twice_is_a_safe_noop(fig2_ctx):
    srv = QueryServer(SessionManager(fig2_ctx), host="127.0.0.1", port=0).start()
    summary = srv.stop()
    assert summary is not None  # first stop drains and reports
    for _ in range(3):
        assert srv.stop() is None  # later stops: no second drain, no hang


def test_stop_before_serve_forever_does_not_hang(fig2_ctx):
    """stop() racing (or beating) serve_forever startup must not deadlock.

    socketserver's shutdown() blocks forever if serve_forever never ran;
    the lifecycle latch has to close the socket directly in that case.
    """
    srv = QueryServer(SessionManager(fig2_ctx), host="127.0.0.1", port=0)
    done = threading.Event()

    def stopper():
        srv.stop()
        done.set()

    thread = threading.Thread(target=stopper, daemon=True)
    thread.start()
    assert done.wait(timeout=5.0), "stop() hung without serve_forever"
    thread.join()
    with pytest.raises(OSError):
        socket.create_connection(srv.address, timeout=0.2).close()


def test_stop_drains_and_checkpoints_idle_sessions(fig2_ctx):
    manager = SessionManager(fig2_ctx)
    srv = QueryServer(manager, host="127.0.0.1", port=0).start()
    with ServiceClient(*srv.address) as client:
        sid = client.create_session()
        for action in FIG2_ACTIONS:
            client.action(sid, action)
    summary = srv.stop()
    assert summary["checkpointed"] == [sid]
    assert summary["busy"] == []
    assert manager.session_ids() == []
    assert manager.checkpoints.get(sid) is not None
    # The drained session is resumable, not lost.
    manager.end_drain()
    restored = manager.restore_session(sid)
    assert restored.actions_applied == len(FIG2_ACTIONS)


def test_stop_without_drain_skips_checkpointing(fig2_ctx):
    manager = SessionManager(fig2_ctx)
    srv = QueryServer(manager, host="127.0.0.1", port=0).start()
    with ServiceClient(*srv.address) as client:
        sid = client.create_session()
    assert srv.stop(drain=False) is None
    assert manager.checkpoints.get(sid) is None


def test_drain_waits_for_inflight_reads(fig2_ctx):
    """Drain must not close sessions out from under an in-flight request."""
    manager = SessionManager(fig2_ctx)
    srv = QueryServer(manager, host="127.0.0.1", port=0).start()
    with ServiceClient(*srv.address) as client:
        sid = client.create_session()
        for action in FIG2_ACTIONS:
            client.action(sid, action)
        client.run(sid)
        release = threading.Event()
        entered = threading.Event()

        def slow_read():
            with manager._track_request(mutating=False):
                entered.set()
                release.wait(timeout=5.0)

        reader = threading.Thread(target=slow_read, daemon=True)
        reader.start()
        assert entered.wait(timeout=5.0)
        stopper = threading.Thread(target=srv.stop, daemon=True)
        stopper.start()
        time.sleep(0.05)
        assert stopper.is_alive()  # drain is waiting on the in-flight read
        release.set()
        reader.join(timeout=5.0)
        stopper.join(timeout=10.0)
        assert not stopper.is_alive()
    assert manager.checkpoints.get(sid) is not None


def test_cli_serve_subprocess_smoke(tmp_path):
    """End-to-end: `python -m repro serve` driven by the in-repo client."""
    graph_path = tmp_path / "fig2.txt"
    save_edge_list(build_fig2_graph(), graph_path)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--graph", str(graph_path),
            "--port", "0",
            "--t-avg-samples", "50",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        banner = proc.stdout.readline().strip()
        assert banner.startswith("serving on "), banner
        host, port = banner.removeprefix("serving on ").rsplit(":", 1)
        with ServiceClient(host, int(port), timeout=30.0) as client:
            outcome = client.scripted_session(FIG2_ACTIONS, strategy="DI")
            assert outcome["run"]["num_matches"] > 0
            client.shutdown()
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
