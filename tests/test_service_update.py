"""The service ``update`` verb: quiet window, epoch visibility, refusals.

Contexts here are built fresh per test — the shared session-scoped
``fig2_ctx`` fixture must never be mutated — and each test drives the
verb at the layer it pins: SessionManager for the quiet-window barrier,
LocalDispatcher for wire validation, QueryServer + ServiceClient for the
socket round trip, and the pool dispatcher for the typed refusal.
"""

from __future__ import annotations

import pytest

from repro.core.actions import NewEdge, NewVertex
from repro.core.preprocessor import make_context, preprocess
from repro.errors import (
    GraphMutationError,
    ProtocolError,
    ServiceOverloadedError,
    StaleIndexError,
    WorkerPoolError,
)
from repro.service import (
    QueryServer,
    ServiceClient,
    SessionManager,
    canonical_matches,
    protocol,
)
from repro.service.dispatch import LocalDispatcher
from repro.service.pool.dispatcher import PoolDispatcher
from tests.conftest import build_fig2_graph

FIG2_ACTIONS = [
    NewVertex(0, "A", latency_after=0.002),
    NewVertex(1, "B", latency_after=0.002),
    NewEdge(0, 1, 1, 1, latency_after=0.002),
    NewVertex(2, "C", latency_after=0.002),
    NewEdge(1, 2, 1, 2, latency_after=0.002),
    NewEdge(0, 2, 1, 3, latency_after=0.002),
]


@pytest.fixture()
def ctx():
    """A private, mutable fig2 context (never the shared fixture)."""
    return make_context(preprocess(build_fig2_graph(), seed=3))


def drive(manager):
    session = manager.create_session()
    for action in FIG2_ACTIONS:
        manager.apply_action(session.id, action)
    result = manager.run(session.id)
    return session, result


class TestManagerUpdate:
    def test_insert_report_and_stats(self, ctx):
        manager = SessionManager(ctx)
        report = manager.apply_update("insert", 0, 11)
        assert report.kind == "insert"
        assert report.epoch == 1
        assert report.strategy == "pml-incremental"
        stats = manager.stats()
        assert stats["graph"]["epoch"] == 1
        assert stats["updates_applied"] == 1

    def test_delete_rebuilds(self, ctx):
        manager = SessionManager(ctx)
        report = manager.apply_update("delete", 1, 4)
        assert report.strategy == "pml-rebuild"
        assert manager.base_ctx.graph.epoch == 1

    def test_unknown_kind_is_typed(self, ctx):
        manager = SessionManager(ctx)
        with pytest.raises(GraphMutationError, match="unknown update kind"):
            manager.apply_update("upsert", 0, 11)
        assert manager.base_ctx.graph.epoch == 0

    def test_refused_update_leaves_epoch_alone(self, ctx):
        manager = SessionManager(ctx)
        with pytest.raises(GraphMutationError, match="already exists"):
            manager.apply_update("insert", 1, 4)
        assert manager.base_ctx.graph.epoch == 0
        assert manager.stats()["updates_applied"] == 0

    def test_old_results_kept_new_sessions_see_new_epoch(self, ctx):
        manager = SessionManager(ctx)
        old_session, old_result = drive(manager)
        before = canonical_matches(old_result.matches)
        # v1(A)-v5(B) at distance 1 satisfies the [1,1] query edge, and
        # v5-v9-v12 / v1-v9-v12 keep C in bounds: new matches appear.
        manager.apply_update("insert", 0, 4)
        assert canonical_matches(manager.matches(old_session.id)) == before
        _, new_result = drive(manager)
        after = canonical_matches(new_result.matches)
        def as_set(matches):
            return {tuple(tuple(pair) for pair in match) for match in matches}

        assert as_set(before) < as_set(after)

    def test_busy_service_sheds_update(self, ctx):
        manager = SessionManager(ctx)
        with manager._track_request():  # a request that never finishes
            with pytest.raises(ServiceOverloadedError):
                manager.apply_update("insert", 0, 4, timeout=0.05)
        assert manager.base_ctx.graph.epoch == 0
        # ... and once the service is quiet the same update goes through.
        assert manager.apply_update("insert", 0, 4, timeout=0.05).epoch == 1


class TestDispatcherUpdate:
    def test_update_is_a_wire_op(self):
        assert "update" in protocol.OPS
        request = protocol.decode_request(
            b'{"v": 2, "req_id": 1, "op": "update", "kind": "insert", "edge": [0, 11]}'
        )
        assert request["op"] == "update"

    def test_round_trip(self, ctx):
        dispatcher = LocalDispatcher(SessionManager(ctx))
        result = dispatcher.dispatch(
            {"op": "update", "kind": "insert", "edge": [0, 11]}
        )
        assert result["epoch"] == 1
        assert result["edge"] == [0, 11]
        assert result["strategy"] == "pml-incremental"
        assert result["two_hop_recomputed"] > 0

    def test_bad_kind_rejected(self, ctx):
        dispatcher = LocalDispatcher(SessionManager(ctx))
        with pytest.raises(ProtocolError, match="kind"):
            dispatcher.dispatch(
                {"op": "update", "kind": "upsert", "edge": [0, 1]}
            )

    @pytest.mark.parametrize(
        "edge", [["0", 1], [0, None], [True, 1], [0, 1.5], [0], [0, 1, 2], None]
    )
    def test_bad_edge_payload_rejected(self, ctx, edge):
        dispatcher = LocalDispatcher(SessionManager(ctx))
        with pytest.raises(ProtocolError, match="edge"):
            dispatcher.dispatch({"op": "update", "kind": "insert", "edge": edge})

    def test_error_codes_are_stable(self):
        assert protocol.error_code(GraphMutationError("x")) == (
            "graph_mutation_invalid"
        )
        assert protocol.error_code(StaleIndexError("x")) == "stale_index"

    def test_pool_backend_refuses_updates(self):
        dispatcher = object.__new__(PoolDispatcher)  # dispatch needs no state
        with pytest.raises(WorkerPoolError, match="worker pool"):
            dispatcher.dispatch(
                {"op": "update", "kind": "insert", "edge": [0, 1]}
            )


class TestWireUpdate:
    def test_client_update_over_socket(self, ctx):
        server = QueryServer(
            SessionManager(ctx), host="127.0.0.1", port=0
        ).start()
        try:
            with ServiceClient(*server.address) as client:
                report = client.update("insert", 0, 11)
                assert report["epoch"] == 1
                assert report["strategy"] == "pml-incremental"
                assert client.stats()["graph"]["epoch"] == 1
                from repro.service.client import RemoteServiceError

                with pytest.raises(RemoteServiceError) as info:
                    client.update("insert", 0, 11)  # now a duplicate
                assert info.value.code == "graph_mutation_invalid"
        finally:
            server.stop()
