"""Smoke soak: a short chaos run must pass the SLO gate end to end.

This is the ~30-second version of ``benchmarks/bench_soak.py`` (the
nightly job runs the long one): real sockets, tight budgets, seeded
faults, abandoning users, drain, restore-and-verify.  Plus unit tests
for the SLO arithmetic itself, which must stay boringly predictable.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan, GUIFaultSpec, OracleFaultSpec
from repro.service import OverloadPolicy
from repro.soak import SLO, SoakReport, run_soak
from repro.soak.slo import percentile
from repro.workload import SoakWorkloadConfig


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_nearest_rank(self):
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 0.5) == 3.0
        assert percentile(samples, 1.0) == 5.0

    def test_single_sample(self):
        assert percentile([7.0], 0.99) == 7.0


class TestSLO:
    def test_clean_report_passes(self):
        report = SoakReport(
            runs_completed=3, run_latency={"p50": 0.1, "p95": 0.2, "p99": 0.3}
        )
        assert SLO().check(report) == []

    def test_every_clause_fires(self):
        report = SoakReport(
            runs_completed=0,
            run_latency={"p50": 99.0, "p95": 99.0, "p99": 99.0},
            leaked_sessions=1,
            lock_inversions=2,
            unresolved_sheds=3,
            restore_mismatches=4,
            memory_growth_mib=1e6,
            unexpected_errors=["boom"],
        )
        violations = SLO(
            p50_run_seconds=1.0, p95_run_seconds=1.0, p99_run_seconds=1.0
        ).check(report)
        text = "\n".join(violations)
        for needle in (
            "p50", "p95", "p99", "leaked", "inversion", "shed",
            "diverged", "memory", "run(s) completed", "untyped",
        ):
            assert needle in text, f"missing clause: {needle}"

    def test_report_round_trips_to_dict(self):
        report = SoakReport(runs_completed=2, passed=True)
        payload = report.to_dict()
        assert payload["runs_completed"] == 2
        assert payload["passed"] is True
        assert set(payload) >= {
            "run_latency", "typed_errors", "drain_summary", "violations",
        }


@pytest.mark.slow
class TestSmokeSoak:
    def test_chaos_soak_meets_slo(self, dblp_tiny):
        plan = FaultPlan(
            seed=99,
            oracle=OracleFaultSpec(transient_rate=0.02, transient_burst=2),
            gui=GUIFaultSpec(drop_rate=0.05, spike_rate=0.05),
        )
        workload = SoakWorkloadConfig(
            seed=99,
            sessions=8,
            mean_interarrival_seconds=1.0,
            modify_rate=0.3,
            abandon_rate=0.2,
            postures=("default", "strict"),
        )
        report = run_soak(
            dblp_tiny.make_context(),
            workload,
            fault_plan=plan,
            slo=SLO(
                p50_run_seconds=60.0,
                p95_run_seconds=120.0,
                p99_run_seconds=240.0,
            ),
            overload=OverloadPolicy(
                session_watermark=0.75, cap_watermark=0.85, max_inflight=32
            ),
            max_sessions=6,
            cap_entry_budget=100_000,
            time_scale=0.01,
            lock_monitor=True,
        )
        assert report.passed, "SLO violations:\n" + "\n".join(report.violations)
        # The gate is only meaningful if the machinery actually fired.
        assert report.runs_completed >= 1
        assert report.sessions_checkpointed >= 1
        assert report.sessions_restored >= 1
        assert report.leaked_sessions == 0
        assert report.lock_inversions == 0
        assert report.restore_mismatches == 0
        assert report.unexpected_errors == []
        assert report.drain_summary.get("busy") == []

    def test_soak_without_chaos_or_monitor(self, dblp_tiny):
        """The harness itself must not depend on faults or lockdep."""
        report = run_soak(
            dblp_tiny.make_context(),
            SoakWorkloadConfig(seed=5, sessions=4, abandon_rate=0.0),
            max_sessions=4,
            time_scale=0.01,
            lock_monitor=False,
            verify_restore=False,
        )
        assert report.passed, "\n".join(report.violations)
        assert report.sessions_started == 4
        assert report.lock_inversions == 0
