"""Unit tests for the EngineBasis storage API (basis/mmap/tiering/shims)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.core.preprocessor import make_context, preprocess
from repro.datasets.registry import clear_memory_cache, get_dataset, materialize_basis
from repro.errors import BasisFormatError, DatasetError, StorageError, WorkerPoolError
from repro.storage import (
    ARRAY_NAMES,
    ByteBudgetPolicy,
    EngineBasis,
    HotPageCache,
    MmapBackend,
    ResidentBackend,
    ShmBackend,
    StoredPML,
    TieredColumn,
    TieredLabelView,
    attach,
    basis_from_context,
    context_from_basis,
    load_basis,
    open_backend,
    read_meta,
    save_basis,
)
from tests.conftest import build_fig2_graph


@pytest.fixture(scope="module")
def fig2_ctx():
    return make_context(preprocess(build_fig2_graph(), seed=3))


@pytest.fixture(scope="module")
def fig2_basis(fig2_ctx):
    return basis_from_context(fig2_ctx)


def run_script(ctx):
    boomer = Boomer(ctx, strategy="DI", max_results=1000)
    for action in (
        NewVertex(0, "A"),
        NewVertex(1, "B"),
        NewEdge(0, 1, 1, 2),
        Run(),
    ):
        boomer.apply(action)
    return sorted(
        tuple(sorted(m.assignment.items())) for m in boomer.results(limit=1000)
    )


# ----------------------------------------------------------------------
# EngineBasis + context round trip
# ----------------------------------------------------------------------
class TestBasisRoundTrip:
    def test_has_every_array(self, fig2_basis):
        assert set(fig2_basis.arrays) == set(ARRAY_NAMES)
        assert fig2_basis.nbytes() > 0

    def test_missing_array_rejected(self, fig2_basis):
        arrays = dict(fig2_basis.arrays)
        del arrays["two_hop"]
        with pytest.raises(StorageError, match="two_hop"):
            fig2_basis.with_arrays(arrays)

    def test_context_round_trip_queries_identical(self, fig2_ctx, fig2_basis):
        rebuilt = context_from_basis(fig2_basis)
        assert isinstance(rebuilt.oracle, StoredPML)
        n = fig2_ctx.graph.num_vertices
        for u in range(n):
            for v in range(n):
                assert rebuilt.oracle.distance(u, v) == fig2_ctx.oracle.distance(
                    u, v
                )
        assert run_script(rebuilt) == run_script(fig2_ctx)

    def test_stored_pml_label_introspection(self, fig2_ctx, fig2_basis):
        rebuilt = context_from_basis(fig2_basis)
        total = rebuilt.oracle.total_label_entries()
        assert total == fig2_ctx.oracle.total_label_entries()
        assert (
            sum(
                rebuilt.oracle.label_size(v)
                for v in range(fig2_ctx.graph.num_vertices)
            )
            == total
        )

    def test_equal_bytes(self, fig2_basis):
        assert fig2_basis.equal_bytes(fig2_basis)
        mutated = dict(fig2_basis.arrays)
        mutated["two_hop"] = np.asarray(mutated["two_hop"]).copy() + 1
        assert not fig2_basis.equal_bytes(fig2_basis.with_arrays(mutated))

    def test_requires_pml_oracle(self, fig2_ctx):
        from repro.indexing.oracle import BFSOracle

        graph = build_fig2_graph()
        ctx = make_context(
            preprocess(graph, seed=3), oracle=BFSOracle(graph)
        )
        with pytest.raises(StorageError, match="PML"):
            basis_from_context(ctx)


# ----------------------------------------------------------------------
# mmap store
# ----------------------------------------------------------------------
class TestMmapStore:
    def test_save_load_round_trip(self, fig2_basis, tmp_path):
        directory = save_basis(fig2_basis, tmp_path / "b")
        loaded = load_basis(directory)
        assert loaded.equal_bytes(fig2_basis)
        assert loaded.graph_name == fig2_basis.graph_name
        assert loaded.labels == fig2_basis.labels
        assert loaded.cost_model == fig2_basis.cost_model
        # arrays really are memmaps, read-only
        arr = loaded.arrays["pml_ranks"]
        assert isinstance(arr, np.memmap)
        with pytest.raises((ValueError, OSError)):
            arr[0] = 1

    def test_meta_is_commit_mark(self, fig2_basis, tmp_path):
        directory = save_basis(fig2_basis, tmp_path / "b")
        (directory / "meta.json").unlink()
        with pytest.raises(BasisFormatError, match="meta.json"):
            load_basis(directory)

    def test_version_mismatch_rejected(self, fig2_basis, tmp_path):
        directory = save_basis(fig2_basis, tmp_path / "b")
        meta = json.loads((directory / "meta.json").read_text())
        meta["format_version"] = 999
        (directory / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(BasisFormatError, match="version"):
            read_meta(directory)

    def test_unfinalized_rejected(self, fig2_basis, tmp_path):
        directory = save_basis(fig2_basis, tmp_path / "b")
        meta = json.loads((directory / "meta.json").read_text())
        meta["finalized"] = False
        (directory / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(BasisFormatError, match="finalized"):
            load_basis(directory)

    def test_shape_drift_rejected(self, fig2_basis, tmp_path):
        directory = save_basis(fig2_basis, tmp_path / "b")
        np.save(
            directory / "two_hop.npy",
            np.zeros(3, dtype=np.int64),
            allow_pickle=False,
        )
        with pytest.raises(BasisFormatError, match="two_hop"):
            load_basis(directory)


# ----------------------------------------------------------------------
# Tiering primitives
# ----------------------------------------------------------------------
class TestTiering:
    def test_policy_validates(self):
        with pytest.raises(StorageError):
            ByteBudgetPolicy(0)
        with pytest.raises(StorageError):
            ByteBudgetPolicy(100, max_overfill=0)

    def test_policy_rejects_giants(self):
        policy = ByteBudgetPolicy(1000, max_overfill=4)
        assert policy.admits(250)
        assert not policy.admits(251)

    def test_cache_lru_eviction_under_budget(self):
        cache = HotPageCache(ByteBudgetPolicy(100, max_overfill=1))
        for i in range(10):
            assert cache.put(i, f"v{i}", 30)
            assert cache.resident_bytes <= 100
        # Only the newest entries survive; oldest evicted first.
        assert cache.get(9) == "v9"
        assert cache.get(0) is None

    def test_cache_hit_refreshes_recency(self):
        cache = HotPageCache(ByteBudgetPolicy(90, max_overfill=1))
        cache.put("a", 1, 30)
        cache.put("b", 2, 30)
        cache.put("c", 3, 30)
        assert cache.get("a") == 1  # refresh: "b" is now oldest
        cache.put("d", 4, 30)
        assert cache.get("b") is None
        assert cache.get("a") == 1

    def test_cache_reject_leaves_state_alone(self):
        cache = HotPageCache(ByteBudgetPolicy(100, max_overfill=4))
        assert not cache.put("giant", object(), 50)
        assert cache.resident_bytes == 0
        assert len(cache) == 0

    def test_tiered_column_slices_match_raw(self):
        raw = np.arange(1000, dtype=np.int32)
        cache = HotPageCache(ByteBudgetPolicy(10_000, max_overfill=1))
        column = TieredColumn(raw, cache, "t", page_elems=64)
        for start, end in [(0, 0), (0, 5), (60, 70), (0, 1000), (990, 1000)]:
            assert np.array_equal(column.slice(start, end), raw[start:end])
        assert len(column) == 1000

    def test_tiered_label_view_matches_plain_lists(self):
        offsets = np.array([0, 3, 3, 7, 10], dtype=np.int64)
        column = np.arange(10, dtype=np.int32)
        cache = HotPageCache(ByteBudgetPolicy(100_000, max_overfill=1))
        tiered = TieredColumn(column, cache, "labels", page_elems=4)
        view = TieredLabelView(offsets, tiered, cache, "labels")
        assert len(view) == 4
        for v in range(4):
            want = column[offsets[v] : offsets[v + 1]].tolist()
            assert view[v] == want
            assert view[v] == want  # hot path returns the same value


# ----------------------------------------------------------------------
# Backends + attach dispatch
# ----------------------------------------------------------------------
class TestBackends:
    def test_resident_backend(self, fig2_ctx, fig2_basis):
        backend = ResidentBackend(fig2_basis)
        assert run_script(backend.context()) == run_script(fig2_ctx)
        with pytest.raises(StorageError, match="cross-process"):
            backend.spec()
        backend.close()

    def test_shm_backend_publish_attach(self, fig2_ctx, fig2_basis):
        backend = ShmBackend(fig2_basis)
        try:
            assert backend.segment_names()
            ctx, handles = attach(backend.spec())
            assert run_script(ctx) == run_script(fig2_ctx)
            for handle in handles:
                handle.close()
        finally:
            backend.close()

    def test_mmap_backend_owns_temp_dir(self, fig2_ctx, fig2_basis):
        backend = MmapBackend.create(fig2_basis)
        directory = backend.directory
        assert directory.exists()
        assert run_script(backend.context()) == run_script(fig2_ctx)
        backend.close()
        assert not directory.exists()

    def test_mmap_attach_via_spec(self, fig2_ctx, fig2_basis, tmp_path):
        backend = MmapBackend.create(fig2_basis, tmp_path / "b", budget_bytes=1 << 20)
        ctx, handles = attach(backend.spec())
        assert handles == []
        assert run_script(ctx) == run_script(fig2_ctx)
        backend.close()
        assert (tmp_path / "b").exists()  # named dirs are never deleted

    def test_open_backend_reuses_valid_directory(self, fig2_basis, tmp_path):
        directory = save_basis(fig2_basis, tmp_path / "b")
        before = (directory / "meta.json").stat().st_mtime_ns
        backend = open_backend("mmap", basis=fig2_basis, directory=directory)
        assert (directory / "meta.json").stat().st_mtime_ns == before
        backend.close()

    def test_open_backend_rejects_unknown(self, fig2_basis):
        with pytest.raises(StorageError, match="unknown storage backend"):
            open_backend("punchcards", basis=fig2_basis)
        with pytest.raises(StorageError):
            open_backend("shm")  # no basis

    def test_attach_rejects_unknown_spec(self):
        with pytest.raises(StorageError, match="unknown storage spec"):
            attach(object())


# ----------------------------------------------------------------------
# Deprecation shims (pool's historical shm API)
# ----------------------------------------------------------------------
class TestPoolShims:
    def test_publish_context_positional_warns(self, fig2_ctx):
        from repro.service.pool.shm import publish_context, unlink_segments

        with pytest.deprecated_call():
            spec, segments = publish_context(fig2_ctx)
        unlink_segments(segments)
        assert spec.graph_name == fig2_ctx.graph.name

    def test_publish_basis_kwarg_is_quiet(self, fig2_basis, recwarn):
        import warnings

        from repro.service.pool.shm import publish_context, unlink_segments

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            spec, segments = publish_context(basis=fig2_basis)
        unlink_segments(segments)

    def test_attach_context_basis_kwarg(self, fig2_ctx, fig2_basis):
        from repro.service.pool.shm import attach_context

        ctx, handles = attach_context(basis=fig2_basis)
        assert handles == []
        assert run_script(ctx) == run_script(fig2_ctx)

    def test_publish_requires_something(self):
        from repro.service.pool.shm import attach_context, publish_context

        with pytest.raises(WorkerPoolError):
            publish_context()
        with pytest.raises(WorkerPoolError):
            attach_context()

    def test_shared_pml_alias(self):
        from repro.service.pool.shm import SharedPML

        assert SharedPML is StoredPML


# ----------------------------------------------------------------------
# Registry integration
# ----------------------------------------------------------------------
class TestRegistryIntegration:
    def test_make_context_basis_kwarg(self, wordnet_tiny):
        basis = basis_from_context(wordnet_tiny.make_context())
        ctx = wordnet_tiny.make_context(basis=basis)
        assert isinstance(ctx.oracle, StoredPML)
        assert ctx.graph.name == wordnet_tiny.graph.name

    def test_make_context_rejects_oracle_and_basis(self, wordnet_tiny):
        basis = basis_from_context(wordnet_tiny.make_context())
        with pytest.raises(DatasetError, match="not both"):
            wordnet_tiny.make_context(oracle=object(), basis=basis)

    def test_materialize_basis_writes_and_reuses(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        bundle = get_dataset("wordnet", "tiny")
        path = materialize_basis(bundle)
        assert path.is_dir() and (path / "meta.json").is_file()
        before = (path / "meta.json").stat().st_mtime_ns
        again = materialize_basis(bundle)
        assert again == path
        assert (path / "meta.json").stat().st_mtime_ns == before
        loaded = load_basis(path)
        assert loaded.graph_name == bundle.graph.name
        clear_memory_cache()

    def test_disk_cache_persists_finalized_flag(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        get_dataset("wordnet", "tiny")
        clear_memory_cache()
        bundle = get_dataset("wordnet", "tiny")  # from disk cache
        assert getattr(bundle.pre.pml, "_finalized", False) is True
        clear_memory_cache()
