"""Cross-backend conformance: byte identity and answer identity.

The storage contract (docs/STORAGE.md): an :class:`EngineBasis` round
tripped through any backend — resident heap arrays, shared-memory
segments, mmapped npy files (budgeted or not) — yields byte-identical
arrays and a context that answers every query identically.  Hypothesis
drives randomized graphs through all backends at once; a property test
pins the hot tier's budget invariant under adversarial put sequences.
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.core.preprocessor import make_context, preprocess
from repro.storage import (
    ARRAY_NAMES,
    ByteBudgetPolicy,
    HotPageCache,
    ShmBackend,
    attach,
    basis_from_context,
    open_backend,
)
from tests.test_property_graph import labeled_graphs


def canonical_run(ctx, labels: list[str]):
    """One scripted Run over ``ctx``; canonical sorted match tuples."""
    a = labels[0]
    b = next((lab for lab in labels if lab != a), a)
    boomer = Boomer(ctx, strategy="DI", max_results=5000)
    for action in (NewVertex(0, a), NewVertex(1, b), NewEdge(0, 1, 1, 2), Run()):
        boomer.apply(action)
    return sorted(
        tuple(sorted(m.assignment.items())) for m in boomer.results(limit=5000)
    )


@given(labeled_graphs(), st.booleans())
@settings(max_examples=20, deadline=None)
def test_backends_byte_and_answer_identical(tmp_path_factory, graph, budgeted):
    """All three backends agree, bit for bit, on random graphs."""
    ctx = make_context(preprocess(graph, seed=5))
    basis = basis_from_context(ctx)
    labels = graph.labels()
    reference = canonical_run(ctx, labels)

    tmp = tmp_path_factory.mktemp("basis")
    budget = max(1024, basis.nbytes() // 4) if budgeted else None
    backends = {
        "resident": open_backend("resident", basis=basis),
        "shm": open_backend("shm", basis=basis),
        "mmap": open_backend(
            "mmap", basis=basis, directory=tmp / "b", budget_bytes=budget
        ),
    }
    try:
        for name, backend in backends.items():
            if name != "resident":
                spec = backend.spec()
                attached_ctx, handles = attach(spec)
                for handle in handles:
                    handle.close()
            round_tripped = basis_from_context(backend.context())
            assert round_tripped.equal_bytes(basis), f"{name}: bytes diverged"
            assert canonical_run(backend.context(), labels) == reference, (
                f"{name}: matches diverged"
            )
    finally:
        for backend in backends.values():
            backend.close()


@given(labeled_graphs())
@settings(max_examples=15, deadline=None)
def test_scalar_distances_identical_under_tight_budget(graph):
    """A starved hot tier changes speed, never answers."""
    ctx = make_context(preprocess(graph, seed=9))
    basis = basis_from_context(ctx)
    backend = open_backend("mmap", basis=basis, budget_bytes=2048)
    try:
        tiered_ctx = backend.context()
        n = graph.num_vertices
        for u in range(n):
            for v in range(n):
                assert tiered_ctx.oracle.distance(u, v) == ctx.oracle.distance(
                    u, v
                )
    finally:
        backend.close()


@given(
    st.integers(256, 4096),
    st.integers(1, 8),
    st.lists(
        st.tuples(st.integers(0, 30), st.integers(1, 2048)),
        min_size=1,
        max_size=200,
    ),
)
@settings(max_examples=100, deadline=None)
def test_hot_tier_never_exceeds_budget(budget, overfill, puts):
    """Property: after any put sequence, resident <= budget always holds.

    The eviction loop stops at one surviving entry, but admission refuses
    anything larger than budget/max_overfill, so a lone survivor still
    fits — the gauge can never read over budget.
    """
    cache = HotPageCache(ByteBudgetPolicy(budget, max_overfill=overfill))
    for key, nbytes in puts:
        admitted = cache.put(key, object(), nbytes)
        assert admitted == (nbytes * overfill <= budget)
        assert cache.resident_bytes <= budget
    cache.clear()
    assert cache.resident_bytes == 0


def test_shm_segments_unlinked_on_close():
    """No leaked shared-memory segments after a backend close."""
    from multiprocessing import shared_memory

    from tests.conftest import build_fig2_graph

    graph_ctx = make_context(preprocess(build_fig2_graph(), seed=1))
    backend = ShmBackend(basis_from_context(graph_ctx))
    names = backend.segment_names()
    assert names
    backend.close()
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def test_mmap_pool_worker_end_to_end():
    """A spawned pool over an mmap basis answers like the local engine."""
    from tests.conftest import build_fig2_graph
    from repro.service.pool import PoolDispatcher

    ctx = make_context(preprocess(build_fig2_graph(), seed=1))
    reference = canonical_run(ctx, ctx.graph.labels())
    dispatcher = PoolDispatcher(ctx, workers=2, storage="mmap")
    try:
        assert dispatcher.segment_names() == []
        sid = dispatcher.dispatch({"op": "create_session", "strategy": "DI"})[
            "session"
        ]
        labels = ctx.graph.labels()
        a = labels[0]
        b = next((lab for lab in labels if lab != a), a)
        for payload in (
            {"kind": "NewVertex", "vertex_id": 0, "label": a},
            {"kind": "NewVertex", "vertex_id": 1, "label": b},
            {"kind": "NewEdge", "u": 0, "v": 1, "lower": 1, "upper": 2},
        ):
            dispatcher.dispatch(
                {"op": "action", "session": sid, "action": payload}
            )
        run = dispatcher.dispatch({"op": "run", "session": sid})
        assert run["num_matches"] == len(reference)
        stats = dispatcher.dispatch({"op": "stats"})
        assert stats["pool"]["storage"] == "mmap"
    finally:
        dispatcher.close()


def test_memmap_arrays_are_not_copies(tmp_path):
    """The mmap backend's context reads the files, not heap copies."""
    from tests.conftest import build_fig2_graph

    ctx = make_context(preprocess(build_fig2_graph(), seed=1))
    basis = basis_from_context(ctx)
    backend = open_backend("mmap", basis=basis, directory=tmp_path / "b")
    try:
        opened = backend.basis
        for name in ARRAY_NAMES:
            assert isinstance(opened.arrays[name], np.memmap), name
    finally:
        backend.close()
