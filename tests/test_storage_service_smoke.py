"""Service smoke over every storage backend (CI ``storage-matrix`` job).

Each parametrization serves a real ``QueryServer`` over a context opened
through one storage backend and checks the wire answers against a direct
in-process Boomer run on the original context.  CI runs this file once
per backend with ``REPRO_STORAGE_BACKEND`` set, so a regression pins the
failing backend in the job name; locally (env unset) all backends run.
"""

from __future__ import annotations

import os

import pytest

from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.service import QueryServer, ServiceClient, SessionManager, canonical_matches
from repro.storage import BACKEND_NAMES, basis_from_context, open_backend

ACTIONS = [
    NewVertex(0, "A"),
    NewVertex(1, "B"),
    NewEdge(0, 1, 1, 2),
    NewVertex(2, "C"),
    NewEdge(1, 2, 1, 2),
]

_ENV_BACKEND = os.environ.get("REPRO_STORAGE_BACKEND", "")
BACKENDS = [_ENV_BACKEND] if _ENV_BACKEND else list(BACKEND_NAMES)


def _reference_matches(ctx):
    boomer = Boomer(ctx, strategy="DI", auto_idle=False)
    for action in ACTIONS:
        boomer.apply(action)
    boomer.apply(Run())
    return canonical_matches(boomer.run_result.matches)


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_serve_over_backend_matches_resident(backend_name, fig2_ctx, tmp_path):
    """The wire answers are backend-invariant."""
    reference = _reference_matches(fig2_ctx)
    kwargs = {}
    if backend_name == "mmap":
        kwargs["directory"] = tmp_path / "basis"
        kwargs["budget_bytes"] = 4096  # starved on purpose: exercise eviction
    backend = open_backend(
        backend_name, basis=basis_from_context(fig2_ctx), **kwargs
    )
    try:
        srv = QueryServer(
            SessionManager(backend.context()), host="127.0.0.1", port=0
        ).start()
        try:
            with ServiceClient(*srv.address) as client:
                pong = client.ping()
                assert pong["graph"] == fig2_ctx.graph.name
                outcome = client.scripted_session(ACTIONS, strategy="DI")
                assert outcome["matches"] == reference
        finally:
            srv.stop()
    finally:
        backend.close()
