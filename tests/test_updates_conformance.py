"""Update-maintenance conformance: incremental indexes == fresh builds.

The contract pinned here is the tentpole's correctness guarantee: after
*any* schedule of edge inserts and deletes applied through
:mod:`repro.updates`, every derived structure answers exactly as a fresh
build over the mutated graph would — and every structure that was *not*
maintained either refuses loudly (PML, stored bases) or heals itself
(BFS memo, distance-vector cache) instead of serving stale distances.
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.actions import NewEdge, NewVertex, Run
from repro.core.blender import Boomer
from repro.core.context import EngineContext
from repro.core.cost import CostModel
from repro.errors import StaleIndexError
from repro.graph.algorithms import bfs_distances
from repro.graph.builder import GraphBuilder
from repro.indexing.batch import DistanceVectorCache, shared_distance_cache
from repro.indexing.oracle import BFSOracle
from repro.indexing.pml import PrunedLandmarkLabeling
from repro.indexing.twohop import two_hop_counts
from repro.storage import (
    basis_from_context,
    context_from_basis,
    load_basis,
    open_backend,
    save_basis,
)
from repro.updates import (
    apply_updates,
    delete_edge,
    graph_insert_edge,
    insert_edge,
)
from tests.conftest import build_fig2_graph
from tests.test_property_graph import labeled_graphs


def make_ctx(graph):
    """A lightweight context: real PML + two-hop, synthetic cost model."""
    return EngineContext(
        graph=graph,
        oracle=PrunedLandmarkLabeling.build(graph),
        two_hop=two_hop_counts(graph),
        cost_model=CostModel(t_avg=1e-6, t_lat=0.1),
    )


def assert_matches_fresh_build(ctx):
    """Maintained oracle + two-hop answer identically to fresh builds."""
    graph = ctx.graph
    fresh = PrunedLandmarkLabeling.build(graph)
    targets = np.arange(graph.num_vertices, dtype=np.int64)
    for source in range(graph.num_vertices):
        got = ctx.oracle.distances_from(source, targets)
        want = fresh.distances_from(source, targets)
        assert np.array_equal(got, want), (
            f"source {source}: maintained {got.tolist()} != fresh {want.tolist()}"
        )
    assert np.array_equal(ctx.two_hop, two_hop_counts(graph))


def draw_step(data, graph):
    """One applicable ("insert" | "delete", u, v), or None if none exists."""
    n = graph.num_vertices
    edges = sorted(graph.iter_edges())
    non_edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if not graph.has_edge(u, v)
    ]
    if non_edges and (not edges or data.draw(st.booleans())):
        return ("insert", *data.draw(st.sampled_from(non_edges)))
    if edges:
        return ("delete", *data.draw(st.sampled_from(edges)))
    return None


# ----------------------------------------------------------------------
# The tentpole contract: incremental == fresh, under random schedules
# ----------------------------------------------------------------------
class TestScheduleConformance:
    @given(labeled_graphs(max_n=12), st.data())
    @settings(max_examples=30, deadline=None)
    def test_random_schedule(self, graph, data):
        ctx = make_ctx(graph)
        for _ in range(data.draw(st.integers(1, 8))):
            step = draw_step(data, graph)
            if step is None:
                break
            kind, u, v = step
            apply = insert_edge if kind == "insert" else delete_edge
            report = apply(ctx, u, v)
            assert report.epoch == graph.epoch == ctx.epoch
        assert_matches_fresh_build(ctx)

    @given(labeled_graphs(max_n=12), st.data())
    @settings(max_examples=20, deadline=None)
    def test_insert_only_schedule_is_incremental(self, graph, data):
        """Pure-insert schedules must take the dynamic-PLL patch path."""
        ctx = make_ctx(graph)
        n = graph.num_vertices
        for _ in range(data.draw(st.integers(1, 6))):
            non_edges = [
                (u, v)
                for u in range(n)
                for v in range(u + 1, n)
                if not graph.has_edge(u, v)
            ]
            if not non_edges:
                break
            u, v = data.draw(st.sampled_from(non_edges))
            report = insert_edge(ctx, u, v)
            assert report.strategy == "pml-incremental"
        assert_matches_fresh_build(ctx)

    def test_apply_updates_schedule_and_reports(self):
        ctx = make_ctx(build_fig2_graph())
        reports = apply_updates(
            ctx, [("insert", 0, 11), ("delete", 1, 4), ("insert", 1, 4)]
        )
        assert [r.epoch for r in reports] == [1, 2, 3]
        assert [r.strategy for r in reports] == [
            "pml-incremental",
            "pml-rebuild",
            "pml-incremental",
        ]
        assert reports[0].edge == (0, 11)
        assert all(r.two_hop_recomputed > 0 for r in reports)
        assert_matches_fresh_build(ctx)

    def test_apply_updates_unknown_kind(self):
        ctx = make_ctx(build_fig2_graph())
        with pytest.raises(ValueError, match="unknown update kind"):
            apply_updates(ctx, [("upsert", 0, 11)])

    def test_boomer_matches_equal_fresh_context(self):
        """End-to-end: Boomer over a maintained context == fresh context."""
        ctx = make_ctx(build_fig2_graph())
        apply_updates(ctx, [("insert", 0, 4), ("delete", 2, 5)])
        rebuilt = GraphBuilder("fig2-mutated")
        rebuilt.add_vertices(ctx.graph.labels())
        for u, v in ctx.graph.iter_edges():
            rebuilt.add_edge(u, v)
        fresh_ctx = make_ctx(rebuilt.build())

        def run_script(run_ctx):
            boomer = Boomer(run_ctx, strategy="DI", max_results=1000)
            for action in (
                NewVertex(0, "A"),
                NewVertex(1, "B"),
                NewEdge(0, 1, 1, 2),
                Run(),
            ):
                boomer.apply(action)
            return sorted(
                tuple(sorted(m.assignment.items()))
                for m in boomer.results(limit=1000)
            )

        assert run_script(ctx) == run_script(fresh_ctx)


# ----------------------------------------------------------------------
# Unmaintained readers refuse (PML) or self-heal (BFS memo, caches)
# ----------------------------------------------------------------------
class TestStaleReaders:
    def test_unmaintained_pml_refuses_scalar_and_batch(self):
        graph = build_fig2_graph()
        pml = PrunedLandmarkLabeling.build(graph)
        graph_insert_edge(graph, 0, 11)  # bypasses maintenance on purpose
        with pytest.raises(StaleIndexError, match="epoch"):
            pml.distance(0, 11)
        with pytest.raises(StaleIndexError):
            pml.distances_from(0, np.arange(graph.num_vertices))

    def test_bfs_oracle_self_heals_cached_vectors(self):
        graph = build_fig2_graph()
        oracle = BFSOracle(graph)
        targets = np.arange(graph.num_vertices, dtype=np.int64)
        assert oracle.distance(0, 11) == 2  # populates the source-0 memo
        stale = oracle.distances_from(0, targets).copy()
        graph_insert_edge(graph, 0, 11)
        # The memoized vector is from epoch 0; every read must recompute.
        assert oracle.distance(0, 11) == 1
        healed = oracle.distances_from(0, targets)
        assert not np.array_equal(healed, stale)
        assert np.array_equal(healed, bfs_distances(graph, 0))

    def test_distance_cache_never_serves_pre_mutation_vectors(self):
        # Regression for the epoch-less cache key: before the epoch was
        # part of the key, this lookup returned the stale stored vector.
        ctx = make_ctx(build_fig2_graph())
        cache = DistanceVectorCache()
        targets = np.arange(ctx.graph.num_vertices, dtype=np.int64)
        vec = ctx.oracle.distances_from(0, targets)
        cache.store(ctx.oracle, 0, vec)
        assert cache.lookup(ctx.oracle, 0) is vec
        insert_edge(ctx, 0, 11)
        assert cache.lookup(ctx.oracle, 0) is None

    def test_update_report_counts_shared_cache_drops(self):
        ctx = make_ctx(build_fig2_graph())
        targets = np.arange(ctx.graph.num_vertices, dtype=np.int64)
        shared_distance_cache.clear()
        try:
            shared_distance_cache.store(
                ctx.oracle, 0, ctx.oracle.distances_from(0, targets)
            )
            shared_distance_cache.store(
                ctx.oracle, 3, ctx.oracle.distances_from(3, targets)
            )
            report = insert_edge(ctx, 0, 11)
            assert report.cache_dropped == 2
            assert len(shared_distance_cache) == 0
        finally:
            shared_distance_cache.clear()


# ----------------------------------------------------------------------
# Storage: epochs persist; stale bases and stored contexts are refused
# ----------------------------------------------------------------------
class TestStorageEpochGuards:
    def test_epoch_round_trips_through_saved_basis(self, tmp_path):
        ctx = make_ctx(build_fig2_graph())
        insert_edge(ctx, 0, 11)
        delete_edge(ctx, 0, 11)
        directory = save_basis(basis_from_context(ctx), tmp_path / "b")
        loaded = load_basis(directory)
        assert loaded.epoch == 2
        assert context_from_basis(loaded).epoch == 2

    def test_stale_basis_dir_refused(self, tmp_path):
        ctx = make_ctx(build_fig2_graph())
        directory = save_basis(basis_from_context(ctx), tmp_path / "b")
        insert_edge(ctx, 0, 11)  # the live graph moves past the saved dir
        with pytest.raises(StaleIndexError, match="stale"):
            open_backend(
                "mmap", basis=basis_from_context(ctx), directory=directory
            )

    def test_current_basis_dir_reused(self, tmp_path):
        ctx = make_ctx(build_fig2_graph())
        insert_edge(ctx, 0, 11)
        basis = basis_from_context(ctx)
        directory = save_basis(basis, tmp_path / "b")
        backend = open_backend("mmap", basis=basis, directory=directory)
        try:
            assert backend.basis.epoch == 1
        finally:
            backend.close()

    def test_basis_from_context_refuses_stale_oracle(self):
        ctx = make_ctx(build_fig2_graph())
        graph_insert_edge(ctx.graph, 0, 11)  # oracle left at epoch 0
        with pytest.raises(StaleIndexError):
            basis_from_context(ctx)

    def test_stored_context_refuses_updates_before_mutating(self):
        ctx = make_ctx(build_fig2_graph())
        stored = context_from_basis(basis_from_context(ctx))
        before_edges = stored.graph.num_edges
        before_epoch = stored.epoch
        with pytest.raises(StaleIndexError, match="rebuild"):
            insert_edge(stored, 0, 11)
        # Refused *before* mutation: graph and epoch are untouched, and
        # the stored oracle still answers (it never went stale).
        assert stored.graph.num_edges == before_edges
        assert stored.epoch == before_epoch
        assert stored.oracle.distance(0, 11) == ctx.oracle.distance(0, 11)
