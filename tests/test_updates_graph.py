"""CSR edge-surgery tests: repro.updates.csr invariants and epoch bumps.

These cover the graph-level half of the update subsystem in isolation:
the spliced arrays must be indistinguishable from a fresh build of the
mutated edge set, refused updates must leave the graph (and its epoch)
byte-identical, and the epoch must move exactly once per applied update.
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import GraphMutationError, VertexNotFoundError
from repro.graph.builder import GraphBuilder
from repro.updates import graph_delete_edge, graph_insert_edge
from tests.conftest import build_fig2_graph
from tests.test_property_graph import labeled_graphs


def csr_snapshot(graph):
    offsets, neighbors = graph.raw_csr()
    return offsets.copy(), neighbors.copy(), graph.num_edges, graph.epoch


def assert_csr_unchanged(graph, snapshot):
    offsets, neighbors, num_edges, epoch = snapshot
    got_offsets, got_neighbors = graph.raw_csr()
    assert np.array_equal(got_offsets, offsets)
    assert np.array_equal(got_neighbors, neighbors)
    assert graph.num_edges == num_edges
    assert graph.epoch == epoch


def rebuild_from_edges(graph):
    """A fresh GraphBuilder build of graph's current labels + edge set."""
    builder = GraphBuilder("rebuilt")
    builder.add_vertices(graph.labels())
    for u, v in graph.iter_edges():
        builder.add_edge(u, v)
    return builder.build()


def assert_same_structure(got, want):
    got_offsets, got_neighbors = got.raw_csr()
    want_offsets, want_neighbors = want.raw_csr()
    assert np.array_equal(got_offsets, want_offsets)
    assert np.array_equal(got_neighbors, want_neighbors)
    assert got.num_edges == want.num_edges


class TestInsert:
    def test_insert_adds_edge_both_directions(self):
        graph = build_fig2_graph()
        assert not graph.has_edge(0, 11)
        new_epoch = graph_insert_edge(graph, 0, 11)
        assert new_epoch == graph.epoch == 1
        assert graph.has_edge(0, 11) and graph.has_edge(11, 0)
        assert 11 in {int(w) for w in graph.neighbors(0)}
        assert 0 in {int(w) for w in graph.neighbors(11)}

    def test_insert_matches_fresh_build(self):
        graph = build_fig2_graph()
        before_edges = graph.num_edges
        graph_insert_edge(graph, 1, 10)
        assert graph.num_edges == before_edges + 1
        assert_same_structure(graph, rebuild_from_edges(graph))

    def test_adjacency_stays_sorted(self):
        graph = build_fig2_graph()
        graph_insert_edge(graph, 0, 3)
        graph_insert_edge(graph, 0, 10)
        for v in graph.iter_vertices():
            nbrs = graph.neighbors(v)
            assert np.array_equal(nbrs, np.sort(nbrs))

    def test_duplicate_insert_refused_untouched(self):
        graph = build_fig2_graph()
        snapshot = csr_snapshot(graph)
        with pytest.raises(GraphMutationError, match="already exists"):
            graph_insert_edge(graph, 1, 4)
        assert_csr_unchanged(graph, snapshot)

    def test_self_loop_refused_untouched(self):
        graph = build_fig2_graph()
        snapshot = csr_snapshot(graph)
        with pytest.raises(GraphMutationError, match="self loop"):
            graph_insert_edge(graph, 3, 3)
        assert_csr_unchanged(graph, snapshot)

    def test_unknown_vertex_refused_untouched(self):
        graph = build_fig2_graph()
        snapshot = csr_snapshot(graph)
        with pytest.raises(VertexNotFoundError):
            graph_insert_edge(graph, 0, graph.num_vertices)
        assert_csr_unchanged(graph, snapshot)


class TestDelete:
    def test_delete_removes_edge_both_directions(self):
        graph = build_fig2_graph()
        assert graph.has_edge(1, 4)
        new_epoch = graph_delete_edge(graph, 4, 1)  # order-insensitive
        assert new_epoch == graph.epoch == 1
        assert not graph.has_edge(1, 4) and not graph.has_edge(4, 1)
        assert_same_structure(graph, rebuild_from_edges(graph))

    def test_missing_edge_refused_untouched(self):
        graph = build_fig2_graph()
        snapshot = csr_snapshot(graph)
        with pytest.raises(GraphMutationError, match="not in the graph"):
            graph_delete_edge(graph, 0, 1)
        assert_csr_unchanged(graph, snapshot)

    def test_insert_then_delete_round_trips(self):
        graph = build_fig2_graph()
        offsets, neighbors = graph.raw_csr()
        offsets, neighbors = offsets.copy(), neighbors.copy()
        graph_insert_edge(graph, 2, 10)
        graph_delete_edge(graph, 10, 2)
        got_offsets, got_neighbors = graph.raw_csr()
        assert np.array_equal(got_offsets, offsets)
        assert np.array_equal(got_neighbors, neighbors)
        # ... but the epoch never rewinds: the round trip was two moves.
        assert graph.epoch == 2


class TestEpoch:
    def test_new_graph_starts_at_zero(self):
        assert build_fig2_graph().epoch == 0

    def test_epoch_is_monotonic_per_update(self):
        graph = build_fig2_graph()
        epochs = [graph.epoch]
        graph_insert_edge(graph, 0, 1)
        epochs.append(graph.epoch)
        graph_delete_edge(graph, 0, 1)
        epochs.append(graph.epoch)
        assert epochs == [0, 1, 2]

    def test_pre_epoch_pickle_defaults_to_zero(self):
        # Old serialized graphs have no _epoch slot; the property must
        # answer 0 instead of raising AttributeError.
        graph = build_fig2_graph()
        object.__delattr__(graph, "_epoch")
        assert graph.epoch == 0


@given(labeled_graphs(), st.data())
@settings(max_examples=50, deadline=None)
def test_random_surgery_matches_fresh_build(graph, data):
    """Any applicable insert/delete leaves a graph equal to a fresh build."""
    n = graph.num_vertices
    edges = set(graph.iter_edges())
    non_edges = [
        (u, v) for u in range(n) for v in range(u + 1, n) if (u, v) not in edges
    ]
    before_epoch = graph.epoch
    if non_edges and (not edges or data.draw(st.booleans())):
        u, v = data.draw(st.sampled_from(non_edges))
        graph_insert_edge(graph, u, v)
        edges.add((u, v))
    elif edges:
        u, v = data.draw(st.sampled_from(sorted(edges)))
        graph_delete_edge(graph, u, v)
        edges.discard((u, v))
    else:
        return  # single vertex, nothing applicable
    assert graph.epoch == before_epoch + 1
    assert set(graph.iter_edges()) == edges
    assert_same_structure(graph, rebuild_from_edges(graph))
    assert int(graph.degree_array().sum()) == 2 * graph.num_edges
