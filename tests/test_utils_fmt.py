"""Tests for repro.utils.fmt."""

import pytest

from repro.utils.fmt import ascii_table, format_count, format_duration


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (0.000002, "2.00us"),
            (0.0005, "500.00us"),
            (0.0451, "45.10ms"),
            (0.9999, "999.90ms"),
            (3.2, "3.20s"),
            (119.0, "119.00s"),
            (180.0, "3.0min"),
        ],
    )
    def test_units(self, seconds, expected):
        assert format_duration(seconds) == expected

    def test_negative(self):
        assert format_duration(-3.2) == "-3.20s"

    def test_zero(self):
        assert format_duration(0.0) == "0.00us"


class TestFormatCount:
    def test_thousands_separator(self):
        assert format_count(1234567) == "1,234,567"

    def test_float_rounds(self):
        assert format_count(12.6) == "13"

    def test_small(self):
        assert format_count(0) == "0"


class TestAsciiTable:
    def test_contains_headers_and_cells(self):
        out = ascii_table(["name", "value"], [["alpha", 1], ["beta", 22]])
        assert "name" in out
        assert "alpha" in out
        assert "22" in out

    def test_title(self):
        out = ascii_table(["a"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_column_alignment_widths(self):
        out = ascii_table(["col"], [["looooooong"], ["x"]])
        lines = [l for l in out.splitlines() if l.startswith("|")]
        assert len({len(l) for l in lines}) == 1  # all rows same width

    def test_numeric_right_alignment(self):
        out = ascii_table(["n"], [[5], [12345]])
        rows = [l for l in out.splitlines() if l.startswith("|")][1:]
        # the short number is right-aligned against the long one
        assert rows[1].index("5") < rows[1].index("|", 1)
        assert rows[0].rstrip("| ").endswith("5")

    def test_empty_rows(self):
        out = ascii_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_float_formatting(self):
        out = ascii_table(["x"], [[3.14159265]])
        assert "3.142" in out
