"""Tests for repro.utils.rng."""

from repro.utils.rng import seeded_rng, spawn_rng


def test_seeded_rng_reproducible():
    a = seeded_rng(7)
    b = seeded_rng(7)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = seeded_rng(1)
    b = seeded_rng(2)
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_spawn_rng_deterministic():
    parent1 = seeded_rng(3)
    parent2 = seeded_rng(3)
    child1 = spawn_rng(parent1, "labels")
    child2 = spawn_rng(parent2, "labels")
    assert [child1.random() for _ in range(5)] == [child2.random() for _ in range(5)]


def test_spawn_rng_streams_independent():
    parent = seeded_rng(3)
    labels = spawn_rng(parent, "labels")
    edges = spawn_rng(parent, "edges")
    assert [labels.random() for _ in range(5)] != [edges.random() for _ in range(5)]


def test_spawned_child_independent_of_parent_consumption():
    # Drawing from the child must not disturb a sibling spawned later from
    # an identically-seeded parent that also spawned the first stream.
    p1 = seeded_rng(9)
    c1a = spawn_rng(p1, "a")
    _ = [c1a.random() for _ in range(100)]
    c1b = spawn_rng(p1, "b")

    p2 = seeded_rng(9)
    _ = spawn_rng(p2, "a")  # spawned but never drawn from
    c2b = spawn_rng(p2, "b")
    assert c1b.random() == c2b.random()
