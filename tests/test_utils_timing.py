"""Tests for repro.utils.timing."""

import time

import pytest

from repro.utils.timing import Stopwatch, TimeBudget, now


class TestStopwatch:
    def test_initial_state(self):
        sw = Stopwatch()
        assert sw.elapsed == 0.0
        assert not sw.running

    def test_start_stop_accumulates(self):
        sw = Stopwatch()
        sw.start()
        time.sleep(0.01)
        first = sw.stop()
        assert first >= 0.01
        sw.start()
        time.sleep(0.01)
        second = sw.stop()
        assert second > first

    def test_stop_without_start_is_noop(self):
        sw = Stopwatch()
        assert sw.stop() == 0.0

    def test_start_is_idempotent_while_running(self):
        sw = Stopwatch()
        sw.start()
        sw.start()
        time.sleep(0.005)
        assert sw.stop() < 0.05  # did not double-count

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.002)
        sw.reset()
        assert sw.elapsed == 0.0
        assert not sw.running

    def test_read_while_running(self):
        sw = Stopwatch()
        sw.start()
        time.sleep(0.005)
        mid = sw.read()
        assert mid >= 0.005
        assert sw.running  # read does not stop
        total = sw.stop()
        assert total >= mid

    def test_context_manager(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.003)
        assert sw.elapsed >= 0.003
        assert not sw.running


class TestTimeBudget:
    def test_unlimited(self):
        budget = TimeBudget(None)
        assert budget.remaining() == float("inf")
        assert not budget.exhausted
        assert budget.can_afford(1e9)

    def test_positive_budget_counts_down(self):
        budget = TimeBudget(0.05)
        assert budget.remaining() > 0
        time.sleep(0.06)
        assert budget.exhausted
        assert budget.remaining() == 0.0

    def test_non_positive_budget_exhausted_immediately(self):
        assert TimeBudget(0.0).exhausted
        assert TimeBudget(-1.0).exhausted

    def test_can_afford(self):
        budget = TimeBudget(10.0)
        assert budget.can_afford(1.0)
        assert not budget.can_afford(100.0)

    def test_limit_property(self):
        assert TimeBudget(2.5).limit == 2.5
        assert TimeBudget(None).limit is None


def test_now_is_monotonic():
    a = now()
    b = now()
    assert b >= a


def test_now_matches_perf_counter_scale():
    # Sub-second resolution expected.
    a = now()
    time.sleep(0.01)
    assert 0.005 < now() - a < 1.0


@pytest.mark.parametrize("seconds", [0.001, 0.5, 3600.0])
def test_budget_remaining_never_negative(seconds):
    budget = TimeBudget(seconds)
    assert budget.remaining() >= 0.0
