"""Tests for query-instance generation and soak-schedule determinism."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import Bounds
from repro.errors import ExperimentError
from repro.graph.builder import GraphBuilder
from repro.workload.generator import (
    QueryInstance,
    instantiate,
    instantiate_from_region,
    paper_query_set,
)
from repro.workload.templates import get_template
from repro.workload.traffic import SoakWorkloadConfig, generate_soak_schedule
from tests.conftest import build_fig2_graph


class TestInstantiate:
    def test_deterministic(self):
        g = build_fig2_graph()
        a = instantiate("Q1", g, seed=5)
        b = instantiate("Q1", g, seed=5)
        assert a.labels == b.labels

    def test_seed_varies_labels(self):
        g = build_fig2_graph()
        variants = {instantiate("Q2", g, seed=s).labels for s in range(8)}
        assert len(variants) > 1

    def test_labels_exist_in_graph(self):
        g = build_fig2_graph()
        inst = instantiate("Q2", g, seed=3)
        for label in inst.labels:
            assert len(g.vertices_with_label(label)) > 0

    def test_default_bounds_copied(self):
        g = build_fig2_graph()
        inst = instantiate("Q1", g, seed=0)
        assert inst.bounds == get_template("Q1").default_bounds

    def test_name_format(self):
        g = build_fig2_graph()
        inst = instantiate("Q1", g, seed=2, dataset="wn")
        assert inst.name == "Q1@wn#2"

    def test_graph_too_small(self):
        b = GraphBuilder()
        b.add_vertex("A")
        with pytest.raises(ExperimentError):
            instantiate_from_region(get_template("Q5"), b.build())

    def test_region_sampling_needs_connectivity(self):
        b = GraphBuilder()
        b.add_vertices("abcde")  # 5 isolated vertices, Q1 needs a walk of 3
        with pytest.raises(ExperimentError):
            instantiate_from_region(get_template("Q1"), b.build())


class TestOverrides:
    @pytest.fixture()
    def inst(self):
        return instantiate("Q1", build_fig2_graph(), seed=1)

    def test_with_bounds(self, inst):
        out = inst.with_bounds({2: Bounds(2, 4)}, tag="x")
        assert out.bounds[1] == Bounds(2, 4)
        assert out.bounds[0] == inst.bounds[0]
        assert out.tag == "x"
        assert "x" in out.name

    def test_with_upper_preserves_lower(self, inst):
        base = inst.with_bounds({1: Bounds(1, 2)})
        out = base.with_upper({1: 5})
        assert out.bounds[0] == Bounds(1, 5)

    def test_with_upper_clamps_lower(self, inst):
        base = inst.with_bounds({1: Bounds(2, 3)})
        out = base.with_upper({1: 1})
        assert out.bounds[0] == Bounds(1, 1)

    def test_unknown_edge_rejected(self, inst):
        with pytest.raises(ExperimentError):
            inst.with_upper({9: 5})

    def test_original_unchanged(self, inst):
        _ = inst.with_upper({1: 9})
        assert inst.bounds == get_template("Q1").default_bounds


class TestBuildQuery:
    def test_structure(self):
        inst = instantiate("Q2", build_fig2_graph(), seed=1)
        query = inst.build_query()
        assert query.num_vertices == 4
        assert query.num_edges == 4
        # 1-based vertex ids matching the paper
        assert query.vertex_ids() == [1, 2, 3, 4]
        for (u, v), bounds in zip(inst.template.edges, inst.bounds):
            assert query.edge_between(u, v).bounds == bounds

    def test_validation_mismatch_rejected(self):
        template = get_template("Q1")
        with pytest.raises(ExperimentError):
            QueryInstance(template=template, labels=("A",), bounds=template.default_bounds)
        with pytest.raises(ExperimentError):
            QueryInstance(
                template=template, labels=("A", "B", "C"), bounds=(Bounds(),)
            )


class TestPaperQuerySet:
    def test_population(self):
        g = build_fig2_graph()
        instances = paper_query_set(g, dataset="fig2", seeds_per_template=2)
        assert len(instances) == 12  # 6 templates x 2 seeds
        names = {i.template.name for i in instances}
        assert names == {"Q1", "Q2", "Q3", "Q4", "Q5", "Q6"}

    def test_unique_names(self):
        g = build_fig2_graph()
        instances = paper_query_set(g, dataset="fig2")
        assert len({i.name for i in instances}) == len(instances)


class TestSoakSchedule:
    """Determinism regression: one seed pins the *entire* soak schedule."""

    def test_same_seed_identical_schedule(self):
        g = build_fig2_graph()
        config = SoakWorkloadConfig(seed=42, sessions=10, modify_rate=0.5,
                                    abandon_rate=0.2)
        a = generate_soak_schedule(g, config)
        b = generate_soak_schedule(g, config)
        assert [s.to_dict() for s in a] == [s.to_dict() for s in b]

    def test_prefix_stable_when_sessions_grow(self):
        """Adding sessions never perturbs the ones before them."""
        g = build_fig2_graph()
        small = generate_soak_schedule(g, SoakWorkloadConfig(seed=7, sessions=5))
        large = generate_soak_schedule(g, SoakWorkloadConfig(seed=7, sessions=9))
        assert [s.to_dict() for s in large[:5]] == [s.to_dict() for s in small]

    def test_arrivals_strictly_ordered_and_heavy_tailed(self):
        g = build_fig2_graph()
        scripts = generate_soak_schedule(
            g, SoakWorkloadConfig(seed=3, sessions=40)
        )
        offsets = [s.arrival_offset for s in scripts]
        assert offsets == sorted(offsets)
        assert all(b > a for a, b in zip(offsets, offsets[1:]))

    def test_abandoned_scripts_never_run(self):
        g = build_fig2_graph()
        scripts = generate_soak_schedule(
            g, SoakWorkloadConfig(seed=1, sessions=30, abandon_rate=0.5)
        )
        abandoned = [s for s in scripts if s.abandoned]
        assert abandoned  # rate 0.5 over 30 sessions: must fire
        for script in abandoned:
            assert script.actions  # nonempty prefix survives
            assert all(a["kind"] != "Run" for a in script.actions)
        for script in scripts:
            if not script.abandoned:
                assert script.actions[-1]["kind"] == "Run"

    def test_modified_scripts_revise_bounds_before_run(self):
        g = build_fig2_graph()
        scripts = generate_soak_schedule(
            g, SoakWorkloadConfig(seed=1, sessions=30, modify_rate=0.6,
                                  abandon_rate=0.0)
        )
        modified = [s for s in scripts if s.modified]
        assert modified
        for script in modified:
            kinds = [a["kind"] for a in script.actions]
            assert "ModifyBounds" in kinds
            assert kinds.index("ModifyBounds") < kinds.index("Run")

    def test_postures_rotate(self):
        g = build_fig2_graph()
        scripts = generate_soak_schedule(
            g, SoakWorkloadConfig(seed=0, sessions=6,
                                  postures=("default", "strict"))
        )
        assert [s.posture for s in scripts] == ["default", "strict"] * 3

    def test_validation_is_loud(self):
        with pytest.raises(ExperimentError):
            SoakWorkloadConfig(sessions=0)
        with pytest.raises(ExperimentError):
            SoakWorkloadConfig(pareto_alpha=1.0)
        with pytest.raises(ExperimentError):
            SoakWorkloadConfig(modify_rate=1.5)
        with pytest.raises(ExperimentError):
            SoakWorkloadConfig(postures=())

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        sessions=st.integers(min_value=1, max_value=8),
        modify=st.floats(min_value=0.0, max_value=1.0),
        abandon=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_any_seed_reproduces_itself(self, seed, sessions, modify, abandon):
        g = build_fig2_graph()
        config = SoakWorkloadConfig(
            seed=seed, sessions=sessions,
            modify_rate=modify, abandon_rate=abandon,
        )
        a = generate_soak_schedule(g, config)
        b = generate_soak_schedule(g, config)
        assert [s.to_dict() for s in a] == [s.to_dict() for s in b]
