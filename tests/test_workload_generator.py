"""Tests for query-instance generation."""

import pytest

from repro.core.query import Bounds
from repro.errors import ExperimentError
from repro.graph.builder import GraphBuilder
from repro.workload.generator import (
    QueryInstance,
    instantiate,
    instantiate_from_region,
    paper_query_set,
)
from repro.workload.templates import get_template
from tests.conftest import build_fig2_graph


class TestInstantiate:
    def test_deterministic(self):
        g = build_fig2_graph()
        a = instantiate("Q1", g, seed=5)
        b = instantiate("Q1", g, seed=5)
        assert a.labels == b.labels

    def test_seed_varies_labels(self):
        g = build_fig2_graph()
        variants = {instantiate("Q2", g, seed=s).labels for s in range(8)}
        assert len(variants) > 1

    def test_labels_exist_in_graph(self):
        g = build_fig2_graph()
        inst = instantiate("Q2", g, seed=3)
        for label in inst.labels:
            assert len(g.vertices_with_label(label)) > 0

    def test_default_bounds_copied(self):
        g = build_fig2_graph()
        inst = instantiate("Q1", g, seed=0)
        assert inst.bounds == get_template("Q1").default_bounds

    def test_name_format(self):
        g = build_fig2_graph()
        inst = instantiate("Q1", g, seed=2, dataset="wn")
        assert inst.name == "Q1@wn#2"

    def test_graph_too_small(self):
        b = GraphBuilder()
        b.add_vertex("A")
        with pytest.raises(ExperimentError):
            instantiate_from_region(get_template("Q5"), b.build())

    def test_region_sampling_needs_connectivity(self):
        b = GraphBuilder()
        b.add_vertices("abcde")  # 5 isolated vertices, Q1 needs a walk of 3
        with pytest.raises(ExperimentError):
            instantiate_from_region(get_template("Q1"), b.build())


class TestOverrides:
    @pytest.fixture()
    def inst(self):
        return instantiate("Q1", build_fig2_graph(), seed=1)

    def test_with_bounds(self, inst):
        out = inst.with_bounds({2: Bounds(2, 4)}, tag="x")
        assert out.bounds[1] == Bounds(2, 4)
        assert out.bounds[0] == inst.bounds[0]
        assert out.tag == "x"
        assert "x" in out.name

    def test_with_upper_preserves_lower(self, inst):
        base = inst.with_bounds({1: Bounds(1, 2)})
        out = base.with_upper({1: 5})
        assert out.bounds[0] == Bounds(1, 5)

    def test_with_upper_clamps_lower(self, inst):
        base = inst.with_bounds({1: Bounds(2, 3)})
        out = base.with_upper({1: 1})
        assert out.bounds[0] == Bounds(1, 1)

    def test_unknown_edge_rejected(self, inst):
        with pytest.raises(ExperimentError):
            inst.with_upper({9: 5})

    def test_original_unchanged(self, inst):
        _ = inst.with_upper({1: 9})
        assert inst.bounds == get_template("Q1").default_bounds


class TestBuildQuery:
    def test_structure(self):
        inst = instantiate("Q2", build_fig2_graph(), seed=1)
        query = inst.build_query()
        assert query.num_vertices == 4
        assert query.num_edges == 4
        # 1-based vertex ids matching the paper
        assert query.vertex_ids() == [1, 2, 3, 4]
        for (u, v), bounds in zip(inst.template.edges, inst.bounds):
            assert query.edge_between(u, v).bounds == bounds

    def test_validation_mismatch_rejected(self):
        template = get_template("Q1")
        with pytest.raises(ExperimentError):
            QueryInstance(template=template, labels=("A",), bounds=template.default_bounds)
        with pytest.raises(ExperimentError):
            QueryInstance(
                template=template, labels=("A", "B", "C"), bounds=(Bounds(),)
            )


class TestPaperQuerySet:
    def test_population(self):
        g = build_fig2_graph()
        instances = paper_query_set(g, dataset="fig2", seeds_per_template=2)
        assert len(instances) == 12  # 6 templates x 2 seeds
        names = {i.template.name for i in instances}
        assert names == {"Q1", "Q2", "Q3", "Q4", "Q5", "Q6"}

    def test_unique_names(self):
        g = build_fig2_graph()
        instances = paper_query_set(g, dataset="fig2")
        assert len({i.name for i in instances}) == len(instances)
