"""Tests for the Table-2 QFS definitions."""

import pytest

from repro.errors import ExperimentError
from repro.workload.qfs import QFS_SEQUENCES, qfs_edge_order
from repro.workload.templates import get_template


def test_table2_q1_sequences():
    assert qfs_edge_order("Q1", "S1") == (1, 2, 3)
    assert qfs_edge_order("Q1", "S2") == (2, 1, 3)
    assert qfs_edge_order("Q1", "S3") == (3, 2, 1)


def test_table2_q6_sequences():
    assert qfs_edge_order("Q6", "S1") == (1, 2, 3, 4, 5, 6)
    assert qfs_edge_order("Q6", "S2") == (4, 1, 2, 3, 5, 6)
    assert qfs_edge_order("Q6", "S3") == (2, 3, 4, 1, 5, 6)
    assert qfs_edge_order("Q6", "S4") == (5, 6, 2, 3, 4, 1)


def test_case_insensitive():
    assert qfs_edge_order("q6", "s2") == (4, 1, 2, 3, 5, 6)


def test_unknown_combination_rejected():
    with pytest.raises(ExperimentError):
        qfs_edge_order("Q1", "S4")
    with pytest.raises(ExperimentError):
        qfs_edge_order("Q2", "S1")


def test_sequences_are_permutations():
    for template_name, sequences in QFS_SEQUENCES.items():
        num_edges = get_template(template_name).num_edges
        for order in sequences.values():
            assert sorted(order) == list(range(1, num_edges + 1))
