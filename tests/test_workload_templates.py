"""Tests for the Q1-Q6 template definitions (Figure 4)."""

import pytest

from repro.core.query import Bounds
from repro.errors import ExperimentError
from repro.workload.templates import (
    TEMPLATES,
    QueryTemplate,
    get_template,
    template_names,
)


def test_six_templates():
    assert template_names() == ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"]


def test_lookup_case_insensitive():
    assert get_template("q3") is TEMPLATES["Q3"]


def test_unknown_rejected():
    with pytest.raises(ExperimentError):
        get_template("Q9")


@pytest.mark.parametrize("name", template_names())
def test_template_well_formed(name):
    t = get_template(name)
    assert t.num_edges == len(t.default_bounds)
    seen = set()
    for u, v in t.edges:
        assert 1 <= u <= t.num_vertices
        assert 1 <= v <= t.num_vertices
        assert u != v
        key = (min(u, v), max(u, v))
        assert key not in seen  # simple
        seen.add(key)
    # connected: union-find over edges
    parent = list(range(t.num_vertices + 1))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in t.edges:
        parent[find(u)] = find(v)
    roots = {find(q) for q in range(1, t.num_vertices + 1)}
    assert len(roots) == 1


def test_paper_topology_constraints():
    # Kinds per Figure 4's caption.
    assert get_template("Q1").kind == "cycle"
    assert get_template("Q2").kind == "cycle"
    assert get_template("Q4").kind == "cycle"
    assert get_template("Q5").kind == "star"
    assert get_template("Q3").kind == "flower"
    assert get_template("Q6").kind == "flower"
    # Q5 has e1..e4 but no e5/e6 (Table 1); Q6 has e1..e6 (Table 2).
    assert get_template("Q5").num_edges == 4
    assert get_template("Q6").num_edges == 6
    # Q4 has e1..e5 (Table 1 reports e5 for Q4).
    assert get_template("Q4").num_edges == 5
    # Q3 has an e3 (Exp 3 overrides it).
    assert get_template("Q3").num_edges >= 3


def test_cycles_are_cycles():
    for name, length in (("Q1", 3), ("Q2", 4), ("Q4", 5)):
        t = get_template(name)
        assert t.num_vertices == length
        assert t.num_edges == length
        degree = {q: 0 for q in range(1, length + 1)}
        for u, v in t.edges:
            degree[u] += 1
            degree[v] += 1
        assert all(d == 2 for d in degree.values())


def test_star_shape():
    t = get_template("Q5")
    assert all(1 in edge for edge in t.edges)  # hub is q1


def test_edge_index():
    t = get_template("Q1")
    assert t.edge_index(1, 2) == 1
    assert t.edge_index(2, 1) == 1
    assert t.edge_index(1, 3) == 3
    with pytest.raises(ExperimentError):
        t.edge_index(2, 2)


def test_f_avg_ordering_plausible():
    # Bigger templates take longer to draw.
    assert get_template("Q1").f_avg_seconds < get_template("Q6").f_avg_seconds


def test_invalid_template_construction_rejected():
    with pytest.raises(ExperimentError):
        QueryTemplate(
            name="bad",
            kind="cycle",
            num_vertices=2,
            edges=((1, 2),),
            default_bounds=(),
            f_avg_seconds=1.0,
        )
    with pytest.raises(ExperimentError):
        QueryTemplate(
            name="bad2",
            kind="cycle",
            num_vertices=2,
            edges=((1, 5),),
            default_bounds=(Bounds(1, 1),),
            f_avg_seconds=1.0,
        )
